//! Runtime values, signals and captured logs.

use spex_ir::{FuncId, GlobalId, SlotId};
use std::fmt;

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Integer (also used for booleans, chars, file descriptors).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// Immutable string (the `char*` model).
    Str(String),
    /// Null pointer.
    Null,
    /// Function pointer.
    FuncRef(FuncId),
    /// Pointer to a memory location.
    Ref(RefTarget),
    /// Opaque OS handle (from `fopen`, `malloc`, `getpwnam`, ...).
    Handle(i64),
    /// Aggregate (struct or array) stored in a slot or global.
    Agg(Vec<Value>),
}

impl Value {
    /// Convenience string constructor.
    pub fn str(s: &str) -> Value {
        Value::Str(s.to_string())
    }

    /// C truthiness.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Int(v) => *v != 0,
            Value::Float(v) => *v != 0.0,
            Value::Str(_) | Value::FuncRef(_) | Value::Ref(_) => true,
            Value::Handle(h) => *h != 0,
            Value::Null => false,
            Value::Agg(_) => true,
        }
    }

    /// The integer content, coercing floats; `None` for non-numbers.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Float(v) => Some(*v as i64),
            Value::Null => Some(0),
            Value::Handle(h) => Some(*h),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Null => write!(f, "(null)"),
            Value::FuncRef(id) => write!(f, "<fn {id}>"),
            Value::Ref(_) => write!(f, "<ptr>"),
            Value::Handle(h) => write!(f, "<handle {h}>"),
            Value::Agg(_) => write!(f, "<aggregate>"),
        }
    }
}

/// What a [`Value::Ref`] points at.
#[derive(Debug, Clone, PartialEq)]
pub enum RefTarget {
    /// A global, with a navigation path into its aggregate value.
    Global(GlobalId, Vec<u32>),
    /// A stack slot of a live frame (frame depth at creation time).
    Slot(usize, SlotId, Vec<u32>),
}

/// POSIX-style fatal signals the interpreter can raise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Signal {
    /// Segmentation fault: null deref, out-of-bounds access, wild pointer.
    Segv,
    /// `abort()` or failed assertion.
    Abort,
    /// Division by zero.
    Fpe,
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Signal::Segv => write!(f, "Segmentation fault"),
            Signal::Abort => write!(f, "Aborted"),
            Signal::Fpe => write!(f, "Floating point exception"),
        }
    }
}

/// Destination of a log line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogStream {
    /// Standard output.
    Stdout,
    /// Standard error.
    Stderr,
    /// The syslog channel.
    Syslog,
}

/// One captured log line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogLine {
    /// Where the line went.
    pub stream: LogStream,
    /// The formatted text.
    pub text: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness_matches_c() {
        assert!(!Value::Int(0).truthy());
        assert!(Value::Int(-1).truthy());
        assert!(!Value::Null.truthy());
        assert!(
            Value::str("").truthy(),
            "empty string is a non-null pointer"
        );
        assert!(!Value::Handle(0).truthy());
    }

    #[test]
    fn int_coercion() {
        assert_eq!(Value::Float(3.9).as_int(), Some(3));
        assert_eq!(Value::Null.as_int(), Some(0));
        assert_eq!(Value::str("x").as_int(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::str("hi").to_string(), "hi");
        assert_eq!(Value::Null.to_string(), "(null)");
        assert_eq!(Signal::Segv.to_string(), "Segmentation fault");
    }
}
