//! The IR interpreter.
//!
//! Executes the pre-SSA form (locals are memory slots). One [`Vm`] instance
//! keeps globals, the modelled [`World`] and captured logs alive across
//! calls, so an injection run can call the system's config handler, then
//! its startup routine, then its functional tests, observing state
//! in between.

use crate::value::{LogLine, LogStream, RefTarget, Signal, Value};
use crate::world::{FsNode, World};
use spex_ir::{Callee, ConstVal, FuncId, Instr, Module, Place, PlaceBase, PlaceElem, Terminator};
use spex_lang::ast::{BinOp, UnOp};
use spex_lang::builtins::Builtin;
use spex_lang::types::CType;

/// Why execution stopped before the outermost call returned.
#[derive(Debug, Clone, PartialEq)]
pub enum VmHalt {
    /// `exit(code)` was called.
    Exit(i32),
    /// A fatal signal was raised.
    Fatal(Signal),
    /// The step or virtual-sleep budget was exhausted.
    Hang,
    /// The interpreter hit malformed code (a generator bug, not a subject
    /// reaction).
    Internal(String),
}

impl std::fmt::Display for VmHalt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmHalt::Exit(c) => write!(f, "exit({c})"),
            VmHalt::Fatal(s) => write!(f, "{s}"),
            VmHalt::Hang => write!(f, "hang"),
            VmHalt::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

struct Frame {
    slots: Vec<Value>,
    regs: Vec<Option<Value>>,
    args: Vec<Value>,
}

/// The interpreter.
pub struct Vm<'m> {
    module: &'m Module,
    /// The modelled OS.
    pub world: World,
    /// Captured log lines (stdout, stderr, syslog).
    pub logs: Vec<LogLine>,
    globals: Vec<Value>,
    frames: Vec<Frame>,
    steps: u64,
    /// Instruction budget before declaring a hang.
    pub step_budget: u64,
    /// Virtual seconds of sleeping allowed before declaring a hang.
    pub sleep_budget: i64,
    rng: u64,
}

impl<'m> Vm<'m> {
    /// Creates a VM over a lowered (pre-SSA) module.
    pub fn new(module: &'m Module, world: World) -> Vm<'m> {
        let globals = module
            .globals
            .iter()
            .map(|g| const_to_value(&g.init))
            .collect();
        Vm {
            module,
            world,
            logs: Vec::new(),
            globals,
            frames: Vec::new(),
            steps: 0,
            step_budget: 2_000_000,
            sleep_budget: 3_600,
            rng: 0x5a17_c0de,
        }
    }

    /// Calls a function by name.
    pub fn call(&mut self, name: &str, args: &[Value]) -> Result<Value, VmHalt> {
        let f = self
            .module
            .function_by_name(name)
            .ok_or_else(|| VmHalt::Internal(format!("no function `{name}`")))?;
        // Telemetry is per-call, not per-instruction: the `steps` counter
        // is already maintained by the dispatch loop, so one delta here
        // keeps the interpreter's hot loop untouched.
        let steps_before = self.steps;
        let result = self.exec(f, args.to_vec());
        if spex_obs::enabled() {
            spex_obs::counter("vm.calls", 1);
            spex_obs::counter("vm.instructions", self.steps - steps_before);
        }
        result
    }

    /// Instructions executed over this VM's lifetime (the hang budget
    /// counts the same steps).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Reads the current value of a global by name (used by the injection
    /// harness to detect silent violations).
    pub fn global_value(&self, name: &str) -> Option<&Value> {
        let g = self.module.global_by_name(name)?;
        self.globals.get(g.index())
    }

    /// All captured log text, one line per entry.
    pub fn log_text(&self) -> String {
        let mut out = String::new();
        for l in &self.logs {
            out.push_str(&l.text);
            out.push('\n');
        }
        out
    }

    /// Clears captured logs (between harness phases).
    pub fn clear_logs(&mut self) {
        self.logs.clear();
    }

    // --- Execution ---------------------------------------------------------

    fn exec(&mut self, f: FuncId, args: Vec<Value>) -> Result<Value, VmHalt> {
        if self.frames.len() >= 64 {
            return Err(VmHalt::Fatal(Signal::Segv)); // Stack overflow.
        }
        let func = &self.module.functions[f.index()];
        let mut frame = Frame {
            slots: func
                .slots
                .iter()
                .map(|s| zero_value(&s.ty, self.module))
                .collect(),
            regs: vec![None; func.num_values()],
            args,
        };
        // Parameter slots are filled by the Param+Store prologue emitted by
        // the lowering; nothing to do here.
        let _ = &mut frame;
        self.frames.push(frame);
        let result = self.run_blocks(f);
        self.frames.pop();
        result
    }

    fn run_blocks(&mut self, f: FuncId) -> Result<Value, VmHalt> {
        let func = &self.module.functions[f.index()];
        let mut block = func.entry();
        loop {
            let blk = &func.blocks[block.index()];
            for (instr, _) in &blk.instrs {
                self.steps += 1;
                if self.steps > self.step_budget {
                    return Err(VmHalt::Hang);
                }
                self.step(f, instr)?;
            }
            match &blk.term.0 {
                Terminator::Br(b) => block = *b,
                Terminator::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    let c = self.reg(*cond)?;
                    block = if c.truthy() { *then_bb } else { *else_bb };
                }
                Terminator::Switch {
                    value,
                    cases,
                    default,
                } => {
                    let v = self
                        .reg(*value)?
                        .as_int()
                        .ok_or_else(|| VmHalt::Internal("switch on non-integer".into()))?;
                    block = cases
                        .iter()
                        .find(|(c, _)| *c == v)
                        .map(|(_, b)| *b)
                        .unwrap_or(*default);
                }
                Terminator::Ret(v) => {
                    return match v {
                        Some(v) => self.reg(*v),
                        None => Ok(Value::Int(0)),
                    };
                }
                Terminator::Unreachable => {
                    // Fell past a noreturn call that did not actually halt —
                    // treat as a crash, like executing ud2.
                    return Err(VmHalt::Fatal(Signal::Segv));
                }
            }
        }
    }

    fn step(&mut self, f: FuncId, instr: &Instr) -> Result<(), VmHalt> {
        match instr {
            Instr::Const { dst, val } => {
                let v = const_to_value(val);
                self.set_reg(*dst, v);
            }
            Instr::Param { dst, index } => {
                let frame = self.frames.last().expect("active frame");
                let v = frame
                    .args
                    .get(*index as usize)
                    .cloned()
                    .unwrap_or(Value::Int(0));
                self.set_reg(*dst, v);
            }
            Instr::Load { dst, place } => {
                let v = self.load_place(place)?;
                self.set_reg(*dst, v);
            }
            Instr::Store { place, value } => {
                let v = self.reg(*value)?;
                self.store_place(place, v)?;
            }
            Instr::AddrOf { dst, place } => {
                let t = self.place_target(place)?;
                self.set_reg(*dst, Value::Ref(t));
            }
            Instr::Bin { dst, op, lhs, rhs } => {
                let a = self.reg(*lhs)?;
                let b = self.reg(*rhs)?;
                let v = self.binop(*op, a, b)?;
                self.set_reg(*dst, v);
            }
            Instr::Un { dst, op, operand } => {
                let a = self.reg(*operand)?;
                let v = match op {
                    UnOp::Neg => match a {
                        Value::Float(x) => Value::Float(-x),
                        other => Value::Int(-other.as_int().unwrap_or(0)),
                    },
                    UnOp::Not => Value::Int(i64::from(!a.truthy())),
                    UnOp::BitNot => Value::Int(!a.as_int().unwrap_or(0)),
                };
                self.set_reg(*dst, v);
            }
            Instr::Cast { dst, ty, operand } => {
                let a = self.reg(*operand)?;
                self.set_reg(*dst, cast_value(a, ty));
            }
            Instr::Call { dst, callee, args } => {
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.reg(*a)?);
                }
                let result = match callee {
                    Callee::Builtin(b) => self.builtin(*b, argv)?,
                    Callee::Func(g) => self.exec(*g, argv)?,
                    Callee::Indirect(v) => match self.reg(*v)? {
                        Value::FuncRef(g) => self.exec(g, argv)?,
                        Value::Null => return Err(VmHalt::Fatal(Signal::Segv)),
                        _ => return Err(VmHalt::Fatal(Signal::Segv)),
                    },
                };
                if let Some(d) = dst {
                    self.set_reg(*d, result);
                }
            }
            Instr::Phi { .. } => {
                return Err(VmHalt::Internal(
                    "phi executed: the VM runs pre-SSA bodies only".into(),
                ));
            }
        }
        let _ = f;
        Ok(())
    }

    // --- Registers -----------------------------------------------------------

    fn reg(&self, v: spex_ir::ValueId) -> Result<Value, VmHalt> {
        self.frames
            .last()
            .and_then(|f| f.regs.get(v.index()).cloned().flatten())
            .ok_or_else(|| VmHalt::Internal(format!("read of unset register {v}")))
    }

    fn set_reg(&mut self, v: spex_ir::ValueId, value: Value) {
        let frame = self.frames.last_mut().expect("active frame");
        frame.regs[v.index()] = Some(value);
    }

    // --- Memory ----------------------------------------------------------------

    /// Resolves a place to a concrete target, evaluating dynamic indices and
    /// following `Deref` projections.
    fn place_target(&mut self, place: &Place) -> Result<RefTarget, VmHalt> {
        let mut target = match place.base {
            PlaceBase::Slot(s) => RefTarget::Slot(self.frames.len() - 1, s, Vec::new()),
            PlaceBase::Global(g) => RefTarget::Global(g, Vec::new()),
            PlaceBase::ValuePtr(v) => match self.reg(v)? {
                Value::Ref(t) => t,
                Value::Null => return Err(VmHalt::Fatal(Signal::Segv)),
                Value::Str(_) => {
                    return Err(VmHalt::Internal(
                        "store through string pointer is not modelled".into(),
                    ))
                }
                _ => return Err(VmHalt::Fatal(Signal::Segv)),
            },
        };
        for elem in &place.elems {
            match elem {
                PlaceElem::Field(i) => push_path(&mut target, *i),
                PlaceElem::IndexConst(i) => push_path(&mut target, *i),
                PlaceElem::IndexValue(v) => {
                    let idx = self
                        .reg(*v)?
                        .as_int()
                        .ok_or_else(|| VmHalt::Internal("non-integer index".into()))?;
                    if !(0..=u32::MAX as i64).contains(&idx) {
                        return Err(VmHalt::Fatal(Signal::Segv));
                    }
                    push_path(&mut target, idx as u32);
                }
                PlaceElem::Deref => {
                    let v = self.read_target(&target)?;
                    target = match v {
                        Value::Ref(t) => t,
                        Value::Null => return Err(VmHalt::Fatal(Signal::Segv)),
                        _ => return Err(VmHalt::Fatal(Signal::Segv)),
                    };
                }
            }
        }
        Ok(target)
    }

    fn load_place(&mut self, place: &Place) -> Result<Value, VmHalt> {
        // Reading a character out of a string (`s[i]`).
        if let PlaceBase::ValuePtr(v) = place.base {
            if let Value::Str(s) = self.reg(v)? {
                if let [PlaceElem::IndexValue(iv)] = place.elems.as_slice() {
                    let idx = self.reg(*iv)?.as_int().unwrap_or(-1);
                    return match idx {
                        i if i < 0 || i as usize > s.len() => Err(VmHalt::Fatal(Signal::Segv)),
                        i if i as usize == s.len() => Ok(Value::Int(0)),
                        i => Ok(Value::Int(s.as_bytes()[i as usize] as i64)),
                    };
                }
            }
        }
        let t = self.place_target(place)?;
        self.read_target(&t)
    }

    fn store_place(&mut self, place: &Place, value: Value) -> Result<(), VmHalt> {
        let t = self.place_target(place)?;
        self.write_target(&t, value)
    }

    fn read_target(&self, t: &RefTarget) -> Result<Value, VmHalt> {
        let (root, path) = self.target_root(t)?;
        navigate(root, path)
            .cloned()
            .ok_or(VmHalt::Fatal(Signal::Segv))
    }

    fn write_target(&mut self, t: &RefTarget, value: Value) -> Result<(), VmHalt> {
        let (root, path) = match t {
            RefTarget::Global(g, path) => (
                self.globals
                    .get_mut(g.index())
                    .ok_or(VmHalt::Fatal(Signal::Segv))?,
                path,
            ),
            RefTarget::Slot(fi, s, path) => (
                self.frames
                    .get_mut(*fi)
                    .and_then(|f| f.slots.get_mut(s.index()))
                    .ok_or(VmHalt::Fatal(Signal::Segv))?,
                path,
            ),
        };
        let slot = navigate_mut(root, path).ok_or(VmHalt::Fatal(Signal::Segv))?;
        *slot = value;
        Ok(())
    }

    fn target_root<'a>(&'a self, t: &'a RefTarget) -> Result<(&'a Value, &'a [u32]), VmHalt> {
        match t {
            RefTarget::Global(g, path) => Ok((
                self.globals
                    .get(g.index())
                    .ok_or(VmHalt::Fatal(Signal::Segv))?,
                path,
            )),
            RefTarget::Slot(fi, s, path) => Ok((
                self.frames
                    .get(*fi)
                    .and_then(|f| f.slots.get(s.index()))
                    .ok_or(VmHalt::Fatal(Signal::Segv))?,
                path,
            )),
        }
    }

    // --- Operators ---------------------------------------------------------------

    fn binop(&mut self, op: BinOp, a: Value, b: Value) -> Result<Value, VmHalt> {
        use BinOp::*;
        // String equality (C compares pointers; the model compares content,
        // which matches how the subject code uses it).
        if matches!(op, Eq | Ne) {
            let eq = match (&a, &b) {
                (Value::Str(x), Value::Str(y)) => Some(x == y),
                (Value::Str(_), Value::Null) | (Value::Null, Value::Str(_)) => Some(false),
                (Value::Null, Value::Null) => Some(true),
                (Value::Ref(x), Value::Ref(y)) => Some(x == y),
                (Value::Ref(_), Value::Null) | (Value::Null, Value::Ref(_)) => Some(false),
                _ => None,
            };
            if let Some(eq) = eq {
                return Ok(Value::Int(i64::from(if op == Eq { eq } else { !eq })));
            }
        }
        if let (Value::Float(_), _) | (_, Value::Float(_)) = (&a, &b) {
            let x = as_f64(&a);
            let y = as_f64(&b);
            return Ok(match op {
                Add => Value::Float(x + y),
                Sub => Value::Float(x - y),
                Mul => Value::Float(x * y),
                Div => {
                    if y == 0.0 {
                        Value::Float(f64::INFINITY)
                    } else {
                        Value::Float(x / y)
                    }
                }
                Lt => Value::Int(i64::from(x < y)),
                Gt => Value::Int(i64::from(x > y)),
                Le => Value::Int(i64::from(x <= y)),
                Ge => Value::Int(i64::from(x >= y)),
                Eq => Value::Int(i64::from(x == y)),
                Ne => Value::Int(i64::from(x != y)),
                _ => return Err(VmHalt::Internal("bitwise op on float".into())),
            });
        }
        let x = a
            .as_int()
            .ok_or_else(|| VmHalt::Internal(format!("arith on {a:?}")))?;
        let y = b
            .as_int()
            .ok_or_else(|| VmHalt::Internal(format!("arith on {b:?}")))?;
        Ok(Value::Int(match op {
            Add => x.wrapping_add(y),
            Sub => x.wrapping_sub(y),
            Mul => x.wrapping_mul(y),
            Div => {
                if y == 0 {
                    return Err(VmHalt::Fatal(Signal::Fpe));
                }
                x.wrapping_div(y)
            }
            Rem => {
                if y == 0 {
                    return Err(VmHalt::Fatal(Signal::Fpe));
                }
                x.wrapping_rem(y)
            }
            And => x & y,
            Or => x | y,
            Xor => x ^ y,
            Shl => x.wrapping_shl(y as u32),
            Shr => x.wrapping_shr(y as u32),
            Lt => i64::from(x < y),
            Gt => i64::from(x > y),
            Le => i64::from(x <= y),
            Ge => i64::from(x >= y),
            Eq => i64::from(x == y),
            Ne => i64::from(x != y),
            LogicalAnd => i64::from(x != 0 && y != 0),
            LogicalOr => i64::from(x != 0 || y != 0),
        }))
    }

    // --- Builtins ------------------------------------------------------------------

    fn builtin(&mut self, b: Builtin, args: Vec<Value>) -> Result<Value, VmHalt> {
        use Builtin::*;
        let arg = |i: usize| args.get(i).cloned().unwrap_or(Value::Int(0));
        // Most string APIs crash on NULL in real libc.
        let want_str = |v: Value| -> Result<String, VmHalt> {
            match v {
                Value::Str(s) => Ok(s),
                Value::Null => Err(VmHalt::Fatal(Signal::Segv)),
                other => Err(VmHalt::Internal(format!("string API got {other:?}"))),
            }
        };
        Ok(match b {
            Strcmp | Strncmp => {
                let a = want_str(arg(0))?;
                let c = want_str(arg(1))?;
                let (a, c) = if b == Strncmp {
                    let n = arg(2).as_int().unwrap_or(0).max(0) as usize;
                    (
                        a.chars().take(n).collect::<String>(),
                        c.chars().take(n).collect::<String>(),
                    )
                } else {
                    (a, c)
                };
                Value::Int(match a.cmp(&c) {
                    std::cmp::Ordering::Less => -1,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                })
            }
            Strcasecmp | Strncasecmp => {
                let a = want_str(arg(0))?.to_lowercase();
                let c = want_str(arg(1))?.to_lowercase();
                let (a, c) = if b == Strncasecmp {
                    let n = arg(2).as_int().unwrap_or(0).max(0) as usize;
                    (
                        a.chars().take(n).collect::<String>(),
                        c.chars().take(n).collect::<String>(),
                    )
                } else {
                    (a, c)
                };
                Value::Int(match a.cmp(&c) {
                    std::cmp::Ordering::Less => -1,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                })
            }
            Strlen => Value::Int(want_str(arg(0))?.len() as i64),
            Strdup => Value::Str(want_str(arg(0))?),
            Strchr => {
                let s = want_str(arg(0))?;
                let c = arg(1).as_int().unwrap_or(0) as u8 as char;
                match s.find(c) {
                    Some(i) => Value::Str(s[i..].to_string()),
                    None => Value::Null,
                }
            }
            Strstr => {
                let s = want_str(arg(0))?;
                let needle = want_str(arg(1))?;
                match s.find(&needle) {
                    Some(i) => Value::Str(s[i..].to_string()),
                    None => Value::Null,
                }
            }
            Strcpy | Strncpy | Strcat => {
                // The destination is modelled as a fixed-capacity buffer the
                // size of its current content; longer sources overflow.
                let dst = want_str(arg(0))?;
                let src = want_str(arg(1))?;
                let limit = if b == Strncpy {
                    arg(2).as_int().unwrap_or(0).max(0) as usize
                } else {
                    src.len()
                };
                let written = if b == Strcat {
                    dst.len() + src.len().min(limit)
                } else {
                    src.len().min(limit)
                };
                if written > dst.len().max(64) {
                    return Err(VmHalt::Fatal(Signal::Segv));
                }
                Value::Str(src.chars().take(limit).collect())
            }
            Atoi => Value::Int(parse_c_int(&want_str(arg(0))?).0 as i32 as i64),
            Atol => Value::Int(parse_c_int(&want_str(arg(0))?).0),
            Strtol | Strtoll => Value::Int(parse_c_int(&want_str(arg(0))?).0),
            Atof | Strtod => Value::Float(parse_c_float(&want_str(arg(0))?)),
            Sscanf => {
                let src = want_str(arg(0))?;
                let fmt = want_str(arg(1))?;
                self.do_sscanf(&src, &fmt, &args[2..])?
            }
            Sprintf | Snprintf => {
                let (dst_i, fmt_i, args_from, cap) = if b == Snprintf {
                    let cap = arg(1).as_int().unwrap_or(0).max(0) as usize;
                    (0usize, 2usize, 3usize, cap)
                } else {
                    // Plain sprintf: capacity is the destination's current
                    // length (a fixed buffer), slack up to 64 bytes.
                    (0usize, 1usize, 2usize, 0usize)
                };
                let fmt = want_str(arg(fmt_i))?;
                let text = self.format(&fmt, &args[args_from.min(args.len())..]);
                if b == Sprintf {
                    let dst_cap = match arg(dst_i) {
                        Value::Str(s) => s.len().max(64),
                        Value::Null => return Err(VmHalt::Fatal(Signal::Segv)),
                        _ => 64,
                    };
                    if text.len() > dst_cap {
                        return Err(VmHalt::Fatal(Signal::Segv));
                    }
                    Value::Int(text.len() as i64)
                } else {
                    Value::Int(text.len().min(cap) as i64)
                }
            }
            Open => {
                let path = want_str(arg(0))?;
                let flags = arg(1).as_int().unwrap_or(0);
                match self.world.fs.get(&path) {
                    Some(FsNode::File(_)) => Value::Int(self.world.fresh_handle()),
                    Some(FsNode::Dir) => Value::Int(-1),
                    None if flags & 1 != 0 && self.world.parent_exists(&path) => {
                        self.world.add_file(&path, "");
                        Value::Int(self.world.fresh_handle())
                    }
                    None => Value::Int(-1),
                }
            }
            Fopen => {
                let path = want_str(arg(0))?;
                let mode = want_str(arg(1))?;
                let writing = mode.contains('w') || mode.contains('a');
                match self.world.fs.get(&path) {
                    Some(FsNode::File(_)) => Value::Handle(self.world.fresh_handle()),
                    Some(FsNode::Dir) => Value::Null,
                    None if writing && self.world.parent_exists(&path) => {
                        self.world.add_file(&path, "");
                        Value::Handle(self.world.fresh_handle())
                    }
                    None => Value::Null,
                }
            }
            Close | Free | Memset | Memcpy | Setsockopt => Value::Int(0),
            Read | Fgets => Value::Int(0),
            Write => Value::Int(arg(2).as_int().unwrap_or(0)),
            Stat | Access => {
                let path = want_str(arg(0))?;
                Value::Int(if self.world.fs.contains_key(&path) {
                    0
                } else {
                    -1
                })
            }
            Unlink => {
                let path = want_str(arg(0))?;
                Value::Int(if self.world.fs.remove(&path).is_some() {
                    0
                } else {
                    -1
                })
            }
            Chmod => {
                let path = want_str(arg(0))?;
                Value::Int(if self.world.fs.contains_key(&path) {
                    0
                } else {
                    -1
                })
            }
            Mkdir => {
                let path = want_str(arg(0))?;
                if self.world.parent_exists(&path) && !self.world.fs.contains_key(&path) {
                    self.world.add_dir(&path);
                    Value::Int(0)
                } else {
                    Value::Int(-1)
                }
            }
            Opendir => {
                let path = want_str(arg(0))?;
                match self.world.fs.get(&path) {
                    Some(FsNode::Dir) => Value::Handle(self.world.fresh_handle()),
                    _ => Value::Null,
                }
            }
            Chroot => {
                let path = want_str(arg(0))?;
                match self.world.fs.get(&path) {
                    Some(FsNode::Dir) => Value::Int(0),
                    _ => Value::Int(-1),
                }
            }
            Socket => Value::Int(self.world.fresh_handle()),
            Bind => {
                let port = arg(1).as_int().unwrap_or(-1);
                Value::Int(if self.world.bind_port(port) { 0 } else { -1 })
            }
            Listen => {
                let backlog = arg(1).as_int().unwrap_or(0);
                if backlog < 0 {
                    Value::Int(-1)
                } else {
                    self.world.listening = true;
                    Value::Int(0)
                }
            }
            Accept => {
                if self.world.listening {
                    Value::Int(self.world.fresh_handle())
                } else {
                    Value::Int(-1)
                }
            }
            Connect => {
                let port = arg(1).as_int().unwrap_or(-1);
                let reachable = (1..=65535).contains(&port)
                    && (self.world.occupied_ports.contains(&(port as u16))
                        || self.world.bound_ports.contains(&(port as u16)));
                Value::Int(if reachable { 0 } else { -1 })
            }
            Htons | Ntohs => Value::Int((arg(0).as_int().unwrap_or(0) as u16) as i64),
            InetAddr => {
                let s = want_str(arg(0))?;
                match parse_ipv4(&s) {
                    Some(v) => Value::Int(v),
                    None => Value::Int(-1),
                }
            }
            Gethostbyname => {
                let h = want_str(arg(0))?;
                if self.world.hosts.contains_key(&h) {
                    Value::Handle(self.world.fresh_handle())
                } else {
                    Value::Null
                }
            }
            Getpwnam => {
                let u = want_str(arg(0))?;
                if self.world.users.contains(&u) {
                    Value::Handle(self.world.fresh_handle())
                } else {
                    Value::Null
                }
            }
            Getgrnam => {
                let g = want_str(arg(0))?;
                if self.world.groups.contains(&g) {
                    Value::Handle(self.world.fresh_handle())
                } else {
                    Value::Null
                }
            }
            Getuid => Value::Int(0),
            Setuid => Value::Int(0),
            Sleep | Usleep | Alarm => {
                let n = arg(0).as_int().unwrap_or(0);
                let secs = if b == Usleep { n / 1_000_000 } else { n };
                if secs > 0 {
                    self.world.clock += secs;
                    self.world.slept += secs;
                    if self.world.slept > self.sleep_budget {
                        return Err(VmHalt::Hang);
                    }
                }
                Value::Int(0)
            }
            Time => Value::Int(self.world.clock),
            Exit => {
                return Err(VmHalt::Exit(arg(0).as_int().unwrap_or(0) as i32));
            }
            Abort => return Err(VmHalt::Fatal(Signal::Abort)),
            Malloc | Calloc => {
                let n = if b == Calloc {
                    arg(0)
                        .as_int()
                        .unwrap_or(0)
                        .saturating_mul(arg(1).as_int().unwrap_or(0))
                } else {
                    arg(0).as_int().unwrap_or(0)
                };
                if self.world.alloc(n) {
                    Value::Handle(self.world.fresh_handle())
                } else {
                    Value::Null
                }
            }
            Printf => {
                let fmt = want_str(arg(0))?;
                let text = self.format(&fmt, &args[1..]);
                self.log(LogStream::Stdout, text);
                Value::Int(0)
            }
            Fprintf => {
                let stream = if arg(0).as_int() == Some(2) {
                    LogStream::Stderr
                } else {
                    LogStream::Stdout
                };
                let fmt = want_str(arg(1))?;
                let text = self.format(&fmt, &args[2..]);
                self.log(stream, text);
                Value::Int(0)
            }
            Syslog | LogError | LogWarn | LogInfo => {
                let level = match b {
                    LogError => "ERROR: ",
                    LogWarn => "WARN: ",
                    LogInfo => "INFO: ",
                    _ => "",
                };
                let fmt = want_str(arg(0))?;
                let text = format!("{level}{}", self.format(&fmt, &args[1..]));
                self.log(LogStream::Syslog, text);
                Value::Int(0)
            }
            Perror => {
                let s = want_str(arg(0))?;
                self.log(LogStream::Stderr, format!("{s}: error"));
                Value::Int(0)
            }
            Assert => {
                if !arg(0).truthy() {
                    return Err(VmHalt::Fatal(Signal::Abort));
                }
                Value::Int(0)
            }
            Getenv => Value::Null,
            Rand => {
                self.rng = self
                    .rng
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                Value::Int(((self.rng >> 33) & 0x7fff_ffff) as i64)
            }
            SockaddrSetPort => Value::Int(0),
        })
    }

    fn do_sscanf(&mut self, src: &str, fmt: &str, outs: &[Value]) -> Result<Value, VmHalt> {
        // Single-conversion model: %d/%i/%ld, %f, %s. On mismatch the
        // out-parameter is left untouched (the paper's "undefined" unsafe
        // behaviour, Figure 6d).
        let mut matched = 0i64;
        let mut out_iter = outs.iter();
        for spec in ["%d", "%i", "%ld", "%f", "%s"] {
            if !fmt.contains(spec) {
                continue;
            }
            let Some(out) = out_iter.next() else { break };
            let Value::Ref(t) = out else { continue };
            match spec {
                "%f" => {
                    let v = parse_c_float(src);
                    if src
                        .trim_start()
                        .starts_with(|c: char| c.is_ascii_digit() || c == '-')
                    {
                        self.write_target(t, Value::Float(v))?;
                        matched += 1;
                    }
                }
                "%s" => {
                    let word = src.split_whitespace().next().unwrap_or("");
                    if !word.is_empty() {
                        self.write_target(t, Value::Str(word.to_string()))?;
                        matched += 1;
                    }
                }
                _ => {
                    let (v, digits) = parse_c_int(src);
                    if digits {
                        self.write_target(t, Value::Int(v as i32 as i64))?;
                        matched += 1;
                    }
                }
            }
            break;
        }
        Ok(Value::Int(matched))
    }

    fn format(&self, fmt: &str, args: &[Value]) -> String {
        let mut out = String::new();
        let mut chars = fmt.chars().peekable();
        let mut ai = 0usize;
        while let Some(c) = chars.next() {
            if c != '%' {
                out.push(c);
                continue;
            }
            // Consume length modifiers.
            let mut spec = String::new();
            while let Some(&n) = chars.peek() {
                spec.push(n);
                chars.next();
                if n.is_ascii_alphabetic() || n == '%' {
                    break;
                }
            }
            if spec == "%" {
                out.push('%');
                continue;
            }
            let arg = args.get(ai).cloned().unwrap_or(Value::Null);
            ai += 1;
            let last = spec.chars().last().unwrap_or('s');
            match last {
                'd' | 'i' | 'u' | 'l' | 'x' => out.push_str(&arg.as_int().unwrap_or(0).to_string()),
                'f' | 'g' => out.push_str(&format!("{:.3}", as_f64(&arg))),
                'c' => out.push(arg.as_int().unwrap_or(63) as u8 as char),
                's' => match arg {
                    Value::Str(s) => out.push_str(&s),
                    Value::Null => out.push_str("(null)"),
                    other => out.push_str(&other.to_string()),
                },
                _ => out.push('?'),
            }
        }
        out
    }

    fn log(&mut self, stream: LogStream, text: String) {
        self.logs.push(LogLine { stream, text });
    }
}

// --- Value helpers ---------------------------------------------------------

fn const_to_value(c: &ConstVal) -> Value {
    match c {
        ConstVal::Int(v) => Value::Int(*v),
        ConstVal::Float(v) => Value::Float(*v),
        ConstVal::Str(s) => Value::Str(s.clone()),
        ConstVal::Bool(b) => Value::Int(i64::from(*b)),
        ConstVal::Null => Value::Null,
        ConstVal::FuncRef(f) => Value::FuncRef(*f),
        ConstVal::GlobalRef(g) => Value::Ref(RefTarget::Global(*g, Vec::new())),
        ConstVal::Aggregate(items) => Value::Agg(items.iter().map(const_to_value).collect()),
    }
}

fn zero_value(ty: &CType, module: &Module) -> Value {
    match ty {
        CType::Float { .. } => Value::Float(0.0),
        CType::Ptr(_) | CType::FuncPtr => Value::Null,
        CType::Array(elem, n) => Value::Agg(vec![zero_value(elem, module); *n]),
        CType::Struct(name) => {
            let fields = module
                .struct_layout(name)
                .map(|l| l.fields.clone())
                .unwrap_or_default();
            Value::Agg(fields.iter().map(|(_, t)| zero_value(t, module)).collect())
        }
        _ => Value::Int(0),
    }
}

fn push_path(t: &mut RefTarget, i: u32) {
    match t {
        RefTarget::Global(_, p) | RefTarget::Slot(_, _, p) => p.push(i),
    }
}

fn navigate<'a>(mut v: &'a Value, path: &[u32]) -> Option<&'a Value> {
    for &i in path {
        match v {
            Value::Agg(items) => v = items.get(i as usize)?,
            _ => return None,
        }
    }
    Some(v)
}

fn navigate_mut<'a>(mut v: &'a mut Value, path: &[u32]) -> Option<&'a mut Value> {
    for &i in path {
        match v {
            Value::Agg(items) => v = items.get_mut(i as usize)?,
            _ => return None,
        }
    }
    Some(v)
}

fn as_f64(v: &Value) -> f64 {
    match v {
        Value::Float(f) => *f,
        other => other.as_int().unwrap_or(0) as f64,
    }
}

fn cast_value(v: Value, ty: &CType) -> Value {
    match ty {
        CType::Int { bits, signed } => {
            let x = match &v {
                Value::Float(f) => *f as i64,
                other => other.as_int().unwrap_or(0),
            };
            let x = match (bits, signed) {
                (8, true) => x as i8 as i64,
                (8, false) => x as u8 as i64,
                (16, true) => x as i16 as i64,
                (16, false) => x as u16 as i64,
                (32, true) => x as i32 as i64,
                (32, false) => x as u32 as i64,
                _ => x,
            };
            Value::Int(x)
        }
        CType::Bool => Value::Int(i64::from(v.truthy())),
        CType::Float { .. } => Value::Float(as_f64(&v)),
        _ => v,
    }
}

/// C `atoi`/`strtol` semantics: leading whitespace, optional sign, digits
/// until the first non-digit; saturates at i64 bounds. Returns the value
/// and whether any digit was consumed.
fn parse_c_int(s: &str) -> (i64, bool) {
    let s = s.trim_start();
    let (neg, rest) = match s.strip_prefix('-') {
        Some(r) => (true, r),
        None => (false, s.strip_prefix('+').unwrap_or(s)),
    };
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    if digits.is_empty() {
        return (0, false);
    }
    let mut acc: i64 = 0;
    for d in digits.bytes() {
        acc = acc.saturating_mul(10).saturating_add((d - b'0') as i64);
    }
    ((if neg { -acc } else { acc }), true)
}

fn parse_c_float(s: &str) -> f64 {
    let s = s.trim_start();
    let mut end = 0;
    let bytes = s.as_bytes();
    if end < bytes.len() && (bytes[end] == b'-' || bytes[end] == b'+') {
        end += 1;
    }
    let mut seen_dot = false;
    while end < bytes.len() && (bytes[end].is_ascii_digit() || (bytes[end] == b'.' && !seen_dot)) {
        if bytes[end] == b'.' {
            seen_dot = true;
        }
        end += 1;
    }
    s[..end].parse().unwrap_or(0.0)
}

fn parse_ipv4(s: &str) -> Option<i64> {
    let parts: Vec<&str> = s.split('.').collect();
    if parts.len() != 4 {
        return None;
    }
    let mut acc: i64 = 0;
    for p in parts {
        let v: i64 = p.parse().ok()?;
        if !(0..=255).contains(&v) {
            return None;
        }
        acc = (acc << 8) | v;
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vm_for(src: &str) -> (Module, World) {
        let p = spex_lang::parse_program(src).unwrap();
        let m = spex_ir::lower_program(&p).unwrap();
        (m, World::default())
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let (m, w) =
            vm_for("int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }");
        let mut vm = Vm::new(&m, w);
        assert_eq!(vm.call("fib", &[Value::Int(10)]).unwrap(), Value::Int(55));
    }

    #[test]
    fn globals_persist_across_calls() {
        let (m, w) = vm_for(
            "int counter = 0;
             void bump() { counter += 1; }
             int get() { return counter; }",
        );
        let mut vm = Vm::new(&m, w);
        vm.call("bump", &[]).unwrap();
        vm.call("bump", &[]).unwrap();
        assert_eq!(vm.call("get", &[]).unwrap(), Value::Int(2));
        assert_eq!(vm.global_value("counter"), Some(&Value::Int(2)));
    }

    #[test]
    fn struct_table_and_pointer_stores() {
        let (m, w) = vm_for(
            r#"
            struct opt { char* name; int* var; };
            int threads = 4;
            struct opt options[] = { { "threads", &threads } };
            void set_opt(int i, char* value) {
                *(options[i].var) = atoi(value);
            }
            int get_threads() { return threads; }
            "#,
        );
        let mut vm = Vm::new(&m, w);
        vm.call("set_opt", &[Value::Int(0), Value::str("32")])
            .unwrap();
        assert_eq!(vm.call("get_threads", &[]).unwrap(), Value::Int(32));
    }

    #[test]
    fn function_pointer_dispatch() {
        let (m, w) = vm_for(
            r#"
            struct cmd { char* name; fnptr handler; };
            int doubled = 0;
            int set_double(char* v) { doubled = atoi(v) * 2; return 0; }
            struct cmd cmds[] = { { "double", set_double } };
            int run(char* v) {
                cmds[0].handler(v);
                return doubled;
            }
            "#,
        );
        let mut vm = Vm::new(&m, w);
        assert_eq!(vm.call("run", &[Value::str("21")]).unwrap(), Value::Int(42));
    }

    #[test]
    fn null_deref_is_segv() {
        let (m, w) = vm_for(
            "int read_it(int* p) { return *p; }
             int go() { return read_it(NULL); }",
        );
        let mut vm = Vm::new(&m, w);
        assert_eq!(vm.call("go", &[]).unwrap_err(), VmHalt::Fatal(Signal::Segv));
    }

    #[test]
    fn out_of_bounds_index_is_segv() {
        let (m, w) = vm_for(
            "int table[4];
             int peek(int i) { return table[i]; }",
        );
        let mut vm = Vm::new(&m, w);
        assert_eq!(vm.call("peek", &[Value::Int(2)]).unwrap(), Value::Int(0));
        assert_eq!(
            vm.call("peek", &[Value::Int(100)]).unwrap_err(),
            VmHalt::Fatal(Signal::Segv)
        );
    }

    #[test]
    fn division_by_zero_is_fpe() {
        let (m, w) = vm_for("int div(int a, int b) { return a / b; }");
        let mut vm = Vm::new(&m, w);
        assert_eq!(
            vm.call("div", &[Value::Int(1), Value::Int(0)]).unwrap_err(),
            VmHalt::Fatal(Signal::Fpe)
        );
    }

    #[test]
    fn exit_and_abort() {
        let (m, w) = vm_for(
            "void die() { exit(3); }
             void blow() { abort(); }",
        );
        let mut vm = Vm::new(&m, w);
        assert_eq!(vm.call("die", &[]).unwrap_err(), VmHalt::Exit(3));
        assert_eq!(
            vm.call("blow", &[]).unwrap_err(),
            VmHalt::Fatal(Signal::Abort)
        );
    }

    #[test]
    fn infinite_loop_hangs() {
        let (m, w) = vm_for("void spin() { while (1) { } }");
        let mut vm = Vm::new(&m, w);
        vm.step_budget = 10_000;
        assert_eq!(vm.call("spin", &[]).unwrap_err(), VmHalt::Hang);
    }

    #[test]
    fn absurd_sleep_hangs() {
        let (m, w) = vm_for("void nap(int s) { sleep(s); }");
        let mut vm = Vm::new(&m, w);
        vm.sleep_budget = 100;
        assert_eq!(vm.call("nap", &[Value::Int(50)]).unwrap(), Value::Int(0));
        assert_eq!(
            vm.call("nap", &[Value::Int(1000)]).unwrap_err(),
            VmHalt::Hang
        );
    }

    #[test]
    fn atoi_semantics_match_c() {
        let (m, w) = vm_for("int conv(char* s) { return atoi(s); }");
        let mut vm = Vm::new(&m, w);
        let conv = |vm: &mut Vm, s: &str| vm.call("conv", &[Value::str(s)]).unwrap();
        assert_eq!(conv(&mut vm, "42"), Value::Int(42));
        assert_eq!(conv(&mut vm, "-7"), Value::Int(-7));
        assert_eq!(conv(&mut vm, "  19 trailing"), Value::Int(19));
        // Figure 5(a): unit suffix silently ignored.
        assert_eq!(conv(&mut vm, "9G"), Value::Int(9));
        // Garbage gives zero.
        assert_eq!(conv(&mut vm, "oops"), Value::Int(0));
        // 32-bit wrap-around on overflow.
        assert_eq!(
            conv(&mut vm, "9000000000"),
            Value::Int(9000000000i64 as i32 as i64)
        );
    }

    #[test]
    fn strtol_keeps_64_bits() {
        let (m, w) = vm_for("long conv(char* s) { return strtol(s, NULL, 10); }");
        let mut vm = Vm::new(&m, w);
        assert_eq!(
            vm.call("conv", &[Value::str("9000000000")]).unwrap(),
            Value::Int(9_000_000_000)
        );
    }

    #[test]
    fn file_system_calls() {
        let (m, mut w) = vm_for(
            r#"
            int try_open(char* path) { return open(path, 0); }
            int try_mkdir(char* path) { return mkdir(path, 493); }
            "#,
        );
        w.add_file("/etc/app.conf", "x = 1");
        let mut vm = Vm::new(&m, w);
        assert!(vm
            .call("try_open", &[Value::str("/etc/app.conf")])
            .unwrap()
            .as_int()
            .unwrap()
            .is_positive());
        assert_eq!(
            vm.call("try_open", &[Value::str("/missing")]).unwrap(),
            Value::Int(-1)
        );
        assert_eq!(
            vm.call("try_open", &[Value::str("/etc")]).unwrap(),
            Value::Int(-1),
            "opening a directory read-only fails"
        );
        assert_eq!(
            vm.call("try_mkdir", &[Value::str("/data/cache")]).unwrap(),
            Value::Int(0)
        );
        assert_eq!(
            vm.call("try_mkdir", &[Value::str("/no/parent/here")])
                .unwrap(),
            Value::Int(-1)
        );
    }

    #[test]
    fn port_binding_through_vm() {
        let (m, mut w) = vm_for("int grab(int p) { return bind(socket(0,0,0), p); }");
        w.occupy_port(80);
        let mut vm = Vm::new(&m, w);
        assert_eq!(vm.call("grab", &[Value::Int(80)]).unwrap(), Value::Int(-1));
        assert_eq!(vm.call("grab", &[Value::Int(8080)]).unwrap(), Value::Int(0));
        assert_eq!(vm.call("grab", &[Value::Int(0)]).unwrap(), Value::Int(-1));
        assert_eq!(
            vm.call("grab", &[Value::Int(99999)]).unwrap(),
            Value::Int(-1)
        );
    }

    #[test]
    fn logging_is_captured_with_formatting() {
        let (m, w) = vm_for(
            r#"
            void report(char* name, int v) {
                fprintf(stderr, "bad value %d for %s", v, name);
                log_error("param %s rejected", name);
            }
            "#,
        );
        let mut vm = Vm::new(&m, w);
        vm.call("report", &[Value::str("threads"), Value::Int(99)])
            .unwrap();
        let text = vm.log_text();
        assert!(text.contains("bad value 99 for threads"));
        assert!(text.contains("ERROR: param threads rejected"));
        assert_eq!(vm.logs[0].stream, LogStream::Stderr);
        assert_eq!(vm.logs[1].stream, LogStream::Syslog);
    }

    #[test]
    fn sscanf_leaves_target_on_mismatch() {
        let (m, w) = vm_for(
            r#"
            int parse(char* s) {
                int v = 1234;
                sscanf(s, "%i", &v);
                return v;
            }
            "#,
        );
        let mut vm = Vm::new(&m, w);
        assert_eq!(
            vm.call("parse", &[Value::str("77")]).unwrap(),
            Value::Int(77)
        );
        // Mismatch: v keeps its previous (garbage) value — Figure 6(d).
        assert_eq!(
            vm.call("parse", &[Value::str("abc")]).unwrap(),
            Value::Int(1234)
        );
    }

    #[test]
    fn strcmp_family() {
        let (m, w) = vm_for(
            r#"
            int eq(char* a, char* b) { return strcmp(a, b) == 0; }
            int ieq(char* a, char* b) { return strcasecmp(a, b) == 0; }
            "#,
        );
        let mut vm = Vm::new(&m, w);
        assert_eq!(
            vm.call("eq", &[Value::str("on"), Value::str("ON")])
                .unwrap(),
            Value::Int(0)
        );
        assert_eq!(
            vm.call("ieq", &[Value::str("on"), Value::str("ON")])
                .unwrap(),
            Value::Int(1)
        );
    }

    #[test]
    fn strcmp_on_null_is_segv() {
        let (m, w) = vm_for("int f(char* a) { return strcmp(a, \"x\"); }");
        let mut vm = Vm::new(&m, w);
        assert_eq!(
            vm.call("f", &[Value::Null]).unwrap_err(),
            VmHalt::Fatal(Signal::Segv)
        );
    }

    #[test]
    fn getpwnam_and_hosts() {
        let (m, w) = vm_for(
            r#"
            int user_ok(char* u) { return getpwnam(u) != NULL; }
            int host_ok(char* h) { return gethostbyname(h) != NULL; }
            "#,
        );
        let mut vm = Vm::new(&m, w);
        assert_eq!(
            vm.call("user_ok", &[Value::str("nobody")]).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            vm.call("user_ok", &[Value::str("ghost")]).unwrap(),
            Value::Int(0)
        );
        assert_eq!(
            vm.call("host_ok", &[Value::str("localhost")]).unwrap(),
            Value::Int(1)
        );
    }

    #[test]
    fn inet_addr_parsing() {
        let (m, w) = vm_for("int ip(char* s) { return inet_addr(s) != -1; }");
        let mut vm = Vm::new(&m, w);
        assert_eq!(
            vm.call("ip", &[Value::str("192.168.0.1")]).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            vm.call("ip", &[Value::str("999.1.1.1")]).unwrap(),
            Value::Int(0)
        );
        assert_eq!(
            vm.call("ip", &[Value::str("not-an-ip")]).unwrap(),
            Value::Int(0)
        );
    }

    #[test]
    fn malloc_budget_returns_null() {
        let (m, mut w) = vm_for("int big(long n) { return malloc(n) != NULL; }");
        w.mem_limit = 1024;
        let mut vm = Vm::new(&m, w);
        assert_eq!(vm.call("big", &[Value::Int(512)]).unwrap(), Value::Int(1));
        assert_eq!(
            vm.call("big", &[Value::Int(100_000)]).unwrap(),
            Value::Int(0)
        );
    }

    #[test]
    fn string_char_indexing() {
        let (m, w) = vm_for(
            r#"
            int first_lower(char* s) {
                int c = s[0];
                return c >= 97 && c <= 122;
            }
            "#,
        );
        let mut vm = Vm::new(&m, w);
        assert_eq!(
            vm.call("first_lower", &[Value::str("abc")]).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            vm.call("first_lower", &[Value::str("ABC")]).unwrap(),
            Value::Int(0)
        );
    }

    #[test]
    fn htons_truncates_like_c() {
        let (m, w) = vm_for("int conv(int p) { return htons(p); }");
        let mut vm = Vm::new(&m, w);
        // 70000 wraps into u16 range — the classic invalid-port confusion.
        assert_eq!(
            vm.call("conv", &[Value::Int(70000)]).unwrap(),
            Value::Int(70000 % 65536)
        );
    }
}
