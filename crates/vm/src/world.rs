//! The modelled operating system the subject systems run against.

use std::collections::{HashMap, HashSet};

/// A node of the modelled file system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsNode {
    /// Regular file with content.
    File(String),
    /// Directory.
    Dir,
}

/// The simulated OS state: file system, network, identities, clock, memory.
///
/// Built fresh per injection run so state never leaks between tests.
#[derive(Debug, Clone)]
pub struct World {
    /// Absolute path → node.
    pub fs: HashMap<String, FsNode>,
    /// Ports already taken by other processes (binding them fails).
    pub occupied_ports: HashSet<u16>,
    /// Ports bound by this run.
    pub bound_ports: HashSet<u16>,
    /// Whether `listen` has been called on a bound socket.
    pub listening: bool,
    /// Known local users.
    pub users: HashSet<String>,
    /// Known local groups.
    pub groups: HashSet<String>,
    /// Resolvable host names.
    pub hosts: HashMap<String, String>,
    /// Virtual wall-clock seconds.
    pub clock: i64,
    /// Total virtual seconds slept by this run (hang detection input).
    pub slept: i64,
    /// Allocation budget in bytes.
    pub mem_limit: i64,
    /// Bytes currently allocated.
    pub allocated: i64,
    /// Next file-descriptor / handle number.
    pub next_handle: i64,
}

impl Default for World {
    fn default() -> Self {
        let mut fs = HashMap::new();
        for d in ["/", "/etc", "/var", "/var/log", "/var/run", "/tmp", "/data"] {
            fs.insert(d.to_string(), FsNode::Dir);
        }
        fs.insert("/etc/passwd".into(), FsNode::File("root:0".into()));
        let mut users = HashSet::new();
        users.insert("root".to_string());
        users.insert("nobody".to_string());
        users.insert("daemon".to_string());
        let mut groups = HashSet::new();
        groups.insert("root".to_string());
        groups.insert("daemon".to_string());
        let mut hosts = HashMap::new();
        hosts.insert("localhost".to_string(), "127.0.0.1".to_string());
        World {
            fs,
            occupied_ports: HashSet::new(),
            bound_ports: HashSet::new(),
            listening: false,
            users,
            groups,
            hosts,
            clock: 1_700_000_000,
            slept: 0,
            mem_limit: 1 << 30,
            allocated: 0,
            next_handle: 3,
        }
    }
}

impl World {
    /// Adds a regular file.
    pub fn add_file(&mut self, path: &str, content: &str) -> &mut Self {
        self.fs
            .insert(path.to_string(), FsNode::File(content.into()));
        self
    }

    /// Adds a directory.
    pub fn add_dir(&mut self, path: &str) -> &mut Self {
        self.fs.insert(path.to_string(), FsNode::Dir);
        self
    }

    /// Marks a port as already occupied by another process.
    pub fn occupy_port(&mut self, port: u16) -> &mut Self {
        self.occupied_ports.insert(port);
        self
    }

    /// Whether the parent directory of `path` exists.
    pub fn parent_exists(&self, path: &str) -> bool {
        match path.rfind('/') {
            Some(0) => true,
            Some(i) => matches!(self.fs.get(&path[..i]), Some(FsNode::Dir)),
            None => false,
        }
    }

    /// Allocates a fresh handle/file descriptor.
    pub fn fresh_handle(&mut self) -> i64 {
        let h = self.next_handle;
        self.next_handle += 1;
        h
    }

    /// Attempts to bind a port. Returns `false` when the port is invalid or
    /// occupied.
    pub fn bind_port(&mut self, port: i64) -> bool {
        if !(1..=65535).contains(&port) {
            return false;
        }
        let port = port as u16;
        if self.occupied_ports.contains(&port) || self.bound_ports.contains(&port) {
            return false;
        }
        self.bound_ports.insert(port);
        true
    }

    /// Attempts to allocate `n` bytes.
    pub fn alloc(&mut self, n: i64) -> bool {
        if n < 0 || self.allocated.saturating_add(n) > self.mem_limit {
            return false;
        }
        self.allocated += n;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_world_has_base_layout() {
        let w = World::default();
        assert_eq!(w.fs.get("/etc"), Some(&FsNode::Dir));
        assert!(w.users.contains("nobody"));
        assert!(w.hosts.contains_key("localhost"));
    }

    #[test]
    fn parent_exists_logic() {
        let w = World::default();
        assert!(w.parent_exists("/var/log/app.log"));
        assert!(w.parent_exists("/rootfile"));
        assert!(!w.parent_exists("/no/such/dir/file"));
        assert!(!w.parent_exists("relative"));
    }

    #[test]
    fn port_binding_rules() {
        let mut w = World::default();
        w.occupy_port(80);
        assert!(!w.bind_port(80), "occupied port");
        assert!(!w.bind_port(0), "port zero");
        assert!(!w.bind_port(70000), "out of range");
        assert!(!w.bind_port(-1), "negative");
        assert!(w.bind_port(8080));
        assert!(!w.bind_port(8080), "double bind");
    }

    #[test]
    fn allocation_budget() {
        let mut w = World {
            mem_limit: 100,
            ..Default::default()
        };
        assert!(w.alloc(60));
        assert!(!w.alloc(50), "over budget");
        assert!(!w.alloc(-1), "negative size");
        assert!(w.alloc(40));
    }
}
