//! Execution substrate for misconfiguration-injection testing.
//!
//! SPEX-INJ launches the target system with an injected configuration and
//! observes its reaction (§3.1): crashes, hangs, early terminations, log
//! messages, functional test results. The paper runs the real servers; this
//! reproduction executes the subject systems' lowered IR in an interpreter
//! against a modelled OS ([`World`]): a small file system, a port table,
//! users/groups, a virtual clock and a memory budget.
//!
//! The interpreter reproduces the *C-level failure semantics* the paper's
//! vulnerability taxonomy depends on:
//!
//! * null-pointer dereference and out-of-bounds indexing raise SIGSEGV;
//! * `abort()`/failed `assert()` raise SIGABRT, division by zero SIGFPE;
//! * `atoi` wraps 32-bit on overflow and ignores trailing garbage
//!   (`atoi("9G")` is 9 — Figure 5a's silently misread unit);
//! * `sscanf("%i")` leaves its out-parameter untouched on mismatch
//!   (Figure 6d's "undefined on invalid input");
//! * a step budget and a virtual-sleep budget turn infinite loops and
//!   absurd timeouts into [`VmHalt::Hang`].
//!
//! # Examples
//!
//! ```
//! use spex_vm::{Value, Vm, World};
//!
//! let program = spex_lang::parse_program(
//!     "int threads = 0;
//!      void set_threads(char* v) { threads = atoi(v); }
//!      int get_threads() { return threads; }",
//! )
//! .unwrap();
//! let module = spex_ir::lower_program(&program).unwrap();
//! let mut vm = Vm::new(&module, World::default());
//! vm.call("set_threads", &[Value::str("32")]).unwrap();
//! assert_eq!(vm.call("get_threads", &[]).unwrap(), Value::Int(32));
//! ```

pub mod interp;
pub mod value;
pub mod world;

pub use interp::{Vm, VmHalt};
pub use value::{LogLine, LogStream, Signal, Value};
pub use world::{FsNode, World};
