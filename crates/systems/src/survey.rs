//! The 18-project mapping-convention survey (Table 1).

/// One surveyed project.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SurveyEntry {
    /// Project name.
    pub software: &'static str,
    /// What the project is.
    pub desc: &'static str,
    /// Mapping convention observed.
    pub convention: &'static str,
}

/// The Table 1 data: all 18 projects fall into three conventions (or a
/// combination).
pub const SURVEY: &[SurveyEntry] = &[
    SurveyEntry {
        software: "Storage-A",
        desc: "Storage",
        convention: "struct",
    },
    SurveyEntry {
        software: "MySQL",
        desc: "DB",
        convention: "struct",
    },
    SurveyEntry {
        software: "PostgreSQL",
        desc: "DB",
        convention: "struct",
    },
    SurveyEntry {
        software: "Apache httpd",
        desc: "Web",
        convention: "struct",
    },
    SurveyEntry {
        software: "lighttpd",
        desc: "Web",
        convention: "struct",
    },
    SurveyEntry {
        software: "Nginx",
        desc: "Web",
        convention: "struct",
    },
    SurveyEntry {
        software: "OpenSSH",
        desc: "SSH",
        convention: "struct",
    },
    SurveyEntry {
        software: "Postfix",
        desc: "Email",
        convention: "struct",
    },
    SurveyEntry {
        software: "VSFTP",
        desc: "FTP",
        convention: "struct",
    },
    SurveyEntry {
        software: "Squid",
        desc: "Proxy",
        convention: "comparison",
    },
    SurveyEntry {
        software: "Redis",
        desc: "DB",
        convention: "comparison",
    },
    SurveyEntry {
        software: "ntpd",
        desc: "NTP",
        convention: "comparison",
    },
    SurveyEntry {
        software: "CVS",
        desc: "SCM",
        convention: "comparison",
    },
    SurveyEntry {
        software: "Hypertable",
        desc: "DB",
        convention: "container",
    },
    SurveyEntry {
        software: "MongoDB",
        desc: "DB",
        convention: "container",
    },
    SurveyEntry {
        software: "AOLServer",
        desc: "Web",
        convention: "container",
    },
    SurveyEntry {
        software: "Subversion",
        desc: "SCM",
        convention: "container",
    },
    SurveyEntry {
        software: "OpenLDAP",
        desc: "LDAP",
        convention: "hybrid",
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survey_has_18_projects_in_three_conventions() {
        assert_eq!(SURVEY.len(), 18);
        let conventions: std::collections::HashSet<&str> =
            SURVEY.iter().map(|e| e.convention).collect();
        assert!(conventions.contains("struct"));
        assert!(conventions.contains("comparison"));
        assert!(conventions.contains("container"));
        // All but one (the hybrid) use exactly one convention.
        let hybrids = SURVEY.iter().filter(|e| e.convention == "hybrid").count();
        assert_eq!(hybrids, 1);
    }
}
