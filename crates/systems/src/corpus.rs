//! Historical misconfiguration-case corpus (Tables 9 and 10).
//!
//! The paper samples 246 real customer cases from Storage-A's issue
//! database and 177 cases from the open-source systems' forums, then asks:
//! how many could SPEX have avoided? This module carries a synthetic corpus
//! with the same category structure, so the Table 9/10 analysis re-runs
//! for real against the inferred constraints.

use crate::rng::SplitMix64;

/// Why a case can or cannot benefit from SPEX (the Table 10 columns, plus
/// the avoidable bucket of Table 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CaseCategory {
    /// The mistake violates an inferable constraint and the reaction was
    /// bad — SPEX would have flagged the vulnerability (Table 9's
    /// "potentially avoided").
    Avoidable,
    /// The constraint exists only across software boundaries (e.g. the app
    /// and its firewall) — outside single-program inference.
    CrossSoftware,
    /// The constraint is program-specific with no concrete code pattern.
    SingleSoftwareUninferable,
    /// The setting was legal but did not match the user's intention.
    ConformsToConstraints,
    /// The system already reacted well; the user reported it anyway.
    GoodReaction,
}

/// One historical misconfiguration case.
#[derive(Debug, Clone)]
pub struct HistoricalCase {
    /// Which system the case belongs to.
    pub system: &'static str,
    /// Case identifier.
    pub id: u32,
    /// Its category.
    pub category: CaseCategory,
}

/// Per-system sampled case counts (Table 9's "parameter misconfig."
/// column).
pub const CASE_COUNTS: &[(&str, usize)] = &[
    ("Storage-A", 246),
    ("Apache", 50),
    ("MySQL", 47),
    ("OpenLDAP", 49),
];

/// Category mix per system, tuned to the paper's Tables 9 and 10:
/// `(avoidable, cross_sw, single_sw, conforms, good_reaction)` weights.
fn mix(system: &str) -> [f64; 5] {
    match system {
        // 27.6% avoidable; 7.7/20.7/30.9/13.0 in Table 10.
        "Storage-A" => [0.276, 0.207, 0.077, 0.309, 0.130],
        // 38.0% avoidable; 10/24/18/10.
        "Apache" => [0.380, 0.240, 0.100, 0.180, 0.100],
        // 29.8% avoidable; 2.1/25.5/38.3/4.3.
        "MySQL" => [0.298, 0.255, 0.021, 0.383, 0.043],
        // 24.5% avoidable; 18.4/8.2/24.5/24.5.
        "OpenLDAP" => [0.245, 0.082, 0.184, 0.245, 0.245],
        _ => [0.3, 0.2, 0.1, 0.3, 0.1],
    }
}

/// Deterministically samples the corpus.
pub fn sample_corpus() -> Vec<HistoricalCase> {
    let mut rng = SplitMix64::seed_from_u64(0x5feb);
    let mut cases = Vec::new();
    let mut id = 0;
    for &(system, count) in CASE_COUNTS {
        let weights = mix(system);
        for _ in 0..count {
            id += 1;
            let roll: f64 = rng.gen_f64();
            let mut acc = 0.0;
            let mut category = CaseCategory::GoodReaction;
            for (i, w) in weights.iter().enumerate() {
                acc += w;
                if roll < acc {
                    category = match i {
                        0 => CaseCategory::Avoidable,
                        1 => CaseCategory::CrossSoftware,
                        2 => CaseCategory::SingleSoftwareUninferable,
                        3 => CaseCategory::ConformsToConstraints,
                        _ => CaseCategory::GoodReaction,
                    };
                    break;
                }
            }
            cases.push(HistoricalCase {
                system,
                id,
                category,
            });
        }
    }
    cases
}

/// Table 9 row: `(total cases, avoidable, percentage)` for one system.
pub fn table9_row(cases: &[HistoricalCase], system: &str) -> (usize, usize, f64) {
    let total = cases.iter().filter(|c| c.system == system).count();
    let avoidable = cases
        .iter()
        .filter(|c| c.system == system && c.category == CaseCategory::Avoidable)
        .count();
    let pct = if total == 0 {
        0.0
    } else {
        avoidable as f64 / total as f64
    };
    (total, avoidable, pct)
}

/// Table 10 row: counts of the four non-benefiting categories.
pub fn table10_row(cases: &[HistoricalCase], system: &str) -> [usize; 4] {
    let mut out = [0usize; 4];
    for c in cases.iter().filter(|c| c.system == system) {
        match c.category {
            CaseCategory::SingleSoftwareUninferable => out[0] += 1,
            CaseCategory::CrossSoftware => out[1] += 1,
            CaseCategory::ConformsToConstraints => out[2] += 1,
            CaseCategory::GoodReaction => out[3] += 1,
            CaseCategory::Avoidable => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_sizes_match_the_paper() {
        let cases = sample_corpus();
        assert_eq!(cases.len(), 246 + 50 + 47 + 49);
        let (total, _, _) = table9_row(&cases, "Storage-A");
        assert_eq!(total, 246);
    }

    #[test]
    fn avoidable_fraction_is_in_the_paper_band() {
        // The paper reports 24%–38% avoidable across systems.
        let cases = sample_corpus();
        for &(system, _) in CASE_COUNTS {
            let (_, _, pct) = table9_row(&cases, system);
            assert!(
                (0.18..=0.45).contains(&pct),
                "{system}: {pct:.2} outside band"
            );
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let a = sample_corpus();
        let b = sample_corpus();
        assert_eq!(a.len(), b.len());
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.category == y.category && x.id == y.id));
    }

    #[test]
    fn table10_partitions_the_rest() {
        let cases = sample_corpus();
        for &(system, count) in CASE_COUNTS {
            let (_, avoidable, _) = table9_row(&cases, system);
            let rest: usize = table10_row(&cases, system).iter().sum();
            assert_eq!(avoidable + rest, count);
        }
    }
}
