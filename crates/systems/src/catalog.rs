//! The seven evaluated systems (Table 4) as distribution specs.
//!
//! Parameter counts match the paper (Apache 103, MySQL 272, PostgreSQL
//! 231, OpenLDAP 86, VSFTP 124, Squid 335; Storage-A's counts are
//! confidential — its population is sized from the Table 11 constraint
//! counts). Role mixes are tuned so the table *shapes* reproduce: which
//! reaction classes dominate per system (Table 5a), the case-sensitivity
//! splits (Table 6), the unit mixes (Table 7), the unsafe-API and
//! overruling counts (Table 8), and OpenLDAP's alias-driven accuracy dip
//! (Table 12).

use crate::spec::{MappingStyle, ParamSpec, Role, SystemSpec};
use spex_conf::Dialect;

/// Builds all seven systems, smallest first.
pub fn all_systems() -> Vec<SystemSpec> {
    vec![
        openldap(),
        apache(),
        vsftp(),
        postgresql(),
        mysql(),
        squid(),
        storage_a(),
    ]
}

/// Looks up one system spec by name (case-insensitive).
pub fn system_by_name(name: &str) -> Option<SystemSpec> {
    all_systems()
        .into_iter()
        .find(|s| s.name.eq_ignore_ascii_case(name))
}

/// Incrementally builds a parameter population.
struct Pop {
    params: Vec<ParamSpec>,
    seq: usize,
}

impl Pop {
    fn new() -> Pop {
        Pop {
            params: Vec::new(),
            seq: 0,
        }
    }

    fn name(&mut self, stem: &str) -> String {
        self.seq += 1;
        format!("{stem}_{}", self.seq)
    }

    fn push(&mut self, p: ParamSpec) -> &mut Self {
        self.params.push(p);
        self
    }

    /// Adds `n` parameters built from a closure over the generated name.
    fn many(&mut self, n: usize, stem: &str, f: impl Fn(String) -> ParamSpec) -> &mut Self {
        for _ in 0..n {
            let name = self.name(stem);
            self.push(f(name));
        }
        self
    }

    /// Adds `n` dependent parameters, cycling through the controllers.
    fn deps(&mut self, n: usize, controllers: &[String], documented: bool) -> &mut Self {
        for i in 0..n {
            let c = controllers[i % controllers.len()].clone();
            let name = self.name("opt_when");
            let mut p = ParamSpec::new(name, Role::DependentOn { controller: c });
            p.documented_dep = documented;
            self.push(p);
        }
        self
    }

    /// Adds `n` min/max relation pairs.
    fn rel_pairs(&mut self, n: usize, stem: &str) -> &mut Self {
        for _ in 0..n {
            self.seq += 1;
            let min = format!("{stem}_min_{}", self.seq);
            let max = format!("{stem}_max_{}", self.seq);
            self.push(ParamSpec::new(
                &min,
                Role::MinOf {
                    partner: max.clone(),
                },
            ));
            self.push(ParamSpec::new(&max, Role::MaxOf));
        }
        self
    }

    /// Adds `n` alias pairs (the accuracy-noise mechanism).
    fn alias_pairs(&mut self, n: usize) -> &mut Self {
        for _ in 0..n {
            self.seq += 1;
            let a = format!("tuned_interval_{}", self.seq);
            let b = format!("tuned_budget_{}", self.seq);
            self.push(ParamSpec::new(
                &a,
                Role::AliasedWith {
                    partner: b.clone(),
                    time_side: true,
                },
            ));
            self.push(ParamSpec::new(
                &b,
                Role::AliasedWith {
                    partner: a.clone(),
                    time_side: false,
                },
            ));
        }
        self
    }

    /// Marks the first `n` integer-role parameters without a parse style as
    /// unsafely parsed.
    fn mark_unsafe(&mut self, n: usize) -> &mut Self {
        let mut left = n;
        for p in self.params.iter_mut() {
            if left == 0 {
                break;
            }
            let int_role = matches!(
                p.role,
                Role::Arith
                    | Role::CrashIndex
                    | Role::RangeExit { .. }
                    | Role::RangeClamp { .. }
                    | Role::TimeSleep { .. }
                    | Role::SizeAlloc { .. }
            );
            if int_role && !p.unsafe_parse {
                p.unsafe_parse = true;
                left -= 1;
            }
        }
        self
    }

    /// Names of the last `n` parameters with a given predicate (used to
    /// pick controllers).
    fn bool_controllers(&self, n: usize) -> Vec<String> {
        self.params
            .iter()
            .filter(|p| matches!(p.role, Role::BoolFlag { .. }))
            .take(n)
            .map(|p| p.name.clone())
            .collect()
    }

    fn build(
        self,
        name: &'static str,
        mapping: MappingStyle,
        dialect: Dialect,
        safe_dispatcher: bool,
    ) -> SystemSpec {
        SystemSpec {
            name,
            mapping,
            dialect,
            safe_dispatcher,
            params: self.params,
        }
    }
}

// Common role shorthands.
fn word_enum(insensitive: bool, strict: bool) -> Role {
    Role::WordEnum {
        words: vec!["none", "basic", "full"],
        insensitive,
        strict,
    }
}

/// Apache httpd: handler-table mapping, directive config files.
pub fn apache() -> SystemSpec {
    let mut p = Pop::new();
    p.many(2, "document_root", |n| {
        ParamSpec::new(
            n,
            Role::File {
                checked: true,
                log: true,
            },
        )
    })
    .many(2, "error_log", |n| {
        ParamSpec::new(
            n,
            Role::File {
                checked: true,
                log: false,
            },
        )
    })
    .many(2, "mime_types_file", |n| {
        ParamSpec::new(
            n,
            Role::File {
                checked: false,
                log: false,
            },
        )
    })
    .many(1, "server_root", |n| {
        ParamSpec::new(n, Role::Dir { checked: true })
    })
    .many(1, "cache_dir", |n| {
        ParamSpec::new(n, Role::Dir { checked: false })
    })
    .many(2, "listen_port", |n| {
        ParamSpec::new(
            n,
            Role::Port {
                checked: true,
                log: true,
            },
        )
    })
    .many(2, "status_port", |n| {
        ParamSpec::new(
            n,
            Role::Port {
                checked: false,
                log: false,
            },
        )
    })
    .many(1, "run_user", |n| {
        ParamSpec::new(n, Role::User { checked: true })
    })
    .many(1, "suexec_user", |n| {
        ParamSpec::new(n, Role::User { checked: false })
    })
    .many(8, "timeout", |n| {
        ParamSpec::new(
            n,
            Role::TimeSleep {
                scale: 1,
                micro: false,
            },
        )
    })
    .many(1, "poll_interval_ms", |n| {
        ParamSpec::new(
            n,
            Role::TimeSleep {
                scale: 1000,
                micro: true,
            },
        )
    })
    .many(6, "send_buffer", |n| {
        ParamSpec::new(
            n,
            Role::SizeAlloc {
                scale: 1,
                checked: false,
            },
        )
    })
    // Figure 6(b): the lone kilobyte-sized parameter.
    .push(ParamSpec::new(
        "MaxMemFree",
        Role::SizeAlloc {
            scale: 1024,
            checked: true,
        },
    ))
    .many(3, "hostname_lookups", |n| {
        ParamSpec::new(n, word_enum(false, true))
    })
    .many(17, "log_level", |n| {
        ParamSpec::new(n, word_enum(true, true))
    })
    .push(ParamSpec::new("override_policy", word_enum(true, false)))
    .many(8, "keep_alive", |n| {
        ParamSpec::new(n, Role::BoolFlag { strict: true })
    })
    .many(3, "thread_limit", |n| ParamSpec::new(n, Role::CrashIndex))
    .many(5, "max_clients", |n| {
        ParamSpec::new(
            n,
            Role::RangeExit {
                min: 1,
                max: 512,
                log: true,
            },
        )
        .documented()
    })
    .many(5, "server_limit", |n| {
        ParamSpec::new(
            n,
            Role::RangeExit {
                min: 1,
                max: 256,
                log: false,
            },
        )
    })
    .many(5, "min_spare", |n| {
        ParamSpec::new(n, Role::RangeClamp { min: 1, max: 64 })
    })
    .many(2, "log_mode", |n| {
        ParamSpec::new(
            n,
            Role::Switch {
                n: 3,
                loud_default: true,
            },
        )
    })
    .many(2, "mpm_mode", |n| {
        ParamSpec::new(
            n,
            Role::Switch {
                n: 3,
                loud_default: false,
            },
        )
    });
    let controllers = p.bool_controllers(1);
    p.deps(1, &controllers, false).rel_pairs(4, "spare_threads");
    let filler = 103usize.saturating_sub(p.params.len());
    p.many(filler, "limit_request", |n| ParamSpec::new(n, Role::Arith));
    p.mark_unsafe(27);
    p.build(
        "Apache",
        MappingStyle::StructHandler,
        Dialect::Directive,
        true,
    )
}

/// MySQL: option-table mapping with table-validated ranges.
pub fn mysql() -> SystemSpec {
    let mut p = Pop::new();
    p.many(90, "buffer_size", |n| {
        ParamSpec::new(n, Role::RangeTable { min: 1, max: 65536 }).documented()
    })
    .many(6, "key_cache", |n| {
        ParamSpec::new(
            n,
            Role::RangeExit {
                min: 8,
                max: 4096,
                log: true,
            },
        )
    })
    .many(6, "sort_size", |n| {
        ParamSpec::new(
            n,
            Role::RangeExit {
                min: 8,
                max: 4096,
                log: false,
            },
        )
    })
    .many(45, "history_size", |n| {
        ParamSpec::new(n, Role::RangeClamp { min: 0, max: 1024 })
    })
    .many(3, "thread_stack", |n| ParamSpec::new(n, Role::CrashIndex))
    .many(6, "binlog_format", |n| {
        ParamSpec::new(
            n,
            Role::Switch {
                n: 3,
                loud_default: false,
            },
        )
    })
    .many(2, "isolation_level", |n| {
        ParamSpec::new(
            n,
            Role::Switch {
                n: 4,
                loud_default: true,
            },
        )
    })
    .many(4, "datadir_file", |n| {
        ParamSpec::new(
            n,
            Role::File {
                checked: true,
                log: true,
            },
        )
    })
    // Figure 3(b): the stopword file opened through a helper.
    .push(ParamSpec::new(
        "ft_stopword_file",
        Role::File {
            checked: false,
            log: false,
        },
    ))
    .many(3, "relay_log", |n| {
        ParamSpec::new(
            n,
            Role::File {
                checked: false,
                log: false,
            },
        )
    })
    .many(3, "report_port", |n| {
        ParamSpec::new(
            n,
            Role::Port {
                checked: true,
                log: true,
            },
        )
    })
    .many(2, "run_user", |n| {
        ParamSpec::new(n, Role::User { checked: true })
    })
    .many(2, "tmp_dir", |n| {
        ParamSpec::new(n, Role::Dir { checked: true })
    })
    .many(2, "lock_poll_us", |n| {
        ParamSpec::new(
            n,
            Role::TimeSleep {
                scale: 1,
                micro: true,
            },
        )
    })
    .many(2, "flush_interval_ms", |n| {
        ParamSpec::new(
            n,
            Role::TimeSleep {
                scale: 1000,
                micro: true,
            },
        )
    })
    .many(6, "wait_timeout", |n| {
        ParamSpec::new(
            n,
            Role::TimeSleep {
                scale: 1,
                micro: false,
            },
        )
    })
    .many(15, "packet_size", |n| {
        ParamSpec::new(
            n,
            Role::SizeAlloc {
                scale: 1,
                checked: true,
            },
        )
    })
    // Figure 6(a): the lone case-sensitive enum option.
    .push(ParamSpec::new(
        "innodb_file_format_check",
        word_enum(false, true),
    ))
    .many(29, "sql_mode", |n| ParamSpec::new(n, word_enum(true, true)))
    .many(15, "auto_commit", |n| {
        ParamSpec::new(n, Role::BoolFlag { strict: true })
    });
    let controllers = p.bool_controllers(3);
    p.deps(5, &controllers, false)
        .rel_pairs(3, "ft_word_len")
        .alias_pairs(1);
    let filler = 272usize.saturating_sub(p.params.len());
    p.many(filler, "net_retry", |n| ParamSpec::new(n, Role::Arith));
    p.build("MySQL", MappingStyle::StructDirect, Dialect::KeyValue, true)
}

/// PostgreSQL: option-table mapping, uniformly validated, dependency-rich.
pub fn postgresql() -> SystemSpec {
    let mut p = Pop::new();
    p.many(100, "guc_int", |n| {
        ParamSpec::new(
            n,
            Role::RangeTable {
                min: 0,
                max: 100000,
            },
        )
        .documented()
    })
    .many(10, "shared_buffers", |n| {
        ParamSpec::new(
            n,
            Role::RangeExit {
                min: 16,
                max: 8192,
                log: true,
            },
        )
        .documented()
    })
    .many(8, "wal_buffers", |n| {
        ParamSpec::new(
            n,
            Role::RangeExit {
                min: 4,
                max: 2048,
                log: false,
            },
        )
    })
    .push(ParamSpec::new(
        "vacuum_threshold",
        Role::RangeClamp { min: 0, max: 1000 },
    ))
    .many(4, "hba_file", |n| {
        ParamSpec::new(
            n,
            Role::File {
                checked: true,
                log: true,
            },
        )
    })
    .many(2, "stats_port", |n| {
        ParamSpec::new(
            n,
            Role::Port {
                checked: true,
                log: true,
            },
        )
    })
    .push(ParamSpec::new("run_user", Role::User { checked: true }))
    .push(ParamSpec::new(
        "deadlock_poll_us",
        Role::TimeSleep {
            scale: 1,
            micro: true,
        },
    ))
    .many(8, "checkpoint_warning_ms", |n| {
        ParamSpec::new(
            n,
            Role::TimeSleep {
                scale: 1000,
                micro: true,
            },
        )
    })
    .many(4, "statement_timeout", |n| {
        ParamSpec::new(
            n,
            Role::TimeSleep {
                scale: 1,
                micro: false,
            },
        )
    })
    .push(ParamSpec::new(
        "autovacuum_nap_min",
        Role::TimeSleep {
            scale: 60,
            micro: false,
        },
    ))
    .push(ParamSpec::new(
        "work_mem_b",
        Role::SizeAlloc {
            scale: 1,
            checked: true,
        },
    ))
    .many(3, "temp_mem_kb", |n| {
        ParamSpec::new(
            n,
            Role::SizeAlloc {
                scale: 1024,
                checked: true,
            },
        )
    })
    .many(30, "sync_method", |n| {
        ParamSpec::new(n, word_enum(true, true))
    })
    .many(20, "fsync_like", |n| {
        ParamSpec::new(n, Role::BoolFlag { strict: true })
    });
    let controllers = p.bool_controllers(5);
    p.deps(20, &controllers, false).rel_pairs(2, "cost_limit");
    let filler = 231usize.saturating_sub(p.params.len());
    p.many(filler, "planner_weight", |n| ParamSpec::new(n, Role::Arith));
    p.build(
        "PostgreSQL",
        MappingStyle::StructDirect,
        Dialect::KeyValue,
        true,
    )
}

/// OpenLDAP: hybrid mapping, pointer-aliased parameters (lowest accuracy).
pub fn openldap() -> SystemSpec {
    let mut p = Pop::new();
    // Figure 3(d)/2: the clamped index length and the crashing thread
    // count.
    p.push(ParamSpec::new(
        "index_intlen",
        Role::RangeClamp { min: 4, max: 255 },
    ))
    .many(5, "cache_entries", |n| {
        ParamSpec::new(n, Role::RangeClamp { min: 0, max: 10000 })
    })
    .push(ParamSpec::new("listener-threads", Role::CrashIndex))
    .push(ParamSpec::new("tool-threads", Role::CrashIndex))
    .many(3, "idle_timeout", |n| {
        ParamSpec::new(
            n,
            Role::RangeExit {
                min: 0,
                max: 3600,
                log: false,
            },
        )
    })
    .many(15, "db_knob", |n| {
        ParamSpec::new(n, Role::RangeTable { min: 0, max: 4096 }).documented()
    })
    .many(2, "db_directory", |n| {
        ParamSpec::new(
            n,
            Role::File {
                checked: false,
                log: false,
            },
        )
    })
    .push(ParamSpec::new(
        "tls_cert",
        Role::File {
            checked: true,
            log: true,
        },
    ))
    .push(ParamSpec::new("backup_dir", Role::Dir { checked: false }))
    .many(2, "ldap_port", |n| {
        ParamSpec::new(
            n,
            Role::Port {
                checked: false,
                log: false,
            },
        )
    })
    .many(3, "retry_wait", |n| {
        ParamSpec::new(
            n,
            Role::TimeSleep {
                scale: 1,
                micro: false,
            },
        )
    })
    .many(2, "sockbuf_max", |n| {
        ParamSpec::new(
            n,
            Role::SizeAlloc {
                scale: 1,
                checked: false,
            },
        )
    })
    .many(9, "schema_check", |n| {
        ParamSpec::new(n, word_enum(true, true))
    })
    .many(6, "overlay_flag", |n| {
        ParamSpec::new(n, Role::BoolFlag { strict: true })
    })
    .rel_pairs(1, "conn_pool")
    .alias_pairs(3);
    let filler = 86usize.saturating_sub(p.params.len());
    p.many(filler, "limits_weight", |n| ParamSpec::new(n, Role::Arith));
    p.build(
        "OpenLDAP",
        MappingStyle::StructDirect,
        Dialect::SpaceSeparated,
        true,
    )
}

/// VSFTP: option-table mapping, dependency-heavy booleans, unsafe parses.
pub fn vsftp() -> SystemSpec {
    let mut p = Pop::new();
    p.many(44, "ftpd_flag", |n| {
        ParamSpec::new(n, Role::BoolFlag { strict: true })
    })
    .many(10, "ascii_mode", |n| {
        ParamSpec::new(n, word_enum(true, true))
    })
    .many(6, "chown_index", |n| ParamSpec::new(n, Role::CrashIndex))
    .many(8, "accept_wait", |n| {
        ParamSpec::new(n, Role::RangeClamp { min: 0, max: 600 })
    })
    .many(4, "max_login_fails", |n| {
        ParamSpec::new(
            n,
            Role::RangeExit {
                min: 1,
                max: 50,
                log: false,
            },
        )
    })
    .many(2, "banner_file", |n| {
        ParamSpec::new(
            n,
            Role::File {
                checked: true,
                log: true,
            },
        )
    })
    .many(4, "chroot_list", |n| {
        ParamSpec::new(
            n,
            Role::File {
                checked: false,
                log: false,
            },
        )
    })
    .many(2, "listen_port", |n| {
        ParamSpec::new(
            n,
            Role::Port {
                checked: false,
                log: false,
            },
        )
    })
    .many(2, "pasv_port", |n| {
        ParamSpec::new(
            n,
            Role::Port {
                checked: true,
                log: false,
            },
        )
    })
    .push(ParamSpec::new("ftp_user", Role::User { checked: true }))
    .many(2, "guest_user", |n| {
        ParamSpec::new(n, Role::User { checked: false })
    })
    .many(6, "data_timeout", |n| {
        ParamSpec::new(
            n,
            Role::TimeSleep {
                scale: 1,
                micro: false,
            },
        )
    })
    .push(ParamSpec::new(
        "xfer_buf",
        Role::SizeAlloc {
            scale: 1,
            checked: false,
        },
    ))
    .rel_pairs(1, "pasv_range");
    let controllers = p.bool_controllers(8);
    p.deps(30, &controllers, false);
    let filler = 124usize.saturating_sub(p.params.len());
    p.many(filler, "misc_limit", |n| ParamSpec::new(n, Role::Arith));
    p.mark_unsafe(20);
    p.build("VSFTP", MappingStyle::StructDirect, Dialect::KeyValue, true)
}

/// Squid: comparison mapping, case-sensitive booleans with silent
/// overruling, heavy unsafe parsing.
pub fn squid() -> SystemSpec {
    let mut p = Pop::new();
    p.many(80, "icp_flag", |n| {
        ParamSpec::new(n, Role::BoolFlag { strict: false })
    })
    .many(5, "refresh_pattern", |n| {
        ParamSpec::new(n, word_enum(false, true))
    })
    .many(76, "cache_policy", |n| {
        ParamSpec::new(n, word_enum(true, true))
    })
    .many(2, "fd_table_index", |n| ParamSpec::new(n, Role::CrashIndex))
    .many(33, "connect_timeout", |n| {
        ParamSpec::new(
            n,
            Role::TimeSleep {
                scale: 1,
                micro: false,
            },
        )
    })
    .many(6, "dns_retry_ms", |n| {
        ParamSpec::new(
            n,
            Role::TimeSleep {
                scale: 1000,
                micro: true,
            },
        )
    })
    .push(ParamSpec::new(
        "poll_us",
        Role::TimeSleep {
            scale: 1,
            micro: true,
        },
    ))
    .many(18, "cache_mem", |n| {
        ParamSpec::new(
            n,
            Role::SizeAlloc {
                scale: 1,
                checked: false,
            },
        )
    })
    .many(2, "store_objects_kb", |n| {
        ParamSpec::new(
            n,
            Role::SizeAlloc {
                scale: 1024,
                checked: false,
            },
        )
    })
    .many(5, "cache_log", |n| {
        ParamSpec::new(
            n,
            Role::File {
                checked: true,
                log: true,
            },
        )
    })
    .many(3, "error_directory", |n| {
        ParamSpec::new(
            n,
            Role::File {
                checked: false,
                log: false,
            },
        )
    })
    .many(2, "coredump_dir", |n| {
        ParamSpec::new(n, Role::Dir { checked: false })
    })
    // Figure 3(c)/5(c): the ICP port.
    .push(ParamSpec::new(
        "udp_port",
        Role::Port {
            checked: false,
            log: false,
        },
    ))
    .many(3, "http_port", |n| {
        ParamSpec::new(
            n,
            Role::Port {
                checked: true,
                log: true,
            },
        )
    })
    .many(2, "snmp_port", |n| {
        ParamSpec::new(
            n,
            Role::Port {
                checked: false,
                log: false,
            },
        )
    })
    .many(2, "effective_user", |n| {
        ParamSpec::new(n, Role::User { checked: false })
    })
    .many(10, "shutdown_lifetime", |n| {
        ParamSpec::new(n, Role::RangeClamp { min: 0, max: 120 })
    })
    .many(3, "max_filedesc", |n| {
        ParamSpec::new(
            n,
            Role::RangeExit {
                min: 64,
                max: 8192,
                log: true,
            },
        )
    })
    .many(3, "redirect_children", |n| {
        ParamSpec::new(
            n,
            Role::RangeExit {
                min: 1,
                max: 64,
                log: false,
            },
        )
    })
    .rel_pairs(3, "swap_level");
    let controllers = p.bool_controllers(4);
    p.deps(4, &controllers, false);
    let filler = 335usize.saturating_sub(p.params.len());
    p.many(filler, "acl_weight", |n| ParamSpec::new(n, Role::Arith));
    p.mark_unsafe(115);
    p.build(
        "Squid",
        MappingStyle::Comparison,
        Dialect::SpaceSeparated,
        false,
    )
}

/// Storage-A: the commercial storage OS — large, convention-heavy,
/// mostly well-checked, with unit information in parameter names.
pub fn storage_a() -> SystemSpec {
    let mut p = Pop::new();
    p.many(150, "vol_opt", |n| {
        ParamSpec::new(
            n,
            Role::RangeTable {
                min: 0,
                max: 1 << 20,
            },
        )
        .documented()
    })
    .many(40, "raid_limit", |n| {
        ParamSpec::new(
            n,
            Role::RangeExit {
                min: 1,
                max: 4096,
                log: true,
            },
        )
        .documented()
    })
    .many(70, "cache_window", |n| {
        ParamSpec::new(n, Role::RangeClamp { min: 0, max: 65536 })
    })
    .many(15, "log_file", |n| {
        ParamSpec::new(
            n,
            Role::File {
                checked: true,
                log: true,
            },
        )
    })
    .many(5, "export_dir", |n| {
        ParamSpec::new(n, Role::Dir { checked: true })
    })
    .many(6, "iscsi_port", |n| {
        ParamSpec::new(
            n,
            Role::Port {
                checked: true,
                log: true,
            },
        )
    })
    .many(2, "ndmp_port", |n| {
        ParamSpec::new(
            n,
            Role::Port {
                checked: false,
                log: false,
            },
        )
    })
    .many(5, "admin_user", |n| {
        ParamSpec::new(n, Role::User { checked: true })
    })
    .many(2, "spin_us", |n| {
        ParamSpec::new(
            n,
            Role::TimeSleep {
                scale: 1,
                micro: true,
            },
        )
    })
    .many(10, "flush_msec", |n| {
        ParamSpec::new(
            n,
            Role::TimeSleep {
                scale: 1000,
                micro: true,
            },
        )
    })
    .many(53, "takeover_sec", |n| {
        ParamSpec::new(
            n,
            Role::TimeSleep {
                scale: 1,
                micro: false,
            },
        )
    })
    .many(12, "scrub_min", |n| {
        ParamSpec::new(
            n,
            Role::TimeSleep {
                scale: 60,
                micro: false,
            },
        )
    })
    .many(4, "snap_sched_hour", |n| {
        ParamSpec::new(
            n,
            Role::TimeSleep {
                scale: 3600,
                micro: false,
            },
        )
    })
    .many(20, "nvram_bytes", |n| {
        ParamSpec::new(
            n,
            Role::SizeAlloc {
                scale: 1,
                checked: true,
            },
        )
    })
    .push(ParamSpec::new(
        "wafl_kb",
        Role::SizeAlloc {
            scale: 1024,
            checked: true,
        },
    ))
    .push(ParamSpec::new(
        "pcs_mb",
        Role::SizeAlloc {
            scale: 1 << 20,
            checked: false,
        },
    ))
    .push(ParamSpec::new(
        "aggr_gb",
        Role::SizeAlloc {
            scale: 1 << 30,
            checked: false,
        },
    ))
    .many(32, "cifs_symlink", |n| {
        ParamSpec::new(n, word_enum(false, true))
    })
    .many(220, "nfs_option", |n| {
        ParamSpec::new(n, word_enum(true, true))
    })
    .many(120, "feature_licensed", |n| {
        ParamSpec::new(n, Role::BoolFlag { strict: true })
    });
    let controllers = p.bool_controllers(12);
    p.deps(80, &controllers, true)
        .rel_pairs(10, "quota")
        .alias_pairs(2);
    let filler = 920usize.saturating_sub(p.params.len());
    p.many(filler, "kernel_tunable", |n| ParamSpec::new(n, Role::Arith));
    p.mark_unsafe(28);
    p.build(
        "Storage-A",
        MappingStyle::StructDirect,
        Dialect::KeyValue,
        true,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_counts_match_table_4() {
        assert_eq!(apache().param_count(), 103);
        assert_eq!(mysql().param_count(), 272);
        assert_eq!(postgresql().param_count(), 231);
        assert_eq!(openldap().param_count(), 86);
        assert_eq!(vsftp().param_count(), 124);
        assert_eq!(squid().param_count(), 335);
        assert_eq!(storage_a().param_count(), 920);
    }

    #[test]
    fn names_are_unique_within_each_system() {
        for spec in all_systems() {
            let mut names: Vec<&str> = spec.params.iter().map(|p| p.name.as_str()).collect();
            let before = names.len();
            names.sort_unstable();
            names.dedup();
            assert_eq!(before, names.len(), "{}: duplicate names", spec.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(system_by_name("squid").is_some());
        assert!(system_by_name("Storage-A").is_some());
        assert!(system_by_name("nginx").is_none());
    }

    #[test]
    fn unsafe_counts_match_table_8() {
        let count = |s: &SystemSpec| s.params.iter().filter(|p| p.unsafe_parse).count();
        assert_eq!(count(&apache()), 27);
        assert_eq!(count(&vsftp()), 20);
        assert_eq!(count(&squid()), 115);
        assert_eq!(count(&storage_a()), 28);
        assert_eq!(count(&mysql()), 0);
        assert_eq!(count(&postgresql()), 0);
    }
}
