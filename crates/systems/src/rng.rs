//! A tiny deterministic PRNG (splitmix64).
//!
//! The build environment has no network access, so the `rand` crate is
//! unavailable; this is the shared std-only stand-in for everything that
//! needs reproducible pseudo-random sampling (corpus generation, property
//! tests).

/// A splitmix64 generator. Deterministic for a given seed.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics when `lo >= hi`.
    pub fn gen_range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut g = SplitMix64::seed_from_u64(7);
        for _ in 0..1000 {
            let v = g.gen_f64();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut g = SplitMix64::seed_from_u64(9);
        for _ in 0..1000 {
            let v = g.gen_range(-5, 5);
            assert!((-5..5).contains(&v), "{v}");
        }
    }
}
