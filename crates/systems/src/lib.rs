//! The subject systems of the evaluation (§4, Table 4).
//!
//! The paper evaluates SPEX on one commercial storage system and six
//! open-source servers. Their C sources are unavailable here, so each
//! system is *generated*: a deterministic generator expands a per-system
//! distribution spec (parameter counts, mapping convention, constraint mix,
//! seeded vulnerabilities, alias noise) into mini-C configuration-handling
//! code, together with everything an evaluation needs — annotations, a
//! template config file, a manual model, a functional test suite, the
//! modelled-world requirements, and the exact ground-truth constraints.
//!
//! The generated populations are tuned so the paper's table *shapes* hold:
//! who has the most parameters, which reaction classes dominate, where
//! case-sensitivity and unit inconsistencies live, and why OpenLDAP's
//! inference accuracy is the lowest (pointer aliasing).

pub mod catalog;
pub mod corpus;
pub mod figures;
pub mod fleet;
pub mod gen;
pub mod rng;
pub mod spec;
pub mod survey;

pub use catalog::{all_systems, system_by_name};
pub use gen::{generate, GenOutput};
pub use spec::{ParamSpec, Role, SystemSpec};

use spex_ir::Module;

/// A fully built subject system: spec, generated artifacts, lowered module.
pub struct BuiltSystem {
    /// The distribution spec it was generated from.
    pub spec: SystemSpec,
    /// Generated source, annotations, manual, truth, tests, config.
    pub gen: GenOutput,
    /// The lowered IR module.
    pub module: Module,
}

impl BuiltSystem {
    /// Generates, parses and lowers a system.
    ///
    /// # Panics
    /// Panics when the generator emits code the front-end rejects — a bug
    /// in this crate, caught by tests.
    pub fn build(spec: SystemSpec) -> BuiltSystem {
        let gen = generate(&spec);
        let program = spex_lang::parse_program(&gen.source)
            .unwrap_or_else(|e| panic!("{}: generated code does not parse: {e}", spec.name));
        let module = spex_ir::lower_program(&program)
            .unwrap_or_else(|e| panic!("{}: generated code does not lower: {e}", spec.name));
        BuiltSystem { spec, gen, module }
    }

    /// A fresh modelled world satisfying the system's requirements.
    pub fn world(&self) -> spex_vm::World {
        let mut w = spex_vm::World::default();
        // Port 80 is always taken by "another process" so occupied-port
        // injections are observable.
        w.occupy_port(80);
        for (path, content) in &self.gen.world_files {
            w.add_file(path, content);
        }
        for path in &self.gen.world_dirs {
            w.add_dir(path);
        }
        w
    }

    /// Lines of generated mini-C code (the Table 4 "LoC" stand-in).
    pub fn loc(&self) -> usize {
        self.gen
            .source
            .lines()
            .filter(|l| !l.trim().is_empty())
            .count()
    }
}
