//! The subject-system code generator.
//!
//! Expands a [`SystemSpec`] into mini-C source plus every artifact the
//! evaluation needs. Generation is fully deterministic: the same spec
//! always produces the same system, so every paper table regenerates
//! reproducibly.

use crate::spec::{MappingStyle, ParamSpec, Role, SystemSpec};
use spex_conf::Dialect;
use spex_core::accuracy::TruthConstraint;
use spex_core::constraint::{BasicType, SemType, SizeUnit, TimeUnit};
use spex_design::manual::{Manual, ManualEntry};
use spex_inj::TestCase;
use std::collections::HashMap;
use std::fmt::Write;

/// Everything generated for one system.
pub struct GenOutput {
    /// Mini-C source of the configuration-handling code.
    pub source: String,
    /// SPEX annotations (Figure 4 syntax).
    pub annotations: String,
    /// Template configuration file (valid defaults).
    pub template_conf: String,
    /// The config-file dialect.
    pub dialect: Dialect,
    /// The system's manual model.
    pub manual: Manual,
    /// Exact ground-truth constraints (for Table 12).
    pub truth: Vec<TruthConstraint>,
    /// The system's functional test suite.
    pub tests: Vec<TestCase>,
    /// Parameter → backing-global name for verbatim-stored parameters.
    pub param_globals: HashMap<String, String>,
    /// Files the modelled world must contain.
    pub world_files: Vec<(String, String)>,
    /// Directories the modelled world must contain.
    pub world_dirs: Vec<String>,
}

/// Generates a system from its spec.
pub fn generate(spec: &SystemSpec) -> GenOutput {
    Gen::new(spec).run()
}

struct Gen<'s> {
    spec: &'s SystemSpec,
    globals: String,
    handlers: String,
    chain: String,
    rows_int: Vec<(String, String)>,
    rows_intv: Vec<(String, String, i64, i64)>,
    rows_str: Vec<(String, String)>,
    rows_cmd: Vec<(String, String)>,
    startup: String,
    checks: HashMap<&'static str, String>,
    need_onoff: bool,
    need_onoff_strict: bool,
    counter: usize,
    out: GenOutput,
    global_of: HashMap<String, String>,
}

impl<'s> Gen<'s> {
    fn new(spec: &'s SystemSpec) -> Gen<'s> {
        Gen {
            spec,
            globals: String::new(),
            handlers: String::new(),
            chain: String::new(),
            rows_int: Vec::new(),
            rows_intv: Vec::new(),
            rows_str: Vec::new(),
            rows_cmd: Vec::new(),
            startup: String::new(),
            checks: HashMap::new(),
            need_onoff: false,
            need_onoff_strict: false,
            counter: 0,
            out: GenOutput {
                source: String::new(),
                annotations: String::new(),
                template_conf: String::new(),
                dialect: spec.dialect,
                manual: Manual::empty(),
                truth: Vec::new(),
                tests: Vec::new(),
                param_globals: HashMap::new(),
                world_files: Vec::new(),
                world_dirs: Vec::new(),
            },
            global_of: HashMap::new(),
        }
    }

    fn run(mut self) -> GenOutput {
        // Pre-register globals so dependents can reference controllers and
        // alias/relation partners regardless of order.
        for p in &self.spec.params {
            let g = format!("g_{}", sanitize(&p.name));
            self.global_of.insert(p.name.clone(), g);
        }
        let params: Vec<ParamSpec> = self.spec.params.clone();
        for p in &params {
            self.emit_param(p);
        }
        self.assemble();
        self.out
    }

    // -- Small helpers --

    fn fresh(&mut self) -> usize {
        self.counter += 1;
        self.counter
    }

    fn g(&self, param: &str) -> String {
        self.global_of
            .get(param)
            .cloned()
            .unwrap_or_else(|| format!("g_{}", sanitize(param)))
    }

    fn check(&mut self, group: &'static str, stmt: String) {
        self.checks.entry(group).or_default().push_str(&stmt);
    }

    fn truth(&mut self, param: &str, category: &'static str, key: String) {
        self.out.truth.push(TruthConstraint {
            param: param.to_string(),
            category,
            key,
        });
    }

    fn conf_default(&mut self, param: &str, value: &str) {
        // The template sets a representative subset of the parameters
        // (users rarely set everything); defaults otherwise come from the
        // compiled-in initializers.
        if self.counter.is_multiple_of(6) {
            let line = match self.spec.dialect {
                Dialect::KeyValue => format!("{param} = {value}\n"),
                _ => format!("{param} {value}\n"),
            };
            self.out.template_conf.push_str(&line);
        }
    }

    /// Registers an integer parameter in the appropriate parse path and
    /// returns its global's name.
    fn int_param(&mut self, p: &ParamSpec, default: i64) -> String {
        let g = self.g(&p.name);
        let _ = writeln!(self.globals, "int {g} = {default};");
        self.out.param_globals.insert(p.name.clone(), g.clone());
        match (self.spec.mapping, p.unsafe_parse) {
            (_, true) => {
                // Inline comparison parse with an unsafe API; every third
                // one uses the sscanf variant for variety.
                let k = self.fresh();
                if k.is_multiple_of(3) {
                    let _ = writeln!(
                        self.chain,
                        "    if (strcmp(name, \"{}\") == 0) {{ int tmp_{k} = 0; sscanf(value, \"%i\", &tmp_{k}); {g} = tmp_{k}; return 0; }}",
                        p.name
                    );
                } else {
                    let _ = writeln!(
                        self.chain,
                        "    if (strcmp(name, \"{}\") == 0) {{ {g} = atoi(value); return 0; }}",
                        p.name
                    );
                }
            }
            (MappingStyle::StructDirect, false) => {
                self.rows_int.push((p.name.clone(), g.clone()));
            }
            (MappingStyle::StructHandler, false) => {
                let h = format!("set_{g}");
                let _ = writeln!(
                    self.handlers,
                    "int {h}(char* arg) {{ {g} = strtol(arg, NULL, 10); return 0; }}"
                );
                self.rows_cmd.push((p.name.clone(), h));
            }
            (MappingStyle::Comparison, false) => {
                let _ = writeln!(
                    self.chain,
                    "    if (strcasecmp(name, \"{}\") == 0) {{ {g} = strtol(value, NULL, 10); return 0; }}",
                    p.name
                );
            }
        }
        self.truth(
            &p.name,
            "basic-type",
            BasicType::Int {
                bits: 32,
                signed: true,
            }
            .to_string(),
        );
        self.conf_default(&p.name, &default.to_string());
        g
    }

    /// Registers a string parameter and returns its global's name.
    fn str_param(&mut self, p: &ParamSpec, default: &str) -> String {
        let g = self.g(&p.name);
        let _ = writeln!(self.globals, "char* {g} = \"{default}\";");
        self.out.param_globals.insert(p.name.clone(), g.clone());
        match self.spec.mapping {
            MappingStyle::StructDirect => {
                self.rows_str.push((p.name.clone(), g.clone()));
            }
            MappingStyle::StructHandler => {
                let h = format!("set_{g}");
                let _ = writeln!(
                    self.handlers,
                    "int {h}(char* arg) {{ {g} = strdup(arg); return 0; }}"
                );
                self.rows_cmd.push((p.name.clone(), h));
            }
            MappingStyle::Comparison => {
                let _ = writeln!(
                    self.chain,
                    "    if (strcasecmp(name, \"{}\") == 0) {{ {g} = strdup(value); return 0; }}",
                    p.name
                );
            }
        }
        self.truth(&p.name, "basic-type", BasicType::Str.to_string());
        self.conf_default(&p.name, default);
        g
    }

    // -- Per-role emission --

    fn emit_param(&mut self, p: &ParamSpec) {
        match p.role.clone() {
            Role::Arith => {
                let g = self.int_param(p, 8);
                let k = self.fresh();
                // Consume the value without writing it to shared memory
                // (a shared accumulator would fuse every parameter's data
                // flow into one slice).
                let _ = writeln!(self.startup, "    int u_{k} = {g} + 1;");
            }
            Role::CrashIndex => {
                let g = self.int_param(p, 8);
                let _ = writeln!(self.globals, "int {g}_tab[33];");
                let _ = writeln!(self.startup, "    {g}_tab[{g}] = 1;");
            }
            Role::RangeTable { min, max } => {
                // Validated through the option table's min/max columns.
                let g = self.g(&p.name);
                let default = min + (max - min) / 2;
                let _ = writeln!(self.globals, "int {g} = {default};");
                self.out.param_globals.insert(p.name.clone(), g.clone());
                self.rows_intv.push((p.name.clone(), g.clone(), min, max));
                let k = self.fresh();
                let _ = writeln!(self.startup, "    int u_{k} = {g} + 1;");
                self.truth(
                    &p.name,
                    "basic-type",
                    BasicType::Int {
                        bits: 32,
                        signed: true,
                    }
                    .to_string(),
                );
                self.truth(&p.name, "data-range", format!("[{min},{max}]"));
                self.conf_default(&p.name, &default.to_string());
                self.document_range(p, min, max);
            }
            Role::RangeExit { min, max, log } => {
                let g = self.int_param(p, min + (max - min) / 2);
                let msg = if log {
                    format!(
                        "        fprintf(stderr, \"{} must be between {min} and {max}, got %d\", {g});\n",
                        p.name
                    )
                } else {
                    String::new()
                };
                let _ = write!(
                    self.startup,
                    "    if ({g} < {min} || {g} > {max}) {{\n{msg}        exit(1);\n    }}\n"
                );
                self.truth(&p.name, "data-range", format!("[{min},{max}]"));
                self.document_range(p, min, max);
            }
            Role::RangeClamp { min, max } => {
                let g = self.int_param(p, min + (max - min) / 2);
                let _ = write!(
                    self.startup,
                    "    if ({g} < {min}) {{ {g} = {min}; }}\n    if ({g} > {max}) {{ {g} = {max}; }}\n"
                );
                self.truth(&p.name, "data-range", format!("[{min},{max}]"));
                self.document_range(p, min, max);
            }
            Role::File { checked, log } => {
                let path = format!("/data/{}.dat", sanitize(&p.name));
                let g = self.str_param(p, &path);
                self.out.world_files.push((path, "seed".into()));
                let k = self.fresh();
                let _ = writeln!(self.startup, "    int fd_{k} = open({g}, 0);");
                if checked {
                    let msg = if log {
                        format!(
                            "        fprintf(stderr, \"cannot open {} file %s\", {g});\n",
                            p.name
                        )
                    } else {
                        String::new()
                    };
                    let _ = write!(
                        self.startup,
                        "    if (fd_{k} < 0) {{\n{msg}        exit(1);\n    }}\n"
                    );
                } else {
                    let _ = writeln!(self.globals, "int g_fd_{k} = 1;");
                    let _ = writeln!(self.startup, "    g_fd_{k} = fd_{k};");
                    self.check("io", format!("    if (g_fd_{k} < 0) {{ return 1; }}\n"));
                }
                self.truth(&p.name, "semantic-type", SemType::FilePath.to_string());
            }
            Role::Dir { checked } => {
                let path = format!("/data/{}_d", sanitize(&p.name));
                let g = self.str_param(p, &path);
                self.out.world_dirs.push(path);
                let k = self.fresh();
                if checked {
                    let _ = write!(
                        self.startup,
                        "    if (opendir({g}) == NULL) {{\n        fprintf(stderr, \"{}: not a directory: %s\", {g});\n        exit(1);\n    }}\n",
                        p.name
                    );
                } else {
                    let _ = writeln!(self.globals, "int g_ok_{k} = 1;");
                    let _ = writeln!(self.startup, "    g_ok_{k} = opendir({g}) != NULL;");
                    self.check("io", format!("    if (g_ok_{k} == 0) {{ return 1; }}\n"));
                }
                self.truth(&p.name, "semantic-type", SemType::DirPath.to_string());
            }
            Role::Port { checked, log } => {
                let default = 5000 + self.fresh() as i64;
                let g = self.int_param(p, default);
                let k = self.fresh();
                let _ = writeln!(self.startup, "    int s_{k} = socket(0, 0, 0);");
                let _ = writeln!(self.startup, "    int r_{k} = bind(s_{k}, {g});");
                if checked {
                    let msg = if log {
                        format!(
                            "        fprintf(stderr, \"cannot bind {} port %d\", {g});\n",
                            p.name
                        )
                    } else {
                        String::new()
                    };
                    let _ = write!(
                        self.startup,
                        "    if (r_{k} < 0) {{\n{msg}        exit(1);\n    }}\n"
                    );
                } else {
                    let _ = writeln!(self.globals, "int g_ok_{k} = 1;");
                    let _ = writeln!(self.startup, "    g_ok_{k} = r_{k} == 0;");
                    self.check("net", format!("    if (g_ok_{k} == 0) {{ return 1; }}\n"));
                }
                let _ = writeln!(self.startup, "    listen(s_{k}, 16);");
                self.truth(&p.name, "semantic-type", SemType::Port.to_string());
            }
            Role::User { checked } => {
                let g = self.str_param(p, "daemon");
                let k = self.fresh();
                if checked {
                    let _ = write!(
                        self.startup,
                        "    if (getpwnam({g}) == NULL) {{\n        fprintf(stderr, \"{}: unknown user %s\", {g});\n        exit(1);\n    }}\n",
                        p.name
                    );
                } else {
                    let _ = writeln!(self.globals, "int g_ok_{k} = 1;");
                    let _ = writeln!(self.startup, "    g_ok_{k} = getpwnam({g}) != NULL;");
                    self.check("users", format!("    if (g_ok_{k} == 0) {{ return 1; }}\n"));
                }
                self.truth(&p.name, "semantic-type", SemType::UserName.to_string());
            }
            Role::TimeSleep { scale, micro } => {
                // Defaults keep the valid-config virtual sleep small.
                let default = if micro {
                    100
                } else if scale >= 3600 {
                    0
                } else if scale >= 60 {
                    1
                } else {
                    2
                };
                let g = self.int_param(p, default);
                let call = if micro { "usleep" } else { "sleep" };
                if scale == 1 {
                    let _ = writeln!(self.startup, "    {call}({g});");
                } else {
                    let _ = writeln!(self.startup, "    {call}({g} * {scale});");
                }
                let base = if micro {
                    TimeUnit::Micro
                } else {
                    TimeUnit::Sec
                };
                let sem = spex_core::apispec::ApiSpec::scale_unit(SemType::Time(base), scale);
                self.truth(&p.name, "semantic-type", sem.to_string());
            }
            Role::SizeAlloc { scale, checked } => {
                // Defaults must fit the modelled 1 GiB allocation budget
                // even when many size parameters allocate at startup.
                let default = if scale >= (1 << 30) {
                    0
                } else if scale >= (1 << 20) {
                    1
                } else {
                    4
                };
                let g = self.int_param(p, default);
                let k = self.fresh();
                let expr = if scale == 1 {
                    g.to_string()
                } else {
                    format!("{g} * {scale}")
                };
                let _ = writeln!(self.startup, "    int m_{k} = malloc({expr}) != NULL;");
                if checked {
                    let _ = write!(
                        self.startup,
                        "    if (m_{k} == 0) {{\n        fprintf(stderr, \"cannot allocate {} (%d)\", {g});\n        exit(1);\n    }}\n",
                        p.name
                    );
                } else {
                    let _ = writeln!(self.globals, "int g_ok_{k} = 1;");
                    let _ = writeln!(self.startup, "    g_ok_{k} = m_{k};");
                    self.check("mem", format!("    if (g_ok_{k} == 0) {{ return 1; }}\n"));
                }
                let sem =
                    spex_core::apispec::ApiSpec::scale_unit(SemType::Size(SizeUnit::B), scale);
                self.truth(&p.name, "semantic-type", sem.to_string());
            }
            Role::BoolFlag { strict } => {
                let g = self.g(&p.name);
                let _ = writeln!(self.globals, "int {g} = 1;");
                self.out.param_globals.insert(p.name.clone(), g.clone());
                let (helper, ret) = if strict {
                    self.need_onoff_strict = true;
                    (
                        format!("return parse_bool_strict(VALUE, \"{}\", &{g});", p.name),
                        true,
                    )
                } else {
                    self.need_onoff = true;
                    (format!("parse_onoff(VALUE, &{g}); return 0;"), false)
                };
                let _ = ret;
                match self.spec.mapping {
                    MappingStyle::StructHandler => {
                        let h = format!("set_{g}");
                        let body = helper.replace("VALUE", "arg");
                        let _ = writeln!(self.handlers, "int {h}(char* arg) {{ {body} }}");
                        self.rows_cmd.push((p.name.clone(), h));
                    }
                    _ => {
                        let body = helper.replace("VALUE", "value");
                        let _ = writeln!(
                            self.chain,
                            "    if (strcasecmp(name, \"{}\") == 0) {{ {body} }}",
                            p.name
                        );
                    }
                }
                let k = self.fresh();
                let _ = writeln!(self.startup, "    int u_{k} = {g} + 1;");
                self.truth(&p.name, "basic-type", BasicType::Str.to_string());
                let key = if strict {
                    "{\"off\",\"on\"}".to_string()
                } else {
                    "{\"on\"}".to_string()
                };
                self.truth(&p.name, "data-range", key);
                // Boolean value sets are always documented.
                self.out.manual.add(
                    &p.name,
                    ManualEntry {
                        text: format!("{}: boolean, on or off.", p.name),
                        documents_range: true,
                        ..Default::default()
                    },
                );
                self.conf_default(&p.name, "on");
            }
            Role::WordEnum {
                words,
                insensitive,
                strict,
            } => {
                let g = self.g(&p.name);
                let _ = writeln!(self.globals, "int {g} = 0;");
                let cmp = if insensitive { "strcasecmp" } else { "strcmp" };
                // Build the inline chain parsing this enum.
                let mut body = String::new();
                for (i, w) in words.iter().enumerate() {
                    let kw = if i == 0 { "if" } else { "else if" };
                    let _ = write!(body, "{kw} ({cmp}(VALUE, \"{w}\") == 0) {{ {g} = {i}; }} ");
                }
                if strict {
                    let _ = write!(
                        body,
                        "else {{ fprintf(stderr, \"invalid value for {}: %s\", VALUE); return -1; }} return 0;",
                        p.name
                    );
                } else {
                    let _ = write!(body, "else {{ {g} = 0; }} return 0;");
                }
                match self.spec.mapping {
                    MappingStyle::StructHandler => {
                        let h = format!("set_{g}");
                        let body = body.replace("VALUE", "arg");
                        let _ = writeln!(self.handlers, "int {h}(char* arg) {{ {body} }}");
                        self.rows_cmd.push((p.name.clone(), h));
                    }
                    _ => {
                        // Comparison-mapped enums parse through a
                        // per-parameter helper, like real servers do; the
                        // helper's token parameter is the data-flow root
                        // the comparison toolkit extracts.
                        let h = format!("parse_{g}");
                        let body = body.replace("VALUE", "token");
                        let _ = writeln!(self.handlers, "int {h}(char* token) {{ {body} }}");
                        let _ = writeln!(
                            self.chain,
                            "    if (strcasecmp(name, \"{}\") == 0) {{ return {h}(value); }}",
                            p.name
                        );
                    }
                }
                let k = self.fresh();
                let _ = writeln!(self.startup, "    int u_{k} = {g} + 1;");
                self.truth(&p.name, "basic-type", BasicType::Str.to_string());
                let mut sorted: Vec<String> = words.iter().map(|w| format!("{w:?}")).collect();
                sorted.sort();
                self.truth(&p.name, "data-range", format!("{{{}}}", sorted.join(",")));
                // Word lists are documented in manuals.
                self.out.manual.add(
                    &p.name,
                    ManualEntry {
                        text: format!("{}: one of {}.", p.name, words.join(", ")),
                        documents_range: true,
                        ..Default::default()
                    },
                );
                self.conf_default(&p.name, words[0]);
            }
            Role::Switch { n, loud_default } => {
                let g = self.int_param(p, 1);
                let mut body = String::new();
                for i in 0..n {
                    let _ = writeln!(body, "        case {i}: cfg_total += {i}; break;");
                }
                if loud_default {
                    let _ = writeln!(
                        body,
                        "        default: fprintf(stderr, \"invalid {} value %d\", {g}); exit(1);",
                        p.name
                    );
                } else {
                    let _ = writeln!(body, "        default: {g} = 0;");
                }
                let _ = write!(self.startup, "    switch ({g}) {{\n{body}    }}\n");
                let mut vals: Vec<String> = (0..n).map(|i| i.to_string()).collect();
                vals.sort();
                self.truth(&p.name, "data-range", format!("{{{}}}", vals.join(",")));
                self.out.manual.add(
                    &p.name,
                    ManualEntry {
                        text: format!("{}: mode 0 through {}.", p.name, n - 1),
                        documents_range: true,
                        ..Default::default()
                    },
                );
            }
            Role::DependentOn { controller } => {
                let g = self.int_param(p, 3);
                let cg = self.g(&controller);
                let k = self.fresh();
                let _ = write!(
                    self.startup,
                    "    if ({cg} != 0) {{\n        int u_{k} = {g} + 1;\n    }}\n"
                );
                self.truth(&p.name, "control-dep", format!("{controller}!=0"));
                if p.documented_dep {
                    self.out.manual.add(
                        &p.name,
                        ManualEntry {
                            text: format!("Takes effect only when {controller} is enabled."),
                            documents_deps: vec![controller.clone()],
                            ..Default::default()
                        },
                    );
                }
            }
            Role::MinOf { partner } => {
                let g = self.int_param(p, 4);
                let pg = self.g(&partner);
                let k = self.fresh();
                let _ = writeln!(self.globals, "int g_relok_{k} = 0;");
                let _ = write!(
                    self.startup,
                    "    int len_{k} = 12;\n    g_relok_{k} = 0;\n    if (len_{k} >= {g} && len_{k} < {pg}) {{\n        g_relok_{k} = 1;\n    }}\n"
                );
                self.check(
                    "logic",
                    format!("    if (g_relok_{k} == 0) {{ return 1; }}\n"),
                );
                // Normalised orientation, matching the inference pass.
                let (lhs, op, rhs) = if p.name <= partner {
                    (p.name.clone(), "<", partner.clone())
                } else {
                    (partner.clone(), ">", p.name.clone())
                };
                let attributed = lhs.clone();
                self.out.truth.push(TruthConstraint {
                    param: attributed,
                    category: "value-rel",
                    key: format!("{lhs}{op}{rhs}"),
                });
            }
            Role::MaxOf => {
                let _ = self.int_param(p, 84);
            }
            Role::AliasedWith { partner, time_side } => {
                // Both parameters share one global through the option
                // table; the analysis cannot separate their flows.
                let pair_key = {
                    let mut names = [p.name.as_str(), partner.as_str()];
                    names.sort();
                    sanitize(names[0])
                };
                let shared = format!("g_shared_{pair_key}");
                if !self.globals.contains(&format!("int {shared} ")) {
                    let _ = writeln!(self.globals, "int {shared} = 5;");
                }
                self.global_of.insert(p.name.clone(), shared.clone());
                match self.spec.mapping {
                    MappingStyle::StructDirect => {
                        self.rows_int.push((p.name.clone(), shared.clone()));
                    }
                    _ => {
                        let _ = writeln!(
                            self.chain,
                            "    if (strcasecmp(name, \"{}\") == 0) {{ {shared} = strtol(value, NULL, 10); return 0; }}",
                            p.name
                        );
                    }
                }
                let k = self.fresh();
                if time_side {
                    let _ = writeln!(self.startup, "    sleep({shared});");
                    self.truth(
                        &p.name,
                        "semantic-type",
                        SemType::Time(TimeUnit::Sec).to_string(),
                    );
                } else {
                    let _ = writeln!(
                        self.startup,
                        "    int ma_{k} = malloc({shared}) != NULL;\n    cfg_total += ma_{k};"
                    );
                    self.truth(
                        &p.name,
                        "semantic-type",
                        SemType::Size(SizeUnit::B).to_string(),
                    );
                }
                self.truth(
                    &p.name,
                    "basic-type",
                    BasicType::Int {
                        bits: 32,
                        signed: true,
                    }
                    .to_string(),
                );
                self.conf_default(&p.name, "5");
            }
        }
    }

    fn document_range(&mut self, p: &ParamSpec, min: i64, max: i64) {
        if p.documented_range {
            self.out.manual.add(
                &p.name,
                ManualEntry {
                    text: format!("Valid values are {min} through {max}."),
                    documents_range: true,
                    ..Default::default()
                },
            );
        }
    }

    // -- Final assembly --

    fn assemble(&mut self) {
        let mut src = String::new();
        let _ = writeln!(
            src,
            "// Generated configuration-handling code: {}",
            self.spec.name
        );
        let _ = writeln!(src, "int cfg_total = 0;");
        let _ = writeln!(src, "int feature_count = 0;");
        src.push_str(&self.globals);

        // Shared boolean helpers (single code locations, like Squid's).
        if self.need_onoff {
            src.push_str(
                "void parse_onoff(char* token, int* var) {\n    if (strcmp(token, \"on\") == 0) { *var = 1; }\n    else { *var = 0; }\n}\n",
            );
        }
        if self.need_onoff_strict {
            src.push_str(
                "int parse_bool_strict(char* token, char* pname, int* var) {\n    if (strcasecmp(token, \"on\") == 0) { *var = 1; return 0; }\n    if (strcasecmp(token, \"off\") == 0) { *var = 0; return 0; }\n    fprintf(stderr, \"parameter %s expects on or off, got %s\", pname, token);\n    return -1;\n}\n",
            );
        }
        src.push_str(&self.handlers);

        // Option tables.
        let mut ann = String::new();
        if !self.rows_int.is_empty() {
            let _ = writeln!(src, "struct conf_int {{ char* name; int* var; }};");
            let _ = writeln!(src, "struct conf_int conf_ints[] = {{");
            for (n, g) in &self.rows_int {
                let _ = writeln!(src, "    {{ \"{n}\", &{g} }},");
            }
            let _ = writeln!(src, "}};");
            ann.push_str(
                "{ @STRUCT = conf_ints\n  @PAR = [conf_int, 1]\n  @VAR = [conf_int, 2] }\n",
            );
        }
        if !self.rows_intv.is_empty() {
            let _ = writeln!(
                src,
                "struct conf_intv {{ char* name; int* var; int vmin; int vmax; }};"
            );
            let _ = writeln!(src, "struct conf_intv conf_intvs[] = {{");
            for (n, g, min, max) in &self.rows_intv {
                let _ = writeln!(src, "    {{ \"{n}\", &{g}, {min}, {max} }},");
            }
            let _ = writeln!(src, "}};");
            ann.push_str(
                "{ @STRUCT = conf_intvs\n  @PAR = [conf_intv, 1]\n  @VAR = [conf_intv, 2] }\n",
            );
        }
        if !self.rows_str.is_empty() {
            let _ = writeln!(src, "struct conf_str {{ char* name; char** var; }};");
            let _ = writeln!(src, "struct conf_str conf_strs[] = {{");
            for (n, g) in &self.rows_str {
                let _ = writeln!(src, "    {{ \"{n}\", &{g} }},");
            }
            let _ = writeln!(src, "}};");
            ann.push_str(
                "{ @STRUCT = conf_strs\n  @PAR = [conf_str, 1]\n  @VAR = [conf_str, 2] }\n",
            );
        }
        if !self.rows_cmd.is_empty() {
            let _ = writeln!(src, "struct command_rec {{ char* name; fnptr handler; }};");
            let _ = writeln!(src, "struct command_rec cmds[] = {{");
            for (n, h) in &self.rows_cmd {
                let _ = writeln!(src, "    {{ \"{n}\", {h} }},");
            }
            let _ = writeln!(src, "}};");
            ann.push_str(
                "{ @STRUCT = cmds\n  @PAR = [command_rec, 1]\n  @VAR = ([command_rec, 2], $arg) }\n",
            );
        }
        if !self.chain.is_empty() {
            ann.push_str("{ @PARSER = handle_config\n  @PAR = $name\n  @VAR = $value }\n");
        }

        // The dispatcher.
        let parse_call = if self.spec.safe_dispatcher {
            "strtol(value, NULL, 10)"
        } else {
            "atoi(value)"
        };
        let _ = writeln!(src, "int handle_config(char* name, char* value) {{");
        src.push_str(&self.chain);
        if !self.rows_int.is_empty()
            || !self.rows_intv.is_empty()
            || !self.rows_str.is_empty()
            || !self.rows_cmd.is_empty()
        {
            let _ = writeln!(src, "    int i;");
        }
        if !self.rows_int.is_empty() {
            let _ = write!(
                src,
                "    for (i = 0; i < {n}; i++) {{\n        if (strcmp(conf_ints[i].name, name) == 0) {{\n            long v = {parse_call};\n            *(conf_ints[i].var) = v;\n            return 0;\n        }}\n    }}\n",
                n = self.rows_int.len()
            );
        }
        if !self.rows_intv.is_empty() {
            let _ = write!(
                src,
                "    for (i = 0; i < {n}; i++) {{\n        if (strcmp(conf_intvs[i].name, name) == 0) {{\n            long v = {parse_call};\n            if (v < conf_intvs[i].vmin || v > conf_intvs[i].vmax) {{\n                fprintf(stderr, \"parameter %s: value %s is out of range\", name, value);\n                return -1;\n            }}\n            *(conf_intvs[i].var) = v;\n            return 0;\n        }}\n    }}\n",
                n = self.rows_intv.len()
            );
        }
        if !self.rows_str.is_empty() {
            let _ = write!(
                src,
                "    for (i = 0; i < {n}; i++) {{\n        if (strcmp(conf_strs[i].name, name) == 0) {{\n            *(conf_strs[i].var) = strdup(value);\n            return 0;\n        }}\n    }}\n",
                n = self.rows_str.len()
            );
        }
        if !self.rows_cmd.is_empty() {
            let _ = write!(
                src,
                "    for (i = 0; i < {n}; i++) {{\n        if (strcasecmp(cmds[i].name, name) == 0) {{\n            return cmds[i].handler(value);\n        }}\n    }}\n",
                n = self.rows_cmd.len()
            );
        }
        let _ = writeln!(src, "    return 0;\n}}");

        // Startup.
        let _ = writeln!(src, "int startup() {{");
        src.push_str(&self.startup);
        let _ = writeln!(src, "    return 0;\n}}");

        // Test functions.
        let _ = writeln!(src, "int test_smoke() {{ return 0; }}");
        self.out.tests.push(TestCase {
            name: "smoke".into(),
            func: "test_smoke".into(),
            cost: 1,
        });
        let costs: HashMap<&str, u32> = [
            ("logic", 2),
            ("users", 3),
            ("mem", 4),
            ("io", 5),
            ("net", 8),
        ]
        .into_iter()
        .collect();
        let groups: Vec<(&'static str, String)> =
            self.checks.iter().map(|(k, v)| (*k, v.clone())).collect();
        let mut sorted_groups = groups;
        sorted_groups.sort_by_key(|(k, _)| *k);
        for (group, body) in sorted_groups {
            let _ = writeln!(src, "int test_{group}() {{");
            src.push_str(&body);
            let _ = writeln!(src, "    return 0;\n}}");
            self.out.tests.push(TestCase {
                name: group.to_string(),
                func: format!("test_{group}"),
                cost: costs.get(group).copied().unwrap_or(6),
            });
        }

        self.out.source = src;
        self.out.annotations = ann;
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{MappingStyle, ParamSpec, Role, SystemSpec};

    fn tiny_spec(mapping: MappingStyle) -> SystemSpec {
        SystemSpec {
            name: "tiny",
            mapping,
            dialect: Dialect::KeyValue,
            safe_dispatcher: true,
            params: vec![
                ParamSpec::new("worker_threads", Role::CrashIndex),
                ParamSpec::new("index_intlen", Role::RangeClamp { min: 4, max: 255 }),
                ParamSpec::new(
                    "pid_file",
                    Role::File {
                        checked: true,
                        log: true,
                    },
                ),
                ParamSpec::new("enable_cache", Role::BoolFlag { strict: false }),
                ParamSpec::new(
                    "cache_size",
                    Role::DependentOn {
                        controller: "enable_cache".into(),
                    },
                ),
            ],
        }
    }

    #[test]
    fn generated_source_parses_and_lowers() {
        for mapping in [
            MappingStyle::StructDirect,
            MappingStyle::StructHandler,
            MappingStyle::Comparison,
        ] {
            let out = generate(&tiny_spec(mapping));
            let program = spex_lang::parse_program(&out.source)
                .unwrap_or_else(|e| panic!("{mapping:?}: {e}\n{}", out.source));
            let module =
                spex_ir::lower_program(&program).unwrap_or_else(|e| panic!("{mapping:?}: {e}"));
            let errors = spex_ir::verify::verify_module(&module);
            assert!(errors.is_empty(), "{mapping:?}: verifier: {errors:?}");
        }
    }

    #[test]
    fn generated_system_is_runnable() {
        let out = generate(&tiny_spec(MappingStyle::StructDirect));
        let program = spex_lang::parse_program(&out.source).unwrap();
        let module = spex_ir::lower_program(&program).unwrap();
        let mut world = spex_vm::World::default();
        for (f, c) in &out.world_files {
            world.add_file(f, c);
        }
        for d in &out.world_dirs {
            world.add_dir(d);
        }
        let mut vm = spex_vm::Vm::new(&module, world);
        // Apply a valid setting, start up, run tests.
        let r = vm
            .call(
                "handle_config",
                &[
                    spex_vm::Value::str("index_intlen"),
                    spex_vm::Value::str("10"),
                ],
            )
            .unwrap();
        assert_eq!(r, spex_vm::Value::Int(0));
        let r = vm.call("startup", &[]).unwrap();
        assert_eq!(r, spex_vm::Value::Int(0));
        let r = vm.call("test_smoke", &[]).unwrap();
        assert_eq!(r, spex_vm::Value::Int(0));
        assert_eq!(
            vm.global_value("g_index_intlen"),
            Some(&spex_vm::Value::Int(10))
        );
    }

    #[test]
    fn truth_and_annotations_are_generated() {
        let out = generate(&tiny_spec(MappingStyle::StructDirect));
        assert!(out.annotations.contains("@STRUCT"));
        assert!(out.annotations.contains("@PARSER") || !out.source.contains("parse_onoff"));
        assert!(out
            .truth
            .iter()
            .any(|t| t.param == "index_intlen" && t.key == "[4,255]"));
        assert!(out
            .truth
            .iter()
            .any(|t| t.param == "cache_size" && t.key == "enable_cache!=0"));
        assert!(!out.tests.is_empty());
    }

    #[test]
    fn inference_on_generated_system_matches_truth() {
        let out = generate(&tiny_spec(MappingStyle::StructDirect));
        let program = spex_lang::parse_program(&out.source).unwrap();
        let module = spex_ir::lower_program(&program).unwrap();
        let anns = spex_core::Annotation::parse(&out.annotations).unwrap();
        let analysis = spex_core::Spex::analyze(module, &anns);
        assert_eq!(analysis.reports.len(), 5, "all five parameters mapped");
        let report = spex_core::evaluate_accuracy(
            &analysis.all_constraints().cloned().collect::<Vec<_>>(),
            &out.truth,
        );
        assert!(
            report.overall() > 0.7,
            "accuracy too low: {:?}",
            report.by_category
        );
    }
}
