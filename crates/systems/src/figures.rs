//! The paper's worked code examples (Figures 1–3 and 5–7) as runnable
//! snippet systems.
//!
//! Each snippet carries the mini-C source mirroring the paper's C excerpt,
//! the annotation, and the parameter of interest, so `paper fig3`/`fig5`
//! can run real inference and injection over the very examples the paper
//! prints.

/// One worked example.
pub struct FigureExample {
    /// Which figure/panel this reproduces, e.g. `"3b"`.
    pub id: &'static str,
    /// The system the paper took it from.
    pub system: &'static str,
    /// What should be inferred/exposed.
    pub expectation: &'static str,
    /// Mini-C source.
    pub source: &'static str,
    /// Annotation text.
    pub annotations: &'static str,
    /// The parameter of interest.
    pub param: &'static str,
}

/// All reproduced examples.
pub fn examples() -> Vec<FigureExample> {
    vec![
        FigureExample {
            id: "3a",
            system: "Storage-A",
            expectation: "basic type of log.filesize is a 32-bit integer",
            source: r#"
                struct cmd { char* name; fnptr handler; };
                int log_filesize = 0;
                int set_max_ranges(char* arg) {
                    int val = strtoll(arg, NULL, 0);
                    log_filesize = val;
                    return 0;
                }
                struct cmd cmds[] = { { "log.filesize", set_max_ranges } };
                int startup() { return 0; }
            int handle_config(char* name, char* value) {
                    if (strcmp(name, "log.filesize") == 0) { return cmds[0].handler(value); }
                    return 0;
                }
            "#,
            annotations: "{ @STRUCT = cmds\n @PAR = [cmd, 1]\n @VAR = ([cmd, 2], $arg) }",
            param: "log.filesize",
        },
        FigureExample {
            id: "3b",
            system: "MySQL",
            expectation: "semantic type of ft_stopword_file is FILE",
            source: r#"
                char* ft_stopword_file = "/data/words";
                struct opt { char* name; char** var; };
                struct opt options[] = { { "ft_stopword_file", &ft_stopword_file } };
                int my_open(char* file_name, int flags) {
                    return open(file_name, flags);
                }
                int ft_init_stopwords() {
                    int fd = my_open(ft_stopword_file, 0);
                    return fd < 0;
                }
                int startup() { return ft_init_stopwords(); }
            int handle_config(char* name, char* value) {
                    if (strcmp(name, "ft_stopword_file") == 0) { ft_stopword_file = strdup(value); }
                    return 0;
                }
            "#,
            annotations: "{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }",
            param: "ft_stopword_file",
        },
        FigureExample {
            id: "3c",
            system: "Squid",
            expectation: "semantic type of udp_port is PORT",
            source: r#"
                int udp_port = 3130;
                struct opt { char* name; int* var; };
                struct opt options[] = { { "udp_port", &udp_port } };
                int icpOpenPorts() {
                    int s = socket(0, 0, 0);
                    int prt = udp_port;
                    sockaddr_set_port(s, htons(prt));
                    if (bind(s, prt) < 0) {
                        fprintf(stderr, "FATAL: Cannot open ICP Port");
                        exit(1);
                    }
                    listen(s, 8);
                    return 0;
                }
                int startup() { return icpOpenPorts(); }
            int handle_config(char* name, char* value) {
                    if (strcmp(name, "udp_port") == 0) { udp_port = atoi(value); }
                    return 0;
                }
            "#,
            annotations: "{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }",
            param: "udp_port",
        },
        FigureExample {
            id: "3d",
            system: "OpenLDAP",
            expectation: "valid range of index_intlen is 4 to 255 (silently clamped)",
            source: r#"
                int index_intlen = 4;
                struct opt { char* name; int* var; };
                struct opt options[] = { { "index_intlen", &index_intlen } };
                int config_generic() {
                    if (index_intlen < 4) { index_intlen = 4; }
                    else if (index_intlen > 255) { index_intlen = 255; }
                    return 0;
                }
                int startup() { return config_generic(); }
            int handle_config(char* name, char* value) {
                    if (strcmp(name, "index_intlen") == 0) { index_intlen = atoi(value); }
                    return 0;
                }
            "#,
            annotations: "{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }",
            param: "index_intlen",
        },
        FigureExample {
            id: "3e",
            system: "PostgreSQL",
            expectation: "commit_siblings takes effect only when fsync is on",
            source: r#"
                int fsync_on = 1;
                int commit_siblings = 5;
                struct opt { char* name; int* var; };
                struct opt options[] = {
                    { "fsync", &fsync_on },
                    { "commit_siblings", &commit_siblings }
                };
                int MinimumActiveBackends() {
                    int s = commit_siblings;
                    return s * 2;
                }
                int RecordTransactionCommit() {
                    if (fsync_on) {
                        MinimumActiveBackends();
                    }
                    return 0;
                }
                int startup() { return RecordTransactionCommit(); }
            int handle_config(char* name, char* value) {
                    if (strcmp(name, "fsync") == 0) { fsync_on = atoi(value); }
                    if (strcmp(name, "commit_siblings") == 0) { commit_siblings = atoi(value); }
                    return 0;
                }
            "#,
            annotations: "{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }",
            param: "commit_siblings",
        },
        FigureExample {
            id: "3f",
            system: "MySQL",
            expectation: "ft_max_word_len must be greater than ft_min_word_len",
            source: r#"
                int ft_min_word_len = 4;
                int ft_max_word_len = 84;
                int ft_ok = 0;
                struct opt { char* name; int* var; };
                struct opt options[] = {
                    { "ft_min_word_len", &ft_min_word_len },
                    { "ft_max_word_len", &ft_max_word_len }
                };
                int ft_get_word() {
                    int length = 12;
                    ft_ok = 0;
                    if (length >= ft_min_word_len && length < ft_max_word_len) {
                        ft_ok = 1;
                    }
                    return 0;
                }
                int startup() { return ft_get_word(); }
                int test_fulltext() { return ft_ok == 0; }
            int handle_config(char* name, char* value) {
                    if (strcmp(name, "ft_min_word_len") == 0) { ft_min_word_len = atoi(value); }
                    if (strcmp(name, "ft_max_word_len") == 0) { ft_max_word_len = atoi(value); }
                    return 0;
                }
            "#,
            annotations: "{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }",
            param: "ft_min_word_len",
        },
        FigureExample {
            id: "2",
            system: "OpenLDAP",
            expectation: "listener-threads > 16 crashes with a bare segmentation fault",
            source: r#"
                int listener_threads = 4;
                int listeners[17];
                struct opt { char* name; int* var; };
                struct opt options[] = { { "listener-threads", &listener_threads } };
                int startup() {
                    int i;
                    for (i = 0; i < listener_threads; i++) {
                        listeners[i] = socket(0, 0, 0);
                    }
                    return 0;
                }
            int handle_config(char* name, char* value) {
                    if (strcmp(name, "listener-threads") == 0) { listener_threads = atoi(value); }
                    return 0;
                }
            "#,
            annotations: "{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }",
            param: "listener-threads",
        },
        FigureExample {
            id: "6c",
            system: "Squid",
            expectation: "boolean values other than \"on\" silently treated as off",
            source: r#"
                int icp_hit_stale = 0;
                struct cmd { char* name; fnptr handler; };
                int parse_onoff(char* token) {
                    if (strcasecmp(token, "on") == 0) { icp_hit_stale = 1; }
                    else { icp_hit_stale = 0; }
                    return 0;
                }
                struct cmd cmds[] = { { "icp_hit_stale", parse_onoff } };
                int startup() { return 0; }
            int handle_config(char* name, char* value) {
                    if (strcasecmp(name, "icp_hit_stale") == 0) { return cmds[0].handler(value); }
                    return 0;
                }
            "#,
            annotations: "{ @STRUCT = cmds\n @PAR = [cmd, 1]\n @VAR = ([cmd, 2], $token) }",
            param: "icp_hit_stale",
        },
        FigureExample {
            id: "7b",
            system: "Apache",
            expectation: "huge ThreadLimit aborts startup with a misleading memory error",
            source: r#"
                int thread_limit = 64;
                struct opt { char* name; int* var; };
                struct opt options[] = { { "ThreadLimit", &thread_limit } };
                int startup() {
                    if (malloc(thread_limit * 4096) == NULL) {
                        fprintf(stderr, "Cannot allocate memory: AH00004: Unable to create access scoreboard (anonymous shared memory failure)");
                        exit(1);
                    }
                    return 0;
                }
            int handle_config(char* name, char* value) {
                    if (strcasecmp(name, "ThreadLimit") == 0) { thread_limit = atoi(value); }
                    return 0;
                }
            "#,
            annotations: "{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }",
            param: "ThreadLimit",
        },
    ]
}

/// Looks up one example by id.
pub fn example(id: &str) -> Option<FigureExample> {
    examples().into_iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_examples_parse_and_lower() {
        for ex in examples() {
            let program = spex_lang::parse_program(ex.source)
                .unwrap_or_else(|e| panic!("figure {}: {e}", ex.id));
            spex_ir::lower_program(&program).unwrap_or_else(|e| panic!("figure {}: {e}", ex.id));
        }
    }

    #[test]
    fn all_annotations_parse() {
        for ex in examples() {
            spex_core::Annotation::parse(ex.annotations)
                .unwrap_or_else(|e| panic!("figure {}: {e}", ex.id));
        }
    }

    #[test]
    fn figure_3d_infers_the_documented_range() {
        let ex = example("3d").unwrap();
        let program = spex_lang::parse_program(ex.source).unwrap();
        let module = spex_ir::lower_program(&program).unwrap();
        let anns = spex_core::Annotation::parse(ex.annotations).unwrap();
        let analysis = spex_core::Spex::analyze(module, &anns);
        let report = analysis.param("index_intlen").unwrap();
        let range = report
            .constraints
            .iter()
            .find_map(|c| match &c.kind {
                spex_core::ConstraintKind::Range(r) => Some(r.clone()),
                _ => None,
            })
            .expect("range inferred");
        assert_eq!(range.valid_interval(), Some((Some(4), Some(255))));
    }

    #[test]
    fn figure_2_crashes_under_injection() {
        // The paper's motivating OpenLDAP failure: listener-threads > 16
        // crashes after startup with a bare segmentation fault and no log.
        let ex = example("2").unwrap();
        let program = spex_lang::parse_program(ex.source).unwrap();
        let module = spex_ir::lower_program(&program).unwrap();

        // A valid setting starts fine.
        let mut vm = spex_vm::Vm::new(&module, spex_vm::World::default());
        vm.call(
            "handle_config",
            &[
                spex_vm::Value::str("listener-threads"),
                spex_vm::Value::str("8"),
            ],
        )
        .unwrap();
        assert_eq!(vm.call("startup", &[]).unwrap(), spex_vm::Value::Int(0));

        // The paper's invalid setting crashes with no log output.
        let mut vm = spex_vm::Vm::new(&module, spex_vm::World::default());
        vm.call(
            "handle_config",
            &[
                spex_vm::Value::str("listener-threads"),
                spex_vm::Value::str("32"),
            ],
        )
        .unwrap();
        assert_eq!(
            vm.call("startup", &[]).unwrap_err(),
            spex_vm::VmHalt::Fatal(spex_vm::Signal::Segv)
        );
        assert!(vm.log_text().is_empty(), "the crash is silent");
    }
}
