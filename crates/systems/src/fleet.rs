//! Fleet-scale corpus generation.
//!
//! The paper's checker earns its keep at datacenter scale: one inference
//! run per *program*, then constraint checking over every staged config
//! file of every host. This module expands that setting into a synthetic
//! fleet — thousands of small, independently generated configuration
//! modules (each a [`SystemSpec`] expanded through the shared
//! [`generate`](crate::generate) path) plus a config-file corpus on the
//! order of 100k files. The `fleet` bench group drives analyses/sec and
//! checks/sec numbers from it; the generation itself is deterministic for
//! a seed, so serial and parallel runs are comparable byte-for-byte.

use crate::rng::SplitMix64;
use crate::spec::{MappingStyle, ParamSpec, Role, SystemSpec};
use spex_conf::Dialect;

/// Shape of a generated fleet.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Number of configuration modules (programs) in the fleet.
    pub modules: usize,
    /// Config files generated per module (the deployment corpus).
    pub configs_per_module: usize,
    /// Seed for every sampled choice.
    pub seed: u64,
}

impl Default for FleetSpec {
    /// The bench-scale fleet: 2048 modules × 48 configs ≈ 100k files.
    fn default() -> FleetSpec {
        FleetSpec {
            modules: 2048,
            configs_per_module: 48,
            seed: 0xf1ee7,
        }
    }
}

/// One generated fleet member: a module plus its deployment template.
pub struct FleetModule {
    /// Module name (unique within the fleet, usable as a workspace key).
    pub name: String,
    /// Mini-C source of the member's configuration-handling code.
    pub source: String,
    /// SPEX annotations for the member.
    pub annotations: String,
    /// The member's pristine template config.
    pub template_conf: String,
    /// Number of configuration parameters the member declares.
    pub params: usize,
}

/// Generates the fleet. Deterministic for a [`FleetSpec`]: the same spec
/// always yields the same sources, annotations and templates.
///
/// Every member gets a globally unique parameter-name prefix, so the whole
/// fleet can share one workspace (and one merged constraint database)
/// without cross-module parameter collisions.
pub fn generate_fleet(spec: &FleetSpec) -> Vec<FleetModule> {
    let mut rng = SplitMix64::seed_from_u64(spec.seed);
    (0..spec.modules)
        .map(|i| {
            let sys = member_spec(i, &mut rng);
            let params = sys.params.len();
            let out = crate::generate(&sys);
            FleetModule {
                name: format!("m{i:04}.c"),
                source: out.source,
                annotations: out.annotations,
                template_conf: out.template_conf,
                params,
            }
        })
        .collect()
}

/// Samples one member's parameter population. Members are intentionally
/// small (5–9 parameters): fleet throughput is about *many* programs, not
/// one big one, and the role mix keeps all five constraint kinds alive
/// across the corpus (ranges, semantic types, booleans/enums, control
/// dependencies).
fn member_spec(index: usize, rng: &mut SplitMix64) -> SystemSpec {
    let n = rng.gen_range(5, 10) as usize;
    let mut params = Vec::with_capacity(n);
    let mut controller: Option<String> = None;
    for p in 0..n {
        let name = format!("f{index:04}_p{p}");
        let role = match rng.gen_range(0, 10) {
            0 => Role::Arith,
            1 => {
                let min = rng.gen_range(0, 8);
                Role::RangeTable {
                    min,
                    max: min + rng.gen_range(8, 4096),
                }
            }
            2 => {
                let min = rng.gen_range(1, 16);
                Role::RangeExit {
                    min,
                    max: min + rng.gen_range(16, 1024),
                    log: rng.gen_range(0, 2) == 0,
                }
            }
            3 => Role::File {
                checked: true,
                log: rng.gen_range(0, 2) == 0,
            },
            4 => Role::Port {
                checked: rng.gen_range(0, 2) == 0,
                log: true,
            },
            5 => Role::TimeSleep {
                scale: [1, 1000][rng.gen_range(0, 2) as usize],
                micro: rng.gen_range(0, 2) == 0,
            },
            6 => Role::SizeAlloc {
                scale: [1, 1024][rng.gen_range(0, 2) as usize],
                checked: true,
            },
            7 => {
                let strict = rng.gen_range(0, 2) == 0;
                controller.get_or_insert_with(|| name.clone());
                Role::BoolFlag { strict }
            }
            8 => Role::Switch {
                n: rng.gen_range(2, 6),
                loud_default: rng.gen_range(0, 2) == 0,
            },
            _ => match &controller {
                Some(c) => Role::DependentOn {
                    controller: c.clone(),
                },
                None => Role::Arith,
            },
        };
        params.push(ParamSpec::new(name, role));
    }
    SystemSpec {
        name: "Fleet",
        mapping: MappingStyle::StructDirect,
        dialect: Dialect::KeyValue,
        safe_dispatcher: true,
        params,
    }
}

/// Expands the fleet into its deployment config corpus:
/// `configs_per_module` files per member, most of them the pristine
/// template and roughly one in seven corrupted with an unknown key — a
/// violation the persisted constraints flag regardless of which roles the
/// member sampled, so flagged-file counts are stable across fleets.
pub fn config_corpus(fleet: &[FleetModule], spec: &FleetSpec) -> Vec<(String, String)> {
    let mut rng = SplitMix64::seed_from_u64(spec.seed ^ 0xc0f1);
    let mut files = Vec::with_capacity(fleet.len() * spec.configs_per_module);
    for m in fleet {
        for j in 0..spec.configs_per_module {
            let stem = m.name.trim_end_matches(".c");
            let name = format!("{stem}/host{j:02}.conf");
            let text = if j % 7 == 3 {
                format!(
                    "{}{stem}_bogus{} = 1\n",
                    m.template_conf,
                    rng.next_u64() % 100
                )
            } else {
                m.template_conf.clone()
            };
            files.push((name, text));
        }
    }
    files
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FleetSpec {
        FleetSpec {
            modules: 12,
            configs_per_module: 7,
            seed: 0xf1ee7,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_fleet(&small());
        let b = generate_fleet(&small());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.source, y.source);
            assert_eq!(x.annotations, y.annotations);
            assert_eq!(x.template_conf, y.template_conf);
        }
    }

    #[test]
    fn members_parse_lower_and_infer() {
        for m in generate_fleet(&small()).iter().take(6) {
            let program = spex_lang::parse_program(&m.source)
                .unwrap_or_else(|e| panic!("{}: does not parse: {e}", m.name));
            let module = spex_ir::lower_program(&program)
                .unwrap_or_else(|e| panic!("{}: does not lower: {e}", m.name));
            assert!(
                !module.functions.is_empty(),
                "{}: no functions generated",
                m.name
            );
            assert!(m.params >= 5, "{}: undersized member", m.name);
        }
    }

    #[test]
    fn parameter_names_are_fleet_unique() {
        // The template sets only a representative subset of each member's
        // parameters (mirroring real deployments), but every key it does
        // set must carry its member's unique prefix — that is what lets
        // the whole fleet share one merged constraint database.
        let fleet = generate_fleet(&small());
        let mut seen = std::collections::BTreeSet::new();
        let mut keys = 0usize;
        for (i, m) in fleet.iter().enumerate() {
            for line in m.template_conf.lines() {
                let key = line.split_whitespace().next().unwrap_or("");
                if !key.is_empty() {
                    keys += 1;
                    assert!(
                        key.starts_with(&format!("f{i:04}_")),
                        "{key} missing member prefix"
                    );
                    assert!(seen.insert(key.to_string()), "duplicate key {key}");
                }
            }
        }
        assert!(keys > 0, "no template keys generated at all");
    }

    #[test]
    fn corpus_has_the_requested_shape() {
        let spec = small();
        let fleet = generate_fleet(&spec);
        let corpus = config_corpus(&fleet, &spec);
        assert_eq!(corpus.len(), spec.modules * spec.configs_per_module);
        let corrupted = corpus
            .iter()
            .filter(|(_, text)| text.contains("_bogus"))
            .count();
        assert_eq!(corrupted, spec.modules, "one corrupted file per 7");
        let again = config_corpus(&fleet, &spec);
        assert_eq!(corpus, again, "corpus generation is deterministic");
    }
}
