//! Criterion benches for the SPEX pipeline.
//!
//! One group per evaluation artifact:
//! * `frontend` — lexing/parsing/lowering throughput on generated systems;
//! * `inference` — full constraint inference per system (Table 11's
//!   workload);
//! * `injection` — SPEX-INJ campaign over one system (Table 5's workload),
//!   including the §3.1 optimization ablation (stop-at-first-failure and
//!   shortest-test-first on/off);
//! * `mapping` — the annotation toolkits alone.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use spex_bench::make_target;
use spex_core::{Annotation, Spex};
use spex_dataflow::{AnalyzedModule, TaintEngine};
use spex_inj::{genrule, standard_rules, CampaignOptions, InjectionCampaign};
use spex_systems::BuiltSystem;

fn bench_frontend(c: &mut Criterion) {
    let spec = spex_systems::system_by_name("OpenLDAP").unwrap();
    let gen = spex_systems::generate(&spec);
    let mut g = c.benchmark_group("frontend");
    g.bench_function("parse_openldap", |b| {
        b.iter(|| spex_lang::parse_program(&gen.source).unwrap())
    });
    let program = spex_lang::parse_program(&gen.source).unwrap();
    g.bench_function("lower_openldap", |b| {
        b.iter(|| spex_ir::lower_program(&program).unwrap())
    });
    let module = spex_ir::lower_program(&program).unwrap();
    g.bench_function("ssa_openldap", |b| {
        b.iter_batched(
            || module.clone(),
            |m| AnalyzedModule::build(m),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_inference(c: &mut Criterion) {
    let mut g = c.benchmark_group("inference");
    g.sample_size(10);
    for name in ["OpenLDAP", "Apache", "VSFTP"] {
        let spec = spex_systems::system_by_name(name).unwrap();
        let built = BuiltSystem::build(spec);
        let anns = Annotation::parse(&built.gen.annotations).unwrap();
        g.bench_function(format!("spex_analyze_{name}"), |b| {
            b.iter_batched(
                || built.module.clone(),
                |m| Spex::analyze(m, &anns),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_taint(c: &mut Criterion) {
    let spec = spex_systems::system_by_name("Apache").unwrap();
    let built = BuiltSystem::build(spec);
    let anns = Annotation::parse(&built.gen.annotations).unwrap();
    let am = AnalyzedModule::build(built.module.clone());
    let params = spex_core::mapping::extract_mappings(&am, &anns).unwrap();
    let engine = TaintEngine::new(&am);
    c.bench_function("taint_per_param_apache", |b| {
        b.iter(|| {
            for p in params.iter().take(16) {
                criterion::black_box(engine.run(&p.roots));
            }
        })
    });
}

fn bench_injection(c: &mut Criterion) {
    let spec = spex_systems::system_by_name("OpenLDAP").unwrap();
    let built = BuiltSystem::build(spec);
    let anns = Annotation::parse(&built.gen.annotations).unwrap();
    let analysis = Spex::analyze(built.module.clone(), &anns);
    let constraints: Vec<_> = analysis.all_constraints().cloned().collect();
    let misconfigs = genrule::generate_all(&standard_rules(), &constraints);
    let slice = &misconfigs[..misconfigs.len().min(40)];

    let mut g = c.benchmark_group("injection");
    g.sample_size(10);
    // The §3.1 optimizations, individually ablated.
    let variants = [
        ("optimized", CampaignOptions { stop_at_first_failure: true, sort_tests_by_cost: true }),
        ("no_early_stop", CampaignOptions { stop_at_first_failure: false, sort_tests_by_cost: true }),
        ("no_sort", CampaignOptions { stop_at_first_failure: true, sort_tests_by_cost: false }),
        ("naive", CampaignOptions { stop_at_first_failure: false, sort_tests_by_cost: false }),
    ];
    for (label, options) in variants {
        g.bench_function(format!("campaign_openldap_{label}"), |b| {
            b.iter(|| {
                let campaign =
                    InjectionCampaign::new(make_target(&built)).with_options(options);
                criterion::black_box(campaign.run(slice))
            })
        });
    }
    g.finish();
}

fn bench_mapping(c: &mut Criterion) {
    let spec = spex_systems::system_by_name("Squid").unwrap();
    let built = BuiltSystem::build(spec);
    let anns = Annotation::parse(&built.gen.annotations).unwrap();
    let am = AnalyzedModule::build(built.module.clone());
    c.bench_function("mapping_extraction_squid", |b| {
        b.iter(|| spex_core::mapping::extract_mappings(&am, &anns).unwrap())
    });
}

criterion_group!(
    benches,
    bench_frontend,
    bench_inference,
    bench_taint,
    bench_injection,
    bench_mapping
);
criterion_main!(benches);
