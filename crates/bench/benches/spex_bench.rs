//! Benchmarks for the SPEX pipeline (std-only harness; the build
//! environment has no network access for Criterion).
//!
//! One group per evaluation artifact:
//! * `frontend` — lexing/parsing/lowering throughput on generated systems;
//! * `inference` — full constraint inference per system (Table 11's
//!   workload);
//! * `injection` — SPEX-INJ campaign over one system (Table 5's workload),
//!   including the §3.1 optimization ablation (stop-at-first-failure and
//!   shortest-test-first on/off);
//! * `mapping` — the annotation toolkits alone;
//! * `summaries` — interprocedural function summaries: cold whole-module
//!   evaluation vs warm SCC-incremental reuse after a one-function edit;
//! * `react` — static reaction classification (`spex-react`) latency per
//!   system and per-parameter throughput over the catalog;
//! * `check` — `spex-check` single-file validation latency and batch
//!   validation throughput over the persisted constraint databases.
//!
//! Run all with `cargo bench`, or filter: `cargo bench --bench spex_bench
//! -- check`. Pass `--json` to append every result to the per-group
//! `BENCH_<group>.json` trajectory files at the workspace root (see
//! `spex_bench::harness::Runner::write_trajectory`).

use spex_bench::harness::{black_box, Runner};
use spex_bench::make_target;
use spex_check::{CheckSession, ConstraintDb, Workspace};
use spex_core::{Annotation, Spex};
use spex_dataflow::{AnalyzedModule, Condensation, ModuleSummaries, TaintEngine};
use spex_inj::{genrule, standard_rules, CampaignOptions, InjectionCampaign};
use spex_systems::BuiltSystem;

fn bench_frontend(r: &Runner) {
    let spec = spex_systems::system_by_name("OpenLDAP").unwrap();
    let gen = spex_systems::generate(&spec);
    r.bench("frontend/parse_openldap", || {
        spex_lang::parse_program(&gen.source).unwrap()
    });
    let program = spex_lang::parse_program(&gen.source).unwrap();
    r.bench("frontend/lower_openldap", || {
        spex_ir::lower_program(&program).unwrap()
    });
    let module = spex_ir::lower_program(&program).unwrap();
    r.bench_with_setup(
        "frontend/ssa_openldap",
        || module.clone(),
        AnalyzedModule::build,
    );
}

fn bench_inference(r: &Runner) {
    for name in ["OpenLDAP", "Apache", "VSFTP"] {
        let spec = spex_systems::system_by_name(name).unwrap();
        let built = BuiltSystem::build(spec);
        let anns = Annotation::parse(&built.gen.annotations).unwrap();
        r.bench_with_setup(
            &format!("inference/spex_analyze_{name}"),
            || built.module.clone(),
            |m| Spex::analyze(m, &anns),
        );
    }
}

fn bench_taint(r: &Runner) {
    let spec = spex_systems::system_by_name("Apache").unwrap();
    let built = BuiltSystem::build(spec);
    let anns = Annotation::parse(&built.gen.annotations).unwrap();
    let am = AnalyzedModule::build(built.module.clone());
    let params = spex_core::mapping::extract_mappings(&am, &anns).unwrap();
    let engine = TaintEngine::new(&am);
    r.bench("taint/per_param_apache_x16", || {
        for p in params.iter().take(16) {
            black_box(engine.run(&p.roots));
        }
    });
}

fn bench_injection(r: &Runner) {
    let spec = spex_systems::system_by_name("OpenLDAP").unwrap();
    let built = BuiltSystem::build(spec);
    let anns = Annotation::parse(&built.gen.annotations).unwrap();
    let analysis = Spex::analyze(built.module.clone(), &anns);
    let constraints: Vec<_> = analysis.all_constraints().cloned().collect();
    let misconfigs = genrule::generate_all(&standard_rules(), &constraints);
    let slice = &misconfigs[..misconfigs.len().min(40)];

    // The §3.1 optimizations, individually ablated.
    let variants = [
        (
            "optimized",
            CampaignOptions {
                stop_at_first_failure: true,
                sort_tests_by_cost: true,
            },
        ),
        (
            "no_early_stop",
            CampaignOptions {
                stop_at_first_failure: false,
                sort_tests_by_cost: true,
            },
        ),
        (
            "no_sort",
            CampaignOptions {
                stop_at_first_failure: true,
                sort_tests_by_cost: false,
            },
        ),
        (
            "naive",
            CampaignOptions {
                stop_at_first_failure: false,
                sort_tests_by_cost: false,
            },
        ),
    ];
    for (label, options) in variants {
        r.bench(&format!("injection/campaign_openldap_{label}"), || {
            let campaign = InjectionCampaign::new(make_target(&built)).with_options(options);
            black_box(campaign.run(slice))
        });
    }
}

fn bench_mapping(r: &Runner) {
    let spec = spex_systems::system_by_name("Squid").unwrap();
    let built = BuiltSystem::build(spec);
    let anns = Annotation::parse(&built.gen.annotations).unwrap();
    let am = AnalyzedModule::build(built.module.clone());
    r.bench("mapping/extraction_squid", || {
        spex_core::mapping::extract_mappings(&am, &anns).unwrap()
    });
}

fn bench_summaries(r: &Runner) {
    // Interprocedural summaries, cold vs warm: the SCC-incremental path
    // must make a single-function edit cheap — only the dirty component
    // and its transitive callers re-summarize, every other component is
    // reused by clone.
    let spec = spex_systems::system_by_name("OpenLDAP").unwrap();
    let built = BuiltSystem::build(spec);
    let am = AnalyzedModule::build(built.module.clone());
    r.bench("summaries/compute_cold_openldap", || {
        black_box(ModuleSummaries::compute(&am))
    });

    if r.selected("summaries/incremental_warm_openldap") {
        let (prev, cold) = ModuleSummaries::compute(&am);
        let n = am.module.functions.len();
        assert_eq!(cold.runs, n, "cold evaluation summarizes every function");
        // Dirty the last-emitted component (a call-graph root, so it has
        // no dependents): the warm path re-runs exactly that component —
        // the steady-state regime an editor loop runs in.
        let scc = Condensation::build(&am.module);
        let mut dirty = vec![false; n];
        for f in scc.components.last().expect("non-empty module") {
            dirty[f.index()] = true;
        }
        const ROUNDS: usize = 30;
        let mut total = 0u128;
        let mut best = u128::MAX;
        let mut warm_stats = None;
        for _ in 0..ROUNDS {
            let start = std::time::Instant::now();
            let (_, stats) = black_box(ModuleSummaries::compute_incremental(
                &am,
                Some((&prev, &dirty)),
            ));
            let dt = start.elapsed().as_nanos();
            total += dt;
            best = best.min(dt);
            warm_stats = Some(stats);
        }
        let warm = warm_stats.expect("ROUNDS > 0");
        assert!(warm.hits > 0, "warm evaluation must reuse clean components");
        assert!(warm.runs < n, "warm evaluation must not re-run everything");
        assert_eq!(warm.runs + warm.hits, n, "every function accounted for");
        r.record(
            "summaries/incremental_warm_openldap",
            total / ROUNDS as u128,
            best,
            ROUNDS,
        );
        println!(
            "summaries/incremental_warm self-check: OK \
             ({} of {n} summaries reused, {} re-run)",
            warm.hits, warm.runs,
        );
    }
}

fn bench_react(r: &Runner) {
    // Static reaction classification (`spex-react`) must stay cheap
    // relative to inference: it only re-walks the taint slices the
    // analysis already computed, so the whole catalog classifies in the
    // time one injection test takes to run.
    let mut analyses = Vec::new();
    for name in ["OpenLDAP", "Apache", "VSFTP"] {
        let spec = spex_systems::system_by_name(name).unwrap();
        let built = BuiltSystem::build(spec);
        let anns = Annotation::parse(&built.gen.annotations).unwrap();
        let analysis = Spex::analyze(built.module.clone(), &anns);
        r.bench(&format!("react/classify_analysis_{name}"), || {
            black_box(spex_react::classify_analysis(&analysis))
        });
        analyses.push(analysis);
    }

    // Throughput over the whole catalog, recorded as per-parameter
    // latency so it lands in the trajectory next to the latency benches.
    if r.selected("react/classify_per_param") {
        let params: usize = analyses
            .iter()
            .map(|a| spex_react::classify_analysis(a).len())
            .sum();
        assert!(params > 0, "catalog must yield classifiable parameters");
        const ROUNDS: usize = 20;
        let mut total = 0u128;
        let mut best = u128::MAX;
        for _ in 0..ROUNDS {
            let start = std::time::Instant::now();
            for a in &analyses {
                black_box(spex_react::classify_analysis(a));
            }
            let dt = start.elapsed().as_nanos();
            total += dt;
            best = best.min(dt);
        }
        let mean = total / ROUNDS as u128;
        let (mean_pp, best_pp) = (mean / params as u128, best / params as u128);
        r.record("react/classify_per_param", mean_pp, best_pp, ROUNDS);
        let params_per_sec = 1_000_000_000u128 / mean_pp.max(1);
        println!(
            "react/classify_per_param self-check: OK \
             ({params} params, {params_per_sec} params/sec, {mean_pp} ns/param)"
        );
    }
}

fn bench_check(r: &Runner) {
    // Persist constraint databases once (the infer → persist → check
    // split is exactly what the benchmark measures: validation must not
    // pay for inference).
    let mut dbs = Vec::new();
    for name in ["OpenLDAP", "Apache", "MySQL"] {
        let spec = spex_systems::system_by_name(name).unwrap();
        let built = BuiltSystem::build(spec);
        let anns = Annotation::parse(&built.gen.annotations).unwrap();
        let analysis = Spex::analyze(built.module.clone(), &anns);
        let db = ConstraintDb::from_analysis(name, built.gen.dialect, &analysis);
        dbs.push((db, built.gen.template_conf.clone()));
    }

    // Database persistence round-trip.
    let (db0, template0) = &dbs[0];
    let text = db0.save_to_string();
    r.bench("check/db_save_openldap", || db0.save_to_string());
    r.bench("check/db_load_openldap", || {
        ConstraintDb::load_from_str(&text).unwrap()
    });

    // Single-file validation latency, clean and corrupt, on the borrowed
    // session (construction indexes names once; no db copy).
    let session = CheckSession::new(db0);
    r.bench("check/single_file_clean_openldap", || {
        black_box(session.check_text(template0))
    });
    let corrupt = format!("{template0}listener-threads 9999999\nno_such_param on\n");
    r.bench("check/single_file_corrupt_openldap", || {
        black_box(session.check_text(&corrupt))
    });
    r.bench("check/session_construction_openldap", || {
        black_box(CheckSession::new(db0).check_text("x 1\n"))
    });

    // Batch throughput: a fleet of config files, one session per system.
    let mut fleets: Vec<(&ConstraintDb, Vec<(String, String)>)> = Vec::new();
    for (db, template) in &dbs {
        let system = db.system.clone();
        let files: Vec<(String, String)> = (0..200)
            .map(|i| {
                (
                    format!("{system}/{i}.conf"),
                    if i % 4 == 0 {
                        format!("{template}bogus_key_{i} 1\n")
                    } else {
                        template.clone()
                    },
                )
            })
            .collect();
        fleets.push((db, files));
    }
    let parallel: Vec<(CheckSession<'_>, &Vec<(String, String)>)> = fleets
        .iter()
        .map(|(db, files)| (CheckSession::new(db), files))
        .collect();
    let serial: Vec<(CheckSession<'_>, &Vec<(String, String)>)> = fleets
        .iter()
        .map(|(db, files)| (CheckSession::new(db).with_threads(1), files))
        .collect();
    r.bench("check/batch_600_files_parallel", || {
        for (session, files) in &parallel {
            black_box(session.check_texts(files));
        }
    });
    r.bench("check/batch_600_files_1_thread", || {
        for (session, files) in &serial {
            black_box(session.check_texts(files));
        }
    });
}

fn bench_workspace(r: &Runner) {
    // Incremental re-inference: the whole point of the workspace is that a
    // small edit costs proportionally less than a full re-analysis.
    let spec = spex_systems::system_by_name("OpenLDAP").unwrap();
    let built = BuiltSystem::build(spec);

    r.bench_with_setup(
        "workspace/full_reanalyze_openldap",
        || {
            let mut ws = Workspace::new("OpenLDAP", built.gen.dialect);
            ws.add_module("gen.c", &built.gen.source, &built.gen.annotations)
                .unwrap();
            ws
        },
        |mut ws| black_box(ws.reanalyze()),
    );

    // An edit that adds one fresh function: fingerprint diffing marks only
    // it dirty, so re-analysis re-runs mapping and taint but skips every
    // unaffected parameter's inference passes.
    let edited = format!(
        "{}\nvoid spex_bench_probe() {{ exit(1); }}\n",
        built.gen.source
    );
    r.bench_with_setup(
        "workspace/incremental_reanalyze_openldap",
        || {
            let mut ws = Workspace::new("OpenLDAP", built.gen.dialect);
            ws.add_module("gen.c", &built.gen.source, &built.gen.annotations)
                .unwrap();
            ws.reanalyze();
            ws.update_module("gen.c", &edited).unwrap();
            ws
        },
        |mut ws| black_box(ws.reanalyze()),
    );

    // Steady-state warm re-analysis: the workspace keeps its pass-level
    // cache across generations, so a trivial edit (an added function no
    // parameter's flow touches) re-prepares only that function and serves
    // the mapping extraction and every taint slice from the cache — the
    // regime `check on every edit` actually runs in. The self-check below
    // asserts the cache really hit and the stored module was never
    // deep-cloned (the same way PR 3 asserted zero db clones).
    {
        let mut ws = Workspace::new("OpenLDAP", built.gen.dialect);
        ws.add_module("gen.c", &built.gen.source, &built.gen.annotations)
            .unwrap();
        ws.reanalyze();
        let variants = [
            format!(
                "{}\nvoid spex_warm_probe() {{ exit(1); }}\n",
                built.gen.source
            ),
            format!(
                "{}\nvoid spex_warm_probe() {{ exit(2); }}\n",
                built.gen.source
            ),
        ];
        let ws = std::cell::RefCell::new(ws);
        let flip = std::cell::Cell::new(0usize);
        let last = std::cell::Cell::new(spex_core::infer::PassCounts::default());
        r.bench_with_setup(
            "workspace/reanalyze_warm",
            || {
                // Editing (parse, lower, fingerprint) is setup; only the
                // warm re-analysis itself is measured.
                ws.borrow_mut()
                    .update_module("gen.c", &variants[flip.get() % 2])
                    .unwrap();
                flip.set(flip.get() + 1);
            },
            |()| {
                let report = ws.borrow_mut().reanalyze();
                last.set(report.passes);
                black_box(report)
            },
        );
        if r.selected("workspace/reanalyze_warm") {
            let ws = ws.borrow();
            let last = last.get();
            assert_eq!(
                ws.module_clones(),
                0,
                "warm reanalyze must not clone the module"
            );
            assert_eq!(
                ws.function_clones(),
                0,
                "warm reanalyze must not copy any function body \
                 (the zero-copy Arc-sharing contract)"
            );
            assert!(
                last.taint_cache_hits > 0 && last.taint_runs == 0,
                "warm reanalyze must serve every slice from the cache \
                 (hits {}, runs {})",
                last.taint_cache_hits,
                last.taint_runs,
            );
            assert_eq!(last.mapping_extractions, 0, "mapping must be cached");
            println!(
                "workspace/reanalyze_warm self-check: OK ({} slice hits, {} mapping hits, \
                 0 module clones, 0 function clones)",
                last.taint_cache_hits, last.mapping_cache_hits,
            );
        }
    }

    // The cached borrowed session: repeated `check_paths` off one
    // workspace must pay per-file work only — no per-call O(db) copy, no
    // per-call index rebuild (compare with `check/session_construction_*`
    // for the uncached construction cost).
    let mut ws = Workspace::new("OpenLDAP", built.gen.dialect);
    ws.add_module("gen.c", &built.gen.source, &built.gen.annotations)
        .unwrap();
    ws.reanalyze();
    let fleet = std::env::temp_dir().join("spex_bench_check_cached");
    let _ = std::fs::remove_dir_all(&fleet);
    std::fs::create_dir_all(&fleet).expect("fleet dir");
    for i in 0..32 {
        let text = if i % 4 == 0 {
            format!("{}bogus_key_{i} 1\n", built.gen.template_conf)
        } else {
            built.gen.template_conf.clone()
        };
        std::fs::write(fleet.join(format!("host{i:02}.conf")), text).expect("fleet file");
    }
    let clones_before = ws.db().clone_count();
    r.bench("workspace/check_cached", || {
        black_box(ws.check_paths(std::slice::from_ref(&fleet)).unwrap())
    });
    if r.selected("workspace/check_cached") {
        assert_eq!(
            ws.db().clone_count(),
            clones_before,
            "cached checking must not clone the db"
        );
        assert_eq!(ws.session_rebuilds(), 1, "one index build for the run");
    }
    std::fs::remove_dir_all(&fleet).ok();
}

fn bench_telemetry(r: &Runner) {
    // Telemetry must be pay-for-what-you-use: a workspace that never
    // enabled it takes the one-branch no-op path (no clocks, no
    // allocations, no recorded spans), and an instrumented workspace stays
    // within a few percent of it. Interleave the two warm-reanalyze loops
    // so both see the same machine state, take best-of-N, and assert both
    // properties.
    if !r.selected("workspace/telemetry_overhead") {
        return;
    }
    let spec = spex_systems::system_by_name("OpenLDAP").unwrap();
    let built = BuiltSystem::build(spec);
    let variants = [
        format!(
            "{}\nvoid spex_obs_probe() {{ exit(1); }}\n",
            built.gen.source
        ),
        format!(
            "{}\nvoid spex_obs_probe() {{ exit(2); }}\n",
            built.gen.source
        ),
    ];
    let make_ws = |telemetry: bool| {
        let mut ws = Workspace::new("OpenLDAP", built.gen.dialect);
        if telemetry {
            ws.enable_telemetry();
        }
        ws.add_module("gen.c", &built.gen.source, &built.gen.annotations)
            .unwrap();
        ws.reanalyze();
        ws
    };
    let mut plain = make_ws(false);
    let mut instrumented = make_ws(true);

    const ROUNDS: usize = 30;
    // [disabled, enabled] nanoseconds.
    let mut best = [u128::MAX; 2];
    let mut total = [0u128; 2];
    for round in 0..ROUNDS {
        for (slot, ws) in [(0usize, &mut plain), (1, &mut instrumented)] {
            ws.update_module("gen.c", &variants[round % 2]).unwrap();
            let spans_before = spex_obs::probe::thread_spans_recorded();
            let start = std::time::Instant::now();
            black_box(ws.reanalyze());
            let dt = start.elapsed().as_nanos();
            if slot == 0 {
                assert_eq!(
                    spex_obs::probe::thread_spans_recorded(),
                    spans_before,
                    "a workspace without telemetry must record zero spans"
                );
            }
            best[slot] = best[slot].min(dt);
            total[slot] += dt;
        }
    }
    let (disabled, enabled) = (best[0], best[1]);
    // < 5% relative, plus a small absolute floor so a sub-millisecond
    // baseline doesn't turn scheduler jitter into a failure.
    let budget = disabled + disabled / 20 + 25_000;
    assert!(
        enabled <= budget,
        "telemetry overhead too high: enabled best {enabled} ns vs disabled best {disabled} ns"
    );
    let snap = instrumented.telemetry();
    assert!(!snap.is_empty(), "instrumented workspace recorded nothing");
    assert!(
        snap.span_count("workspace.reanalyze") >= ROUNDS as u64,
        "every warm reanalyze must leave a span"
    );
    r.record(
        "workspace/telemetry_overhead_disabled",
        total[0] / ROUNDS as u128,
        disabled,
        ROUNDS,
    );
    r.record(
        "workspace/telemetry_overhead_enabled",
        total[1] / ROUNDS as u128,
        enabled,
        ROUNDS,
    );
    println!(
        "workspace/telemetry_overhead self-check: OK \
         (enabled best {enabled} ns vs disabled best {disabled} ns, \
         {} spans recorded)",
        snap.span_count("workspace.reanalyze"),
    );
}

fn bench_fleet(r: &Runner) {
    // Fleet-scale throughput: thousands of generated modules analyzed
    // through one workspace, then ~100k staged config files checked
    // against the merged constraint database. The self-check asserts the
    // tentpole contract — the parallel run's persisted database is
    // byte-identical to the serial baseline's, and (given ≥4 cores) at
    // least 2× faster at 4 threads.
    if !r.selected("fleet") {
        return;
    }
    let spec = spex_systems::fleet::FleetSpec {
        modules: std::env::var("SPEX_FLEET_MODULES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2048),
        ..Default::default()
    };
    let fleet = spex_systems::fleet::generate_fleet(&spec);
    println!(
        "fleet: {} modules, {} parameters, {} config files",
        fleet.len(),
        fleet.iter().map(|m| m.params).sum::<usize>(),
        fleet.len() * spec.configs_per_module,
    );

    // Building the workspace (parse, lower, fingerprint) is setup; only
    // cold full inference over every module is measured, best-of-N per
    // thread count so scheduler noise cannot flip the comparison.
    const ROUNDS: usize = 3;
    let run_at = |threads: usize| -> (u128, u128, String) {
        let mut best = u128::MAX;
        let mut total = 0u128;
        let mut db = String::new();
        for _ in 0..ROUNDS {
            let mut ws =
                Workspace::new("Fleet", spex_conf::Dialect::KeyValue).with_threads(threads);
            for m in &fleet {
                ws.add_module(&m.name, &m.source, &m.annotations).unwrap();
            }
            let start = std::time::Instant::now();
            black_box(ws.reanalyze());
            let dt = start.elapsed().as_nanos();
            best = best.min(dt);
            total += dt;
            db = ws.db().save_to_string();
        }
        (total / ROUNDS as u128, best, db)
    };
    let (serial_mean, serial_best, serial_db) = run_at(1);
    let (par_mean, par_best, par_db) = run_at(4);
    r.record(
        "fleet/analyze_corpus_1_thread",
        serial_mean,
        serial_best,
        ROUNDS,
    );
    r.record("fleet/analyze_corpus_4_threads", par_mean, par_best, ROUNDS);

    assert_eq!(
        serial_db, par_db,
        "parallel fleet analysis must persist a byte-identical database"
    );
    let speedup = serial_best as f64 / par_best.max(1) as f64;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores >= 4 {
        assert!(
            speedup >= 2.0,
            "fleet analysis at 4 threads must be ≥2× the serial baseline \
             (got {speedup:.2}× on {cores} cores)"
        );
    }
    let analyses_per_sec = |ns: u128| fleet.len() as u128 * 1_000_000_000 / ns.max(1);
    println!(
        "fleet/throughput self-check: OK (db byte-identical; \
         {} analyses/sec serial, {} at 4 threads, {speedup:.2}x speedup{})",
        analyses_per_sec(serial_best),
        analyses_per_sec(par_best),
        if cores >= 4 {
            ""
        } else {
            "; speedup assert skipped, <4 cores"
        },
    );

    // Checking: the deployment corpus against the merged database, through
    // the same borrowed-session batch path deployments use.
    let mut ws = Workspace::new("Fleet", spex_conf::Dialect::KeyValue).with_threads(4);
    for m in &fleet {
        ws.add_module(&m.name, &m.source, &m.annotations).unwrap();
    }
    ws.reanalyze();
    let corpus = spex_systems::fleet::config_corpus(&fleet, &spec);
    let session = CheckSession::new(ws.db()).with_threads(4);
    let mut check_best = u128::MAX;
    let mut check_total = 0u128;
    let mut flagged = 0usize;
    for _ in 0..ROUNDS {
        let start = std::time::Instant::now();
        let report = black_box(session.check_texts(&corpus));
        check_best = check_best.min(start.elapsed().as_nanos());
        check_total += start.elapsed().as_nanos();
        flagged = report.stats.flagged_files;
    }
    r.record(
        "fleet/check_corpus_4_threads",
        check_total / ROUNDS as u128,
        check_best,
        ROUNDS,
    );
    assert!(
        flagged >= fleet.len(),
        "every unknown-key corruption must be flagged ({flagged} flagged)"
    );
    println!(
        "fleet/check self-check: OK ({} checks/sec at 4 threads, {flagged} files flagged)",
        corpus.len() as u128 * 1_000_000_000 / check_best.max(1),
    );
}

fn main() {
    let r = Runner::from_args();
    bench_frontend(&r);
    bench_inference(&r);
    bench_taint(&r);
    bench_injection(&r);
    bench_mapping(&r);
    bench_summaries(&r);
    bench_react(&r);
    bench_check(&r);
    bench_workspace(&r);
    bench_telemetry(&r);
    bench_fleet(&r);
    r.write_trajectory();
}
