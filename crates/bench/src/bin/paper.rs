//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! paper all            # everything (tables 1-12 and the figures)
//! paper table5         # one table
//! paper fig3           # the Figure 3 inference examples
//! paper fig5           # the Figure 5/7 injection examples
//! paper fig6           # the Figure 6 design examples
//! paper quick          # tables on the three smallest systems only
//! ```

use spex_bench::*;
use spex_core::{Annotation, Spex};
use spex_inj::{genrule, standard_rules, InjectionCampaign};
use spex_systems::figures;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match arg.as_str() {
        "table1" => print!("{}", render_table1()),
        "table2" => print!("{}", render_table2()),
        "table3" => print!("{}", render_table3()),
        "table9" => print!("{}", render_table9()),
        "table10" => print!("{}", render_table10()),
        "fig3" => figures_inference(),
        "fig5" | "fig7" => figures_injection(),
        "fig6" => figures_design(),
        "fig2" => figures_injection(),
        "quick" => run_tables(true),
        "all" => {
            print!("{}", render_table1());
            print!("\n{}", render_table2());
            print!("\n{}", render_table3());
            run_tables(false);
            print!("\n{}", render_table9());
            print!("\n{}", render_table10());
            figures_inference();
            figures_injection();
            figures_design();
        }
        t @ ("table4" | "table5" | "table6" | "table7" | "table8" | "table11" | "table12") => {
            run_one_table(t)
        }
        other => {
            eprintln!("unknown command `{other}`; try: all, quick, table1..table12, fig2/3/5/6/7");
            std::process::exit(2);
        }
    }
}

fn evaluate_systems(quick: bool, injection: bool) -> Vec<Evaluated> {
    let systems = spex_systems::all_systems();
    let systems: Vec<_> = if quick {
        systems.into_iter().take(3).collect()
    } else {
        systems
    };
    systems
        .into_iter()
        .map(|spec| {
            eprintln!(
                "[paper] evaluating {} ({} parameters)...",
                spec.name,
                spec.param_count()
            );
            evaluate(spec, injection)
        })
        .collect()
}

fn run_tables(quick: bool) {
    let evals = evaluate_systems(quick, true);
    print!("\n{}", render_table4(&evals));
    print!("\n{}", render_table5(&evals));
    print!("\n{}", render_table6(&evals));
    print!("\n{}", render_table7(&evals));
    print!("\n{}", render_table8(&evals));
    print!("\n{}", render_table11(&evals));
    print!("\n{}", render_table12(&evals));
}

fn run_one_table(which: &str) {
    // Injection is only needed for Table 5.
    let injection = which == "table5";
    let evals = evaluate_systems(false, injection);
    let text = match which {
        "table4" => render_table4(&evals),
        "table5" => render_table5(&evals),
        "table6" => render_table6(&evals),
        "table7" => render_table7(&evals),
        "table8" => render_table8(&evals),
        "table11" => render_table11(&evals),
        "table12" => render_table12(&evals),
        _ => unreachable!(),
    };
    print!("{text}");
}

/// Figure 3: run inference over each worked example and print the inferred
/// constraints next to the paper's expectation.
fn figures_inference() {
    println!("\nFigure 3 (and Figure 2): constraint inference on the paper's examples");
    for ex in figures::examples() {
        let program = spex_lang::parse_program(ex.source).expect("figure parses");
        let module = spex_ir::lower_program(&program).expect("figure lowers");
        let anns = Annotation::parse(ex.annotations).expect("annotation parses");
        let analysis = Spex::analyze(module, &anns);
        println!("-- Figure {} ({}) --", ex.id, ex.system);
        println!("   expectation: {}", ex.expectation);
        // Multi-parameter constraints may be attributed to the partner
        // parameter, so search all constraints mentioning this one.
        let mut printed = false;
        for c in analysis.all_constraints() {
            if c.param == ex.param || c.to_string().contains(ex.param) {
                println!("   inferred   : {c}");
                printed = true;
            }
        }
        if !printed {
            println!("   (parameter not mapped)");
        }
    }
}

/// Figures 5 and 7: inject the constraint-violating values and print the
/// exposed reactions.
fn figures_injection() {
    println!("\nFigures 5/7: misconfiguration injection on the paper's examples");
    for ex in figures::examples() {
        let program = spex_lang::parse_program(ex.source).expect("figure parses");
        let module = spex_ir::lower_program(&program).expect("figure lowers");
        let anns = Annotation::parse(ex.annotations).expect("annotation parses");
        let analysis = Spex::analyze(module.clone(), &anns);
        let constraints: Vec<_> = analysis.all_constraints().cloned().collect();
        let misconfigs = genrule::generate_all(&standard_rules(), &constraints);
        if misconfigs.is_empty() {
            continue;
        }
        let has_config = module.function_by_name("handle_config").is_some();
        // Wire up silent-violation detection: a parameter whose backing
        // global shares its (sanitised) name is compared after the run.
        let mut param_globals = std::collections::HashMap::new();
        for report in &analysis.reports {
            let candidate: String = report
                .param
                .name
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect();
            for name in [report.param.name.as_str(), candidate.as_str()] {
                if module.global_by_name(name).is_some() {
                    param_globals.insert(report.param.name.clone(), name.to_string());
                    break;
                }
            }
        }
        let target = spex_inj::TestTarget {
            name: ex.id.to_string(),
            module: &module,
            dialect: spex_conf::Dialect::KeyValue,
            template_conf: String::new(),
            config_entry: if has_config {
                "handle_config".into()
            } else {
                "startup".into()
            },
            startup: "startup".into(),
            tests: module
                .function_by_name("test_fulltext")
                .map(|_| {
                    vec![spex_inj::TestCase {
                        name: "fulltext".into(),
                        func: "test_fulltext".into(),
                        cost: 1,
                    }]
                })
                .unwrap_or_default(),
            world: Box::new(|| {
                let mut w = spex_vm::World::default();
                w.occupy_port(80);
                w.add_file("/data/words", "seed");
                w
            }),
            param_globals,
        };
        if !has_config {
            // Snippets without a dispatcher are driven per-global by the
            // full campaign path in the generated systems; print inference
            // output only.
            continue;
        }
        let campaign = InjectionCampaign::new(target);
        println!("-- Figure {} ({}) --", ex.id, ex.system);
        for outcome in campaign.run(&misconfigs) {
            println!(
                "   inject {} = {:<16} -> {:?}",
                outcome.misconfig.param, outcome.misconfig.value, outcome.reaction
            );
        }
    }
}

/// Figure 6: the design detectors on the worked examples.
fn figures_design() {
    println!("\nFigure 6: error-prone design detection on the paper's examples");
    for ex in figures::examples() {
        let program = spex_lang::parse_program(ex.source).expect("figure parses");
        let module = spex_ir::lower_program(&program).expect("figure lowers");
        let anns = Annotation::parse(ex.annotations).expect("annotation parses");
        let analysis = Spex::analyze(module, &anns);
        let report = spex_design::DesignReport::analyze(&analysis, &spex_design::Manual::empty());
        if report.overruling.is_empty() && report.unsafe_apis.is_empty() {
            continue;
        }
        println!("-- Figure {} ({}) --", ex.id, ex.system);
        for o in &report.overruling {
            println!(
                "   silent overruling of \"{}\" in {}",
                o.param, o.in_function
            );
        }
        for u in &report.unsafe_apis {
            println!(
                "   unsafe API {} on \"{}\" in {}",
                u.api, u.param, u.in_function
            );
        }
    }
}
