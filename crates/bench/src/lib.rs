//! Evaluation driver shared by the `paper` binary and the Criterion
//! benches.
//!
//! [`evaluate`] runs the full SPEX pipeline over one subject system:
//! generate → lower → infer constraints → design detectors → generate
//! misconfigurations → injection campaign → classify reactions → accuracy
//! against ground truth. The table renderers turn a set of evaluations into
//! the paper's Tables 4–12.

use spex_core::accuracy::AccuracyReport;
use spex_core::{evaluate_accuracy, Annotation, Spex, SpexAnalysis};
use spex_design::{DesignReport, Manual};
use spex_inj::{
    genrule, standard_rules, CampaignReport, InjectionCampaign, Misconfig, RunOutcome, TestTarget,
};
use spex_systems::{BuiltSystem, SystemSpec};
use std::collections::HashMap;
use std::fmt::Write as _;

/// A fully evaluated system.
pub struct Evaluated {
    /// The built system (module, generated artifacts).
    pub built: BuiltSystem,
    /// SPEX constraint inference results.
    pub analysis: SpexAnalysis,
    /// Error-prone-design report.
    pub design: DesignReport,
    /// The generated misconfigurations.
    pub misconfigs: Vec<Misconfig>,
    /// Raw injection outcomes (empty when injection was skipped).
    pub outcomes: Vec<RunOutcome>,
    /// Aggregated campaign report.
    pub report: CampaignReport,
    /// Inference accuracy against ground truth.
    pub accuracy: AccuracyReport,
    /// Annotation line count (Table 4's LoA).
    pub loa: usize,
}

/// Runs the pipeline over one system. `run_injection` can be disabled for
/// inference-only workloads (it dominates the runtime).
pub fn evaluate(spec: SystemSpec, run_injection: bool) -> Evaluated {
    let built = BuiltSystem::build(spec);
    let anns = Annotation::parse(&built.gen.annotations).expect("generated annotations parse");
    let loa = Annotation::count_lines(&built.gen.annotations);
    let analysis = Spex::analyze(built.module.clone(), &anns);
    let design = DesignReport::analyze(&analysis, &built.gen.manual);
    let constraints: Vec<_> = analysis.all_constraints().cloned().collect();
    let accuracy = evaluate_accuracy(&constraints, &built.gen.truth);
    let misconfigs = genrule::generate_all(&standard_rules(), &constraints);
    let outcomes = if run_injection {
        let campaign = InjectionCampaign::new(make_target(&built));
        campaign.run(&misconfigs)
    } else {
        Vec::new()
    };
    let report = CampaignReport::from_outcomes(&outcomes);
    Evaluated {
        built,
        analysis,
        design,
        misconfigs,
        outcomes,
        report,
        accuracy,
        loa,
    }
}

/// Builds the injection target for a built system.
pub fn make_target(built: &BuiltSystem) -> TestTarget<'_> {
    let world_files = built.gen.world_files.clone();
    let world_dirs = built.gen.world_dirs.clone();
    TestTarget {
        name: built.spec.name.to_string(),
        module: &built.module,
        dialect: built.gen.dialect,
        template_conf: built.gen.template_conf.clone(),
        config_entry: "handle_config".into(),
        startup: "startup".into(),
        tests: built.gen.tests.clone(),
        world: Box::new(move || {
            let mut w = spex_vm::World::default();
            w.occupy_port(80);
            for (f, c) in &world_files {
                w.add_file(f, c);
            }
            for d in &world_dirs {
                w.add_dir(d);
            }
            w
        }),
        param_globals: built.gen.param_globals.clone(),
    }
}

/// The manual of a built system (convenience re-borrow).
pub fn manual_of(built: &BuiltSystem) -> &Manual {
    &built.gen.manual
}

// --- Table renderers ---------------------------------------------------------

/// Renders Table 4: evaluated systems.
pub fn render_table4(evals: &[Evaluated]) -> String {
    let mut out = String::from(
        "Table 4: Evaluated software systems\n\
         Software     Mapping         LoC(gen)  #Parameter  LoA\n",
    );
    for e in evals {
        let _ = writeln!(
            out,
            "{:<12} {:<15} {:>8}  {:>10}  {:>3}",
            e.built.spec.name,
            format!("{:?}", e.built.spec.mapping),
            e.built.loc(),
            e.built.spec.param_count(),
            e.loa
        );
    }
    out
}

/// Renders Table 5: misconfiguration vulnerabilities and code locations.
pub fn render_table5(evals: &[Evaluated]) -> String {
    let mut out = String::from(
        "Table 5(a): misconfiguration vulnerabilities (bad system reactions)\n\
         Software     Crash/Hang  EarlyTerm  FuncFail  SilentViol  SilentIgn  Total\n",
    );
    let mut totals = [0usize; 6];
    for e in evals {
        let c = |k: &str| e.report.count(k);
        let row = [
            c("crash-hang"),
            c("early-termination"),
            c("functional-failure"),
            c("silent-violation"),
            c("silent-ignorance"),
            e.report.total(),
        ];
        for (t, v) in totals.iter_mut().zip(row.iter()) {
            *t += v;
        }
        let _ = writeln!(
            out,
            "{:<12} {:>10}  {:>9}  {:>8}  {:>10}  {:>9}  {:>5}",
            e.built.spec.name, row[0], row[1], row[2], row[3], row[4], row[5]
        );
    }
    let _ = writeln!(
        out,
        "{:<12} {:>10}  {:>9}  {:>8}  {:>10}  {:>9}  {:>5}",
        "Total", totals[0], totals[1], totals[2], totals[3], totals[4], totals[5]
    );
    out.push_str("\nTable 5(b): unique source-code locations\nSoftware     Locations\n");
    let mut loc_total = 0;
    for e in evals {
        loc_total += e.report.locations.len();
        let _ = writeln!(
            out,
            "{:<12} {:>9}",
            e.built.spec.name,
            e.report.locations.len()
        );
    }
    let _ = writeln!(out, "{:<12} {:>9}", "Total", loc_total);
    out
}

/// Renders Table 6: case-sensitivity requirements.
pub fn render_table6(evals: &[Evaluated]) -> String {
    let mut out = String::from(
        "Table 6: case-sensitivity of string parameters\n\
         Software     Sensitive      Insensitive\n",
    );
    for e in evals {
        let s = e.design.case.sensitive.len();
        let i = e.design.case.insensitive.len();
        let total = (s + i).max(1);
        let _ = writeln!(
            out,
            "{:<12} {:>4} ({:>5.1}%)  {:>4} ({:>5.1}%)",
            e.built.spec.name,
            s,
            100.0 * s as f64 / total as f64,
            i,
            100.0 * i as f64 / total as f64
        );
    }
    out
}

/// Renders Table 7: units of size- and time-related parameters.
pub fn render_table7(evals: &[Evaluated]) -> String {
    use spex_core::constraint::{SizeUnit, TimeUnit};
    let mut out = String::from(
        "Table 7: units of size- and time-related parameters\n\
         Software        B   KB   MB   GB |  us   ms    s    m    h\n",
    );
    for e in evals {
        let u = &e.design.units;
        let _ = writeln!(
            out,
            "{:<12} {:>4} {:>4} {:>4} {:>4} | {:>3} {:>4} {:>4} {:>4} {:>4}",
            e.built.spec.name,
            u.size_count(SizeUnit::B),
            u.size_count(SizeUnit::KB),
            u.size_count(SizeUnit::MB),
            u.size_count(SizeUnit::GB),
            u.time_count(TimeUnit::Micro),
            u.time_count(TimeUnit::Milli),
            u.time_count(TimeUnit::Sec),
            u.time_count(TimeUnit::Min),
            u.time_count(TimeUnit::Hour),
        );
    }
    out
}

/// Renders Table 8: silent overruling, unsafe APIs, undocumented
/// constraints.
pub fn render_table8(evals: &[Evaluated]) -> String {
    let mut out = String::from(
        "Table 8: other error-prone configuration design and handling\n\
         Software     Overrule  UnsafeAPI  Undoc-range  Undoc-dep  Undoc-rel\n",
    );
    for e in evals {
        let unsafe_params = spex_design::unsafe_api::affected_params(&e.design.unsafe_apis).len();
        let (r, d, v) = e.design.undocumented.counts();
        let _ = writeln!(
            out,
            "{:<12} {:>8}  {:>9}  {:>11}  {:>9}  {:>9}",
            e.built.spec.name,
            e.design.overruling.len(),
            unsafe_params,
            r,
            d,
            v
        );
    }
    out
}

/// Renders Table 9: real-world cases potentially avoided.
pub fn render_table9() -> String {
    let cases = spex_systems::corpus::sample_corpus();
    let mut out = String::from(
        "Table 9: historical misconfiguration cases potentially avoided\n\
         Software     Cases  Avoidable\n",
    );
    for &(system, _) in spex_systems::corpus::CASE_COUNTS {
        let (total, avoid, pct) = spex_systems::corpus::table9_row(&cases, system);
        let _ = writeln!(
            out,
            "{:<12} {:>5}  {:>4} ({:>4.1}%)",
            system,
            total,
            avoid,
            100.0 * pct
        );
    }
    out
}

/// Renders Table 10: breakdown of non-benefiting cases.
pub fn render_table10() -> String {
    let cases = spex_systems::corpus::sample_corpus();
    let mut out = String::from(
        "Table 10: cases that cannot benefit from SPEX/SPEX-INJ\n\
         Software     Single-SW  Cross-SW  Conform  GoodReact\n",
    );
    for &(system, _) in spex_systems::corpus::CASE_COUNTS {
        let row = spex_systems::corpus::table10_row(&cases, system);
        let _ = writeln!(
            out,
            "{:<12} {:>9}  {:>8}  {:>7}  {:>9}",
            system, row[0], row[1], row[2], row[3]
        );
    }
    out
}

/// Renders Table 11: inferred constraints by kind.
pub fn render_table11(evals: &[Evaluated]) -> String {
    let mut out = String::from(
        "Table 11: configuration constraints inferred by SPEX\n\
         Software     Basic  Semantic  Range  CtrlDep  ValRel  Total\n",
    );
    let mut totals = [0usize; 6];
    for e in evals {
        let counts = e.analysis.counts_by_category();
        let g = |k: &str| counts.get(k).copied().unwrap_or(0);
        let row = [
            g("basic-type"),
            g("semantic-type"),
            g("data-range"),
            g("control-dep"),
            g("value-rel"),
        ];
        let total: usize = row.iter().sum();
        for (t, v) in totals.iter_mut().zip(row.iter().chain([&total])) {
            *t += v;
        }
        let _ = writeln!(
            out,
            "{:<12} {:>5}  {:>8}  {:>5}  {:>7}  {:>6}  {:>5}",
            e.built.spec.name, row[0], row[1], row[2], row[3], row[4], total
        );
    }
    let _ = writeln!(
        out,
        "{:<12} {:>5}  {:>8}  {:>5}  {:>7}  {:>6}  {:>5}",
        "Total", totals[0], totals[1], totals[2], totals[3], totals[4], totals[5]
    );
    out
}

/// Renders Table 12: accuracy of constraint inference.
pub fn render_table12(evals: &[Evaluated]) -> String {
    let mut out = String::from(
        "Table 12: accuracy of constraint inference\n\
         Software     Basic    Semantic  Range    CtrlDep  ValRel   Overall\n",
    );
    let fmt = |a: Option<f64>| match a {
        Some(v) => format!("{:>6.1}%", 100.0 * v),
        None => "   N/A ".to_string(),
    };
    for e in evals {
        let _ = writeln!(
            out,
            "{:<12} {}  {}  {}  {}  {}  {:>6.1}%",
            e.built.spec.name,
            fmt(e.accuracy.accuracy("basic-type")),
            fmt(e.accuracy.accuracy("semantic-type")),
            fmt(e.accuracy.accuracy("data-range")),
            fmt(e.accuracy.accuracy("control-dep")),
            fmt(e.accuracy.accuracy("value-rel")),
            100.0 * e.accuracy.overall()
        );
    }
    out
}

/// Renders Table 1: the mapping-convention survey.
pub fn render_table1() -> String {
    let mut out = String::from(
        "Table 1: parameter-to-variable mapping in 18 software projects\n\
         Software       Desc      Type\n",
    );
    for e in spex_systems::survey::SURVEY {
        let _ = writeln!(out, "{:<14} {:<9} {}", e.software, e.desc, e.convention);
    }
    out
}

/// Renders Table 2: the generation-rule registry.
pub fn render_table2() -> String {
    let mut out = String::from("Table 2: misconfiguration generation rules (plug-ins)\n");
    for rule in standard_rules() {
        let _ = writeln!(out, "  {}", rule.name());
    }
    out
}

/// Renders Table 3: the reaction taxonomy.
pub fn render_table3() -> String {
    String::from(
        "Table 3: the category of bad system reactions\n\
         Crash/Hang        the system crashes or hangs\n\
         Early termination exits without pinpointing the injected error\n\
         Functional failure fails functional testing without pinpointing\n\
         Silent violation  changes input configurations without notifying\n\
         Silent ignorance  ignores input configurations\n",
    )
}

/// Per-category misconfiguration counts, keyed by the violated constraint
/// kind (used by benches and summaries).
pub fn misconfig_mix(misconfigs: &[Misconfig]) -> HashMap<&'static str, usize> {
    let mut mix = HashMap::new();
    for m in misconfigs {
        *mix.entry(m.violates).or_insert(0) += 1;
    }
    mix
}

/// A dependency-free micro-benchmark harness (the container has no network,
/// so Criterion is unavailable; this provides the subset the benches need).
pub mod harness {
    use std::cell::RefCell;
    use std::collections::BTreeMap;
    use std::fmt::Write as _;
    use std::io::Write as _;
    use std::path::PathBuf;
    use std::time::{Duration, Instant};

    /// Re-export of the compiler fence against dead-code elimination.
    pub fn black_box<T>(x: T) -> T {
        std::hint::black_box(x)
    }

    /// One measured benchmark, as recorded for the trajectory files.
    #[derive(Debug, Clone)]
    pub struct BenchResult {
        /// Full bench name (`group/case`).
        pub name: String,
        /// Mean latency per iteration, in nanoseconds.
        pub mean_ns: u128,
        /// Best single iteration, in nanoseconds.
        pub best_ns: u128,
        /// Iterations measured.
        pub iters: usize,
    }

    /// Runs registered benchmarks, honouring an optional name filter passed
    /// on the command line (flags such as `--bench` are ignored). With
    /// `--json` it also appends every result to a per-group
    /// `BENCH_<group>.json` trajectory file (see `write_trajectory`).
    pub struct Runner {
        filter: Option<String>,
        json: bool,
        stamp: Option<String>,
        results: RefCell<Vec<BenchResult>>,
        /// Target measurement time per benchmark.
        pub budget: Duration,
    }

    impl Runner {
        /// A runner configured from `std::env::args`.
        ///
        /// Recognised flags: `--json` (write trajectory files) and
        /// `--stamp=<s>` (override the timestamp recorded in them, for
        /// reproducible CI runs). The first non-flag argument is the name
        /// filter.
        pub fn from_args() -> Runner {
            let mut filter = None;
            let mut json = false;
            let mut stamp = None;
            for a in std::env::args().skip(1) {
                if a == "--json" {
                    json = true;
                } else if let Some(s) = a.strip_prefix("--stamp=") {
                    stamp = Some(s.to_string());
                } else if !a.starts_with('-') && filter.is_none() {
                    filter = Some(a);
                }
            }
            Runner {
                filter,
                json,
                stamp,
                results: RefCell::new(Vec::new()),
                budget: Duration::from_millis(300),
            }
        }

        /// Whether `name` passes the command-line filter (public so bench
        /// files can gate invariant asserts to the benches that ran).
        pub fn selected(&self, name: &str) -> bool {
            self.filter
                .as_deref()
                .map(|f| name.contains(f))
                .unwrap_or(true)
        }

        /// Times `f`, printing mean and best-of-run latency.
        pub fn bench<T>(&self, name: &str, mut f: impl FnMut() -> T) {
            self.bench_with_setup(name, || (), |()| f())
        }

        /// Times `f` over fresh inputs from `setup`; only `f` is measured.
        pub fn bench_with_setup<S, T>(
            &self,
            name: &str,
            mut setup: impl FnMut() -> S,
            mut f: impl FnMut(S) -> T,
        ) {
            if !self.selected(name) {
                return;
            }
            // Warm-up and per-iteration estimate.
            let input = setup();
            let start = Instant::now();
            black_box(f(input));
            let once = start.elapsed().max(Duration::from_nanos(100));
            let iters = (self.budget.as_nanos() / once.as_nanos()).clamp(3, 1000) as usize;

            let mut total = Duration::ZERO;
            let mut best = Duration::MAX;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                black_box(f(input));
                let dt = start.elapsed();
                total += dt;
                best = best.min(dt);
            }
            let mean = total / iters as u32;
            println!(
                "{name:<44} {:>12}  (best {:>12}, {iters} iters)",
                fmt_duration(mean),
                fmt_duration(best),
            );
            self.record(name, mean.as_nanos(), best.as_nanos(), iters);
        }

        /// Records an externally measured result so it lands in the
        /// trajectory files (used by self-check benches that time their
        /// iterations by hand).
        pub fn record(&self, name: &str, mean_ns: u128, best_ns: u128, iters: usize) {
            self.results.borrow_mut().push(BenchResult {
                name: name.to_string(),
                mean_ns,
                best_ns,
                iters,
            });
        }

        /// Appends every recorded result to `BENCH_<group>.json` (JSON
        /// Lines, one metric per line), where `group` is the bench-name
        /// prefix before the first `/`. Each line carries the git revision,
        /// a timestamp, the bench name, a metric name, the value and its
        /// unit, so successive runs accumulate a perf trajectory that can
        /// be diffed or plotted across commits.
        ///
        /// No-op unless the runner was given `--json`. Files are written
        /// next to the workspace root (override with `SPEX_BENCH_DIR`),
        /// then re-validated whole with
        /// `spex_obs::json::validate_trajectory`; a malformed file is a
        /// panic, not a warning.
        pub fn write_trajectory(&self) -> Vec<PathBuf> {
            if !self.json {
                return Vec::new();
            }
            let results = self.results.borrow();
            let rev = git_rev();
            let stamp = self.stamp.clone().unwrap_or_else(default_stamp);
            let mut groups: BTreeMap<String, String> = BTreeMap::new();
            for r in results.iter() {
                let group = r.name.split('/').next().unwrap_or("misc").to_string();
                let buf = groups.entry(group).or_default();
                for (metric, value, unit) in [
                    ("mean_ns", r.mean_ns, "ns"),
                    ("best_ns", r.best_ns, "ns"),
                    ("iters", r.iters as u128, "count"),
                ] {
                    let _ = writeln!(
                        buf,
                        "{{\"rev\":{},\"stamp\":{},\"bench\":{},\"metric\":{},\
                         \"value\":{},\"unit\":{}}}",
                        quote(&rev),
                        quote(&stamp),
                        quote(&r.name),
                        quote(metric),
                        value,
                        quote(unit),
                    );
                }
            }
            let dir = trajectory_dir();
            let mut written = Vec::new();
            let mut lines = 0;
            for (group, body) in groups {
                let path = dir.join(format!("BENCH_{group}.json"));
                let mut file = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                    .unwrap_or_else(|e| panic!("open {}: {e}", path.display()));
                file.write_all(body.as_bytes())
                    .unwrap_or_else(|e| panic!("append {}: {e}", path.display()));
                let text = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("re-read {}: {e}", path.display()));
                match spex_obs::json::validate_trajectory(&text) {
                    Ok(n) => lines += n,
                    Err(e) => panic!("{} failed validation: {e}", path.display()),
                }
                written.push(path);
            }
            println!(
                "BENCH json self-check: OK ({lines} trajectory line(s) across {} file(s))",
                written.len()
            );
            written
        }
    }

    /// JSON string quoting (shared with the obs snapshot renderer).
    fn quote(s: &str) -> String {
        spex_obs::json::quote(s)
    }

    fn git_rev() -> String {
        if let Ok(rev) = std::env::var("SPEX_GIT_REV") {
            return rev;
        }
        std::process::Command::new("git")
            .args(["rev-parse", "--short", "HEAD"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string())
    }

    fn default_stamp() -> String {
        if let Ok(s) = std::env::var("SPEX_BENCH_STAMP") {
            return s;
        }
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs().to_string())
            .unwrap_or_else(|_| "0".to_string())
    }

    /// Directory trajectory files land in: `SPEX_BENCH_DIR` if set, else
    /// the workspace root (two levels above this crate's manifest).
    fn trajectory_dir() -> PathBuf {
        if let Ok(dir) = std::env::var("SPEX_BENCH_DIR") {
            return PathBuf::from(dir);
        }
        let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        manifest
            .parent()
            .and_then(|p| p.parent())
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."))
    }

    fn fmt_duration(d: Duration) -> String {
        let ns = d.as_nanos();
        if ns < 1_000 {
            format!("{ns} ns")
        } else if ns < 1_000_000 {
            format!("{:.2} us", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            format!("{:.2} ms", ns as f64 / 1e6)
        } else {
            format!("{:.2} s", ns as f64 / 1e9)
        }
    }
}
