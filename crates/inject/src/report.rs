//! Campaign reports: vulnerabilities, per-category counts (Table 5a) and
//! unique source-code locations (Table 5b).

use crate::harness::{Reaction, RunOutcome};
use spex_lang::diag::Span;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A confirmed misconfiguration vulnerability (one bad reaction).
#[derive(Debug, Clone)]
pub struct Vulnerability {
    /// The injected parameter.
    pub param: String,
    /// The injected value.
    pub value: String,
    /// What was violated.
    pub violates: &'static str,
    /// The classified bad reaction.
    pub reaction: Reaction,
    /// Captured logs at the time of the reaction.
    pub logs: String,
    /// The failing test, if the reaction surfaced there.
    pub failed_test: Option<String>,
    /// Deduplication key: function + span of the constraint evidence.
    pub location: (String, Span),
}

impl fmt::Display for Vulnerability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} = {:?} -> {:?}",
            self.violates, self.param, self.value, self.reaction
        )
    }
}

/// Aggregated results of one injection campaign.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// All exposed vulnerabilities.
    pub vulnerabilities: Vec<Vulnerability>,
    /// Vulnerability counts by Table 5(a) column.
    pub by_reaction: BTreeMap<&'static str, usize>,
    /// Unique source-code locations behind the vulnerabilities (Table 5b).
    pub locations: BTreeSet<(String, Span)>,
    /// Runs that ended with a pinpointing message (good reactions).
    pub good_reactions: usize,
    /// Runs with no misbehaviour at all.
    pub benign: usize,
    /// Total test-cost units spent across the campaign.
    pub total_cost: u64,
}

impl CampaignReport {
    /// Builds a report from raw run outcomes.
    pub fn from_outcomes(outcomes: &[RunOutcome]) -> CampaignReport {
        let mut report = CampaignReport::default();
        for o in outcomes {
            report.total_cost += o.cost_spent;
            match &o.reaction {
                Reaction::GoodReaction => report.good_reactions += 1,
                Reaction::Benign => report.benign += 1,
                reaction => {
                    let column = reaction.column().expect("vulnerability has a column");
                    *report.by_reaction.entry(column).or_insert(0) += 1;
                    report.locations.insert(o.misconfig.origin.clone());
                    report.vulnerabilities.push(Vulnerability {
                        param: o.misconfig.param.clone(),
                        value: o.misconfig.value.clone(),
                        violates: o.misconfig.violates,
                        reaction: reaction.clone(),
                        logs: o.logs.clone(),
                        failed_test: o.failed_test.clone(),
                        location: o.misconfig.origin.clone(),
                    });
                }
            }
        }
        report
    }

    /// Total vulnerability count.
    pub fn total(&self) -> usize {
        self.vulnerabilities.len()
    }

    /// Count for one Table 5(a) column.
    pub fn count(&self, column: &str) -> usize {
        self.by_reaction.get(column).copied().unwrap_or(0)
    }

    /// Renders the developer-facing error report for one vulnerability:
    /// constraint category, injected error, failed test and logs (the
    /// paper's SPEX-INJ output format).
    pub fn render_error_report(v: &Vulnerability) -> String {
        let mut out = String::new();
        out.push_str("== Misconfiguration vulnerability report ==\n");
        out.push_str(&format!("parameter   : {}\n", v.param));
        out.push_str(&format!("injected    : {} = {}\n", v.param, v.value));
        out.push_str(&format!("violates    : {} constraint\n", v.violates));
        out.push_str(&format!("reaction    : {:?}\n", v.reaction));
        if let Some(t) = &v.failed_test {
            out.push_str(&format!("failed test : {t}\n"));
        }
        out.push_str(&format!(
            "evidence at : {} ({})\n",
            v.location.0, v.location.1
        ));
        out.push_str("--- captured logs ---\n");
        if v.logs.is_empty() {
            out.push_str("(no log output)\n");
        } else {
            out.push_str(&v.logs);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genrule::Misconfig;
    use crate::harness::Phase;
    use spex_vm::Signal;

    fn outcome(param: &str, reaction: Reaction, origin_line: u32) -> RunOutcome {
        RunOutcome {
            misconfig: Misconfig {
                param: param.into(),
                value: "x".into(),
                also_set: vec![],
                description: String::new(),
                violates: "data-range",
                origin: ("parse".into(), Span::new(origin_line, 1)),
            },
            reaction,
            phase: Phase::Done,
            logs: String::new(),
            pinpointed: false,
            failed_test: None,
            cost_spent: 3,
        }
    }

    #[test]
    fn report_counts_by_column() {
        let outs = vec![
            outcome("a", Reaction::Crash(Signal::Segv), 1),
            outcome("b", Reaction::Hang, 2),
            outcome("c", Reaction::SilentViolation, 3),
            outcome("d", Reaction::GoodReaction, 4),
            outcome("e", Reaction::Benign, 5),
        ];
        let r = CampaignReport::from_outcomes(&outs);
        assert_eq!(r.total(), 3);
        assert_eq!(r.count("crash-hang"), 2);
        assert_eq!(r.count("silent-violation"), 1);
        assert_eq!(r.good_reactions, 1);
        assert_eq!(r.benign, 1);
        assert_eq!(r.total_cost, 15);
    }

    #[test]
    fn locations_deduplicate() {
        // Two vulnerabilities from the same code location count once in
        // Table 5(b).
        let outs = vec![
            outcome("a", Reaction::SilentViolation, 7),
            outcome("b", Reaction::SilentViolation, 7),
            outcome("c", Reaction::SilentViolation, 9),
        ];
        let r = CampaignReport::from_outcomes(&outs);
        assert_eq!(r.total(), 3);
        assert_eq!(r.locations.len(), 2);
    }

    #[test]
    fn error_report_rendering() {
        let outs = vec![outcome("udp_port", Reaction::Crash(Signal::Segv), 3)];
        let r = CampaignReport::from_outcomes(&outs);
        let text = CampaignReport::render_error_report(&r.vulnerabilities[0]);
        assert!(text.contains("udp_port"));
        assert!(text.contains("data-range"));
        assert!(text.contains("no log output"));
    }
}
