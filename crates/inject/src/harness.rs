//! The injection-testing harness (§3.1).
//!
//! For each generated misconfiguration the harness builds a fresh world,
//! feeds the mutated configuration file to the system's config entry point,
//! runs startup, then drives the system's own functional test cases —
//! shortest first, stopping at the first failure (the paper's two
//! optimizations, both individually togglable for the ablation benchmark) —
//! and classifies the observed reaction against Table 3.

use crate::genrule::Misconfig;
use spex_conf::{ConfFile, Dialect};
use spex_ir::Module;
use spex_vm::{Signal, Value, Vm, VmHalt, World};
use std::collections::HashMap;

/// One functional test case shipped with the subject system.
#[derive(Debug, Clone)]
pub struct TestCase {
    /// Display name.
    pub name: String,
    /// VM function to call; returns 0 on pass.
    pub func: String,
    /// Relative cost (virtual runtime units) used for shortest-first
    /// ordering.
    pub cost: u32,
}

/// A system under injection testing.
pub struct TestTarget<'m> {
    /// System name (reporting only).
    pub name: String,
    /// The lowered module.
    pub module: &'m Module,
    /// Config-file dialect.
    pub dialect: Dialect,
    /// The template (default) configuration file.
    pub template_conf: String,
    /// Function called as `f(name, value) -> int` for every setting; a
    /// nonzero return means the parser rejected the setting and the system
    /// stops (like a server refusing to start).
    pub config_entry: String,
    /// Function called as `f() -> int` after configuration; nonzero means
    /// startup failed.
    pub startup: String,
    /// The system's functional test suite.
    pub tests: Vec<TestCase>,
    /// Fresh-world factory (occupies ports, creates files...).
    pub world: Box<dyn Fn() -> World + Send + Sync + 'm>,
    /// Parameter → backing-global name, for the silent-violation check.
    /// Only parameters whose global stores the input verbatim belong here.
    pub param_globals: HashMap<String, String>,
}

/// Which phase of a run produced the reaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Phase {
    /// While parsing the configuration.
    Config,
    /// During startup.
    Startup,
    /// While running the named functional test.
    Test(String),
    /// After all phases passed.
    Done,
}

/// The classified system reaction (Table 3), plus the two non-vulnerable
/// outcomes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reaction {
    /// The system crashed (signal) — most severe.
    Crash(Signal),
    /// The system hung.
    Hang,
    /// The system exited without pinpointing the injected error.
    EarlyTermination,
    /// A functional test failed without a pinpointing message.
    FunctionalFailure,
    /// The system silently changed the configured value.
    SilentViolation,
    /// The system silently ignored the setting (control-dependency
    /// violations).
    SilentIgnorance,
    /// The system pinpointed the faulty parameter — the desired behaviour.
    GoodReaction,
    /// The system tolerated the value without misbehaving.
    Benign,
}

impl Reaction {
    /// Whether this reaction is a misconfiguration vulnerability.
    pub fn is_vulnerability(&self) -> bool {
        !matches!(self, Reaction::GoodReaction | Reaction::Benign)
    }

    /// The Table 5(a) column this reaction falls into (`None` for
    /// non-vulnerabilities).
    pub fn column(&self) -> Option<&'static str> {
        Some(match self {
            Reaction::Crash(_) | Reaction::Hang => "crash-hang",
            Reaction::EarlyTermination => "early-termination",
            Reaction::FunctionalFailure => "functional-failure",
            Reaction::SilentViolation => "silent-violation",
            Reaction::SilentIgnorance => "silent-ignorance",
            _ => return None,
        })
    }
}

/// Result of injecting one misconfiguration.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// What was injected.
    pub misconfig: Misconfig,
    /// The classified reaction.
    pub reaction: Reaction,
    /// Where it surfaced.
    pub phase: Phase,
    /// Captured log text.
    pub logs: String,
    /// Whether the logs pinpointed the parameter (name, value or config
    /// line).
    pub pinpointed: bool,
    /// The failing test, if any.
    pub failed_test: Option<String>,
    /// Test-cost units consumed (for the optimization ablation).
    pub cost_spent: u64,
}

/// Campaign options: the §3.1 testing optimizations, togglable for
/// benchmarks.
#[derive(Debug, Clone, Copy)]
pub struct CampaignOptions {
    /// Stop a run at the first failed test case.
    pub stop_at_first_failure: bool,
    /// Run the shortest test cases first.
    pub sort_tests_by_cost: bool,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            stop_at_first_failure: true,
            sort_tests_by_cost: true,
        }
    }
}

/// Drives a full injection campaign over one target.
pub struct InjectionCampaign<'m> {
    target: TestTarget<'m>,
    options: CampaignOptions,
}

impl<'m> InjectionCampaign<'m> {
    /// Creates a campaign with default (paper) options.
    pub fn new(target: TestTarget<'m>) -> Self {
        InjectionCampaign {
            target,
            options: CampaignOptions::default(),
        }
    }

    /// Overrides the optimization options.
    pub fn with_options(mut self, options: CampaignOptions) -> Self {
        self.options = options;
        self
    }

    /// The target under test.
    pub fn target(&self) -> &TestTarget<'m> {
        &self.target
    }

    /// Runs every misconfiguration and returns per-run outcomes.
    pub fn run(&self, misconfigs: &[Misconfig]) -> Vec<RunOutcome> {
        let _span = spex_obs::span("inject.campaign");
        let outcomes: Vec<RunOutcome> = misconfigs.iter().map(|m| self.run_one(m)).collect();
        if spex_obs::enabled() {
            spex_obs::counter("inject.injections", outcomes.len() as u64);
            spex_obs::counter(
                "inject.vulnerabilities",
                outcomes
                    .iter()
                    .filter(|o| o.reaction.is_vulnerability())
                    .count() as u64,
            );
        }
        outcomes
    }

    /// Runs a single misconfiguration end to end.
    pub fn run_one(&self, m: &Misconfig) -> RunOutcome {
        let _span = spex_obs::span!("inject.run", param = m.param);
        let mut conf = ConfFile::parse(&self.target.template_conf, self.target.dialect);
        conf.set(&m.param, &m.value);
        for (p, v) in &m.also_set {
            conf.set(p, v);
        }

        let world = (self.target.world)();
        let mut vm = Vm::new(self.target.module, world);
        let mut cost_spent = 0u64;

        // Phase 1: configuration.
        for (name, value) in conf.settings() {
            match vm.call(
                &self.target.config_entry,
                &[Value::str(name), Value::str(value)],
            ) {
                Ok(ret) => {
                    if ret.as_int().unwrap_or(0) != 0 {
                        // Parser rejected a setting: the system refuses to
                        // start.
                        return self.finish(m, &vm, Phase::Config, Exit::Refused, None, cost_spent);
                    }
                }
                Err(halt) => {
                    return self.finish(m, &vm, Phase::Config, Exit::Halt(halt), None, cost_spent)
                }
            }
        }

        // Phase 2: startup.
        match vm.call(&self.target.startup, &[]) {
            Ok(ret) => {
                if ret.as_int().unwrap_or(0) != 0 {
                    return self.finish(m, &vm, Phase::Startup, Exit::Refused, None, cost_spent);
                }
            }
            Err(halt) => {
                return self.finish(m, &vm, Phase::Startup, Exit::Halt(halt), None, cost_spent)
            }
        }

        // Phase 3: the system's own test suite.
        let mut tests = self.target.tests.clone();
        if self.options.sort_tests_by_cost {
            tests.sort_by_key(|t| t.cost);
        }
        let mut first_failure: Option<String> = None;
        for t in &tests {
            cost_spent += t.cost as u64;
            match vm.call(&t.func, &[]) {
                Ok(ret) => {
                    if ret.as_int().unwrap_or(0) != 0 && first_failure.is_none() {
                        first_failure = Some(t.name.clone());
                        if self.options.stop_at_first_failure {
                            break;
                        }
                    }
                }
                Err(halt) => {
                    return self.finish(
                        m,
                        &vm,
                        Phase::Test(t.name.clone()),
                        Exit::Halt(halt),
                        first_failure,
                        cost_spent,
                    )
                }
            }
        }
        if let Some(failed) = first_failure {
            return self.finish(
                m,
                &vm,
                Phase::Test(failed.clone()),
                Exit::TestFailed,
                Some(failed),
                cost_spent,
            );
        }

        // Phase 4: everything passed — check for silent misbehaviour.
        self.finish(m, &vm, Phase::Done, Exit::AllPassed, None, cost_spent)
    }

    fn finish(
        &self,
        m: &Misconfig,
        vm: &Vm<'_>,
        phase: Phase,
        exit: Exit,
        failed_test: Option<String>,
        cost_spent: u64,
    ) -> RunOutcome {
        let logs = vm.log_text();
        let conf_line = {
            let conf = ConfFile::parse(&self.target.template_conf, self.target.dialect);
            conf.line_of(&m.param)
        };
        let pinpointed = pinpoints(&logs, m, conf_line);

        let reaction = match exit {
            Exit::Halt(VmHalt::Fatal(sig)) => Reaction::Crash(sig),
            Exit::Halt(VmHalt::Hang) => Reaction::Hang,
            Exit::Halt(VmHalt::Internal(_)) => Reaction::Crash(Signal::Segv),
            Exit::Halt(VmHalt::Exit(code)) => {
                if pinpointed {
                    Reaction::GoodReaction
                } else if code == 0 {
                    Reaction::Benign
                } else {
                    Reaction::EarlyTermination
                }
            }
            Exit::Refused => {
                if pinpointed {
                    Reaction::GoodReaction
                } else {
                    Reaction::EarlyTermination
                }
            }
            Exit::TestFailed => {
                if pinpointed {
                    Reaction::GoodReaction
                } else {
                    Reaction::FunctionalFailure
                }
            }
            Exit::AllPassed => self.classify_silent(m, vm, pinpointed),
        };
        RunOutcome {
            misconfig: m.clone(),
            reaction,
            phase,
            logs,
            pinpointed,
            failed_test,
            cost_spent,
        }
    }

    /// All tests passed: detect silent violation (effective value differs
    /// from the configured one) and silent ignorance (control-dependency
    /// injections with no feedback).
    fn classify_silent(&self, m: &Misconfig, vm: &Vm<'_>, pinpointed: bool) -> Reaction {
        if pinpointed {
            return Reaction::GoodReaction;
        }
        if let Some(global) = self.target.param_globals.get(&m.param) {
            if let (Some(actual), Some(intended)) =
                (vm.global_value(global), intended_value(&m.value))
            {
                if !values_agree(actual, &intended) {
                    return Reaction::SilentViolation;
                }
            }
        }
        if m.violates == "control-dep" {
            return Reaction::SilentIgnorance;
        }
        Reaction::Benign
    }
}

enum Exit {
    Halt(VmHalt),
    Refused,
    TestFailed,
    AllPassed,
}

/// Whether the captured logs pinpoint the misconfiguration: the injected
/// parameter's name, its value, a co-setting's name, or the config-file
/// line number (§3.1).
pub fn pinpoints(logs: &str, m: &Misconfig, conf_line: Option<usize>) -> bool {
    if logs.is_empty() {
        return false;
    }
    let lower = logs.to_lowercase();
    if lower.contains(&m.param.to_lowercase()) {
        return true;
    }
    if m.value.len() >= 2 && logs.contains(&m.value) {
        return true;
    }
    if m.also_set
        .iter()
        .any(|(p, _)| lower.contains(&p.to_lowercase()))
    {
        return true;
    }
    if let Some(line) = conf_line {
        if lower.contains(&format!("line {line}")) {
            return true;
        }
    }
    false
}

/// The user's *intention* for a raw configuration value: full-precision
/// number with unit suffixes honoured, boolean words, else the raw string.
/// Comparing this against the system's effective value exposes silent
/// violations (e.g. `atoi("9G")` storing 9 for a 9-gigabyte intention).
pub fn intended_value(raw: &str) -> Option<Value> {
    let s = raw.trim();
    if s.is_empty() {
        return None;
    }
    match s.to_ascii_lowercase().as_str() {
        "on" | "yes" | "true" | "enable" | "enabled" => return Some(Value::Int(1)),
        "off" | "no" | "false" | "disable" | "disabled" => return Some(Value::Int(0)),
        _ => {}
    }
    // Number with optional unit suffix.
    let (digits, suffix) = split_number(s);
    if !digits.is_empty() && digits.chars().skip(1).all(|c| c.is_ascii_digit()) {
        let base: i64 = digits.parse().ok()?;
        let mult = match suffix.to_ascii_uppercase().as_str() {
            "" => 1,
            "K" | "KB" => 1 << 10,
            "M" | "MB" => 1 << 20,
            "G" | "GB" => 1 << 30,
            _ => return Some(Value::Str(s.to_string())),
        };
        return Some(Value::Int(base.saturating_mul(mult)));
    }
    Some(Value::Str(s.to_string()))
}

fn split_number(s: &str) -> (&str, &str) {
    let mut end = 0;
    let bytes = s.as_bytes();
    if end < bytes.len() && (bytes[end] == b'-' || bytes[end] == b'+') {
        end += 1;
    }
    while end < bytes.len() && bytes[end].is_ascii_digit() {
        end += 1;
    }
    (&s[..end], &s[end..])
}

fn values_agree(actual: &Value, intended: &Value) -> bool {
    match (actual, intended) {
        (Value::Int(a), Value::Int(b)) => a == b,
        (Value::Float(a), Value::Int(b)) => (*a - *b as f64).abs() < 1e-9,
        (Value::Str(a), Value::Str(b)) => a == b,
        // Incomparable shapes: assume agreement (no false positives).
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spex_lang::diag::Span;

    fn mc(param: &str, value: &str, violates: &'static str) -> Misconfig {
        Misconfig {
            param: param.into(),
            value: value.into(),
            also_set: vec![],
            description: String::new(),
            violates,
            origin: ("f".into(), Span::unknown()),
        }
    }

    /// A tiny subject system: one int param with a crash on large values,
    /// one silently clamped param, one good-reaction param.
    const SUBJECT: &str = r#"
        int threads = 4;
        int intlen = 8;
        int checked = 10;
        int table[16];
        int handle_config(char* name, char* value) {
            if (strcmp(name, "threads") == 0) { threads = atoi(value); return 0; }
            if (strcmp(name, "intlen") == 0) {
                intlen = atoi(value);
                if (intlen > 255) { intlen = 255; }
                return 0;
            }
            if (strcmp(name, "checked") == 0) {
                checked = atoi(value);
                if (checked < 1 || checked > 100) {
                    fprintf(stderr, "invalid value for checked: %s", value);
                    return -1;
                }
                return 0;
            }
            return 0;
        }
        int startup() {
            table[threads] = 1;
            return 0;
        }
        int test_smoke() { return 0; }
    "#;

    fn target(m: &spex_ir::Module) -> TestTarget<'_> {
        let mut param_globals = HashMap::new();
        param_globals.insert("threads".to_string(), "threads".to_string());
        param_globals.insert("intlen".to_string(), "intlen".to_string());
        TestTarget {
            name: "toy".into(),
            module: m,
            dialect: Dialect::KeyValue,
            template_conf: "threads = 4\nintlen = 8\nchecked = 10\n".into(),
            config_entry: "handle_config".into(),
            startup: "startup".into(),
            tests: vec![TestCase {
                name: "smoke".into(),
                func: "test_smoke".into(),
                cost: 1,
            }],
            world: Box::new(World::default),
            param_globals,
        }
    }

    fn module() -> spex_ir::Module {
        let p = spex_lang::parse_program(SUBJECT).unwrap();
        spex_ir::lower_program(&p).unwrap()
    }

    #[test]
    fn crash_on_out_of_bounds_write() {
        let m = module();
        let campaign = InjectionCampaign::new(target(&m));
        let out = campaign.run_one(&mc("threads", "100000", "data-range"));
        assert!(matches!(out.reaction, Reaction::Crash(Signal::Segv)));
        assert_eq!(out.phase, Phase::Startup);
        assert!(out.reaction.is_vulnerability());
    }

    #[test]
    fn silent_violation_on_clamped_param() {
        let m = module();
        let campaign = InjectionCampaign::new(target(&m));
        let out = campaign.run_one(&mc("intlen", "300", "data-range"));
        assert_eq!(out.reaction, Reaction::SilentViolation);
        assert_eq!(out.phase, Phase::Done);
    }

    #[test]
    fn good_reaction_when_pinpointed() {
        let m = module();
        let campaign = InjectionCampaign::new(target(&m));
        let out = campaign.run_one(&mc("checked", "999", "data-range"));
        assert_eq!(out.reaction, Reaction::GoodReaction);
        assert!(out.pinpointed);
        assert!(!out.reaction.is_vulnerability());
    }

    #[test]
    fn benign_when_value_is_fine() {
        let m = module();
        let campaign = InjectionCampaign::new(target(&m));
        let out = campaign.run_one(&mc("threads", "8", "basic-type"));
        assert_eq!(out.reaction, Reaction::Benign);
    }

    #[test]
    fn silent_violation_on_overflowing_atoi() {
        // "9000000000" wraps through atoi: the stored value differs from
        // the intention.
        let m = module();
        let campaign = InjectionCampaign::new(target(&m));
        let out = campaign.run_one(&mc("intlen", "9000000000", "basic-type"));
        assert_eq!(out.reaction, Reaction::SilentViolation);
    }

    #[test]
    fn pinpoint_matching_rules() {
        let m = mc("udp_port", "70000", "semantic-type");
        assert!(pinpoints("FATAL: invalid udp_port", &m, None));
        assert!(pinpoints("cannot bind to 70000", &m, None));
        assert!(pinpoints("error at line 7 of config", &m, Some(7)));
        assert!(!pinpoints("error at line 9 of config", &m, Some(7)));
        assert!(!pinpoints("Segmentation fault", &m, None));
        assert!(!pinpoints("", &m, None));
    }

    #[test]
    fn intended_value_parsing() {
        assert_eq!(intended_value("42"), Some(Value::Int(42)));
        assert_eq!(intended_value("-5"), Some(Value::Int(-5)));
        assert_eq!(intended_value("9G"), Some(Value::Int(9 << 30)));
        assert_eq!(intended_value("512MB"), Some(Value::Int(512 << 20)));
        assert_eq!(intended_value("on"), Some(Value::Int(1)));
        assert_eq!(intended_value("OFF"), Some(Value::Int(0)));
        assert_eq!(
            intended_value("/var/log"),
            Some(Value::Str("/var/log".into()))
        );
        assert_eq!(intended_value(""), None);
    }

    #[test]
    fn campaign_runs_all_misconfigs() {
        let m = module();
        let campaign = InjectionCampaign::new(target(&m));
        let outs = campaign.run(&[
            mc("threads", "100000", "data-range"),
            mc("intlen", "300", "data-range"),
            mc("threads", "8", "basic-type"),
        ]);
        assert_eq!(outs.len(), 3);
        assert_eq!(
            outs.iter()
                .filter(|o| o.reaction.is_vulnerability())
                .count(),
            2
        );
    }
}
