//! SPEX-INJ: misconfiguration injection testing (§3.1 of the paper).
//!
//! Given the constraints inferred by `spex-core`, this crate:
//!
//! 1. **generates** configuration errors that violate each constraint
//!    (Table 2) through an extensible plug-in registry ([`genrule`]);
//! 2. **injects** them into the system's template configuration file
//!    through the `spex-conf` abstract representation;
//! 3. **runs** the system in the `spex-vm` interpreter — configuration
//!    phase, startup, then the system's own functional test cases, shortest
//!    first, stopping at the first failure (the paper's two testing
//!    optimizations);
//! 4. **classifies** the reaction (Table 3): crash/hang, early termination,
//!    functional failure, silent violation, silent ignorance — against the
//!    bar that a good reaction must pinpoint the faulty parameter's name,
//!    value or config-file line.
//!
//! The output is a list of [`Vulnerability`] reports carrying the violated
//! constraint, the injected error, the failing test and the captured logs —
//! "the developers can know what misconfigurations caused what problems".

pub mod genrule;
pub mod harness;
pub mod report;

pub use genrule::{standard_rules, GenRule, Misconfig};
pub use harness::{
    CampaignOptions, InjectionCampaign, Phase, Reaction, RunOutcome, TestCase, TestTarget,
};
pub use report::{CampaignReport, Vulnerability};
