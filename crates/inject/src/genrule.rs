//! Misconfiguration generation rules (Table 2 of the paper).
//!
//! "SPEX-INJ generates configuration errors by intentionally violating the
//! inferred constraints. [...] Every generation rule is implemented as a
//! plug-in, which can be extended for customization."
//!
//! | Constraint     | Generation rule                                        |
//! |----------------|--------------------------------------------------------|
//! | Basic type     | values with invalid basic types                        |
//! | Semantic type  | invalid values specific to each semantic type          |
//! | Range          | out-of-range values                                    |
//! | Control dep.   | `(P ⋄ V) ∧ Q` made false while Q is set                |
//! | Value relation | value pairs violating the relation                     |

use spex_core::constraint::{BasicType, CmpOp, Constraint, ConstraintKind, EnumValue, SemType};

/// One generated misconfiguration: the target parameter's erroneous value,
/// plus any co-settings (control-dependency violations set two parameters).
#[derive(Debug, Clone, PartialEq)]
pub struct Misconfig {
    /// The parameter under test.
    pub param: String,
    /// The injected (erroneous) value.
    pub value: String,
    /// Additional settings required by the scenario (e.g. turning the
    /// controlling parameter off).
    pub also_set: Vec<(String, String)>,
    /// Human-readable description of what is violated.
    pub description: String,
    /// Category of the violated constraint (Table 11 vocabulary).
    pub violates: &'static str,
    /// Source location of the violated constraint's evidence: the function
    /// and span. Vulnerabilities deduplicate by this key (Table 5b).
    pub origin: (String, spex_lang::diag::Span),
}

impl Misconfig {
    fn new(
        param: &str,
        value: impl Into<String>,
        desc: impl Into<String>,
        violates: &'static str,
    ) -> Self {
        Misconfig {
            param: param.to_string(),
            value: value.into(),
            also_set: Vec::new(),
            description: desc.into(),
            violates,
            origin: (String::new(), spex_lang::diag::Span::unknown()),
        }
    }
}

/// A generation plug-in: inspects a constraint and produces violating
/// settings.
pub trait GenRule {
    /// Plug-in name (for reports).
    fn name(&self) -> &'static str;
    /// Misconfigurations violating `c`, if this rule applies.
    fn generate(&self, c: &Constraint) -> Vec<Misconfig>;
}

/// The standard plug-in registry covering all five constraint kinds.
pub fn standard_rules() -> Vec<Box<dyn GenRule>> {
    vec![
        Box::new(BasicTypeRule),
        Box::new(SemanticTypeRule),
        Box::new(RangeRule),
        Box::new(ControlDepRule),
        Box::new(ValueRelRule),
    ]
}

/// Runs every rule over every constraint, stamping each misconfiguration
/// with the violated constraint's source location.
pub fn generate_all(rules: &[Box<dyn GenRule>], constraints: &[Constraint]) -> Vec<Misconfig> {
    let mut out = Vec::new();
    for c in constraints {
        for r in rules {
            for mut m in r.generate(c) {
                m.origin = (c.in_function.clone(), c.span);
                out.push(m);
            }
        }
    }
    out
}

// --- Basic type -------------------------------------------------------------

struct BasicTypeRule;

impl GenRule for BasicTypeRule {
    fn name(&self) -> &'static str {
        "basic-type"
    }

    fn generate(&self, c: &Constraint) -> Vec<Misconfig> {
        let ConstraintKind::BasicType(bt) = &c.kind else {
            return Vec::new();
        };
        let p = c.param.as_str();
        match bt {
            BasicType::Int { bits: 32, .. } => vec![
                Misconfig::new(
                    p,
                    "not_a_number",
                    "non-numeric value for integer",
                    "basic-type",
                ),
                // Figure 5(a): a value overflowing 32 bits.
                Misconfig::new(
                    p,
                    "9000000000",
                    "value overflowing a 32-bit integer",
                    "basic-type",
                ),
                // Figure 5(a): unit suffix on a plain integer.
                Misconfig::new(p, "9G", "unit suffix on a plain integer", "basic-type"),
            ],
            BasicType::Int { .. } => vec![
                Misconfig::new(
                    p,
                    "not_a_number",
                    "non-numeric value for integer",
                    "basic-type",
                ),
                Misconfig::new(p, "12half", "trailing garbage after number", "basic-type"),
            ],
            BasicType::Float { .. } => vec![Misconfig::new(
                p,
                "fast",
                "non-numeric value for float",
                "basic-type",
            )],
            BasicType::Bool => vec![Misconfig::new(
                p,
                "maybe",
                "non-boolean word for boolean",
                "basic-type",
            )],
            BasicType::Str | BasicType::Enum => Vec::new(),
        }
    }
}

// --- Semantic type -----------------------------------------------------------

struct SemanticTypeRule;

impl GenRule for SemanticTypeRule {
    fn name(&self) -> &'static str {
        "semantic-type"
    }

    fn generate(&self, c: &Constraint) -> Vec<Misconfig> {
        let ConstraintKind::SemanticType(st) = &c.kind else {
            return Vec::new();
        };
        let p = c.param.as_str();
        match st {
            SemType::FilePath => vec![
                // Figure 5(b): a directory where a file is expected.
                Misconfig::new(
                    p,
                    "/etc",
                    "directory path for a FILE parameter",
                    "semantic-type",
                ),
                Misconfig::new(p, "/no/such/file", "nonexistent file path", "semantic-type"),
            ],
            SemType::DirPath => vec![
                Misconfig::new(
                    p,
                    "/etc/passwd",
                    "file path for a DIR parameter",
                    "semantic-type",
                ),
                Misconfig::new(p, "/no/such/dir", "nonexistent directory", "semantic-type"),
            ],
            SemType::Port => vec![
                // Figure 5(c): an occupied port (the harness occupies 80).
                Misconfig::new(p, "80", "already-occupied port", "semantic-type"),
                Misconfig::new(p, "70000", "port outside the 16-bit range", "semantic-type"),
                Misconfig::new(p, "0", "port zero", "semantic-type"),
            ],
            SemType::IpAddr => vec![
                Misconfig::new(p, "999.888.1.1", "out-of-range IP octets", "semantic-type"),
                Misconfig::new(p, "not-an-ip", "malformed IP address", "semantic-type"),
            ],
            SemType::Hostname => vec![Misconfig::new(
                p,
                "no-such-host.invalid",
                "unresolvable host name",
                "semantic-type",
            )],
            SemType::UserName => vec![Misconfig::new(
                p,
                "no_such_user",
                "unknown user name",
                "semantic-type",
            )],
            SemType::GroupName => vec![Misconfig::new(
                p,
                "no_such_group",
                "unknown group name",
                "semantic-type",
            )],
            SemType::Time(_) => vec![
                Misconfig::new(p, "-5", "negative time value", "semantic-type"),
                Misconfig::new(p, "999999999", "absurdly large time value", "semantic-type"),
            ],
            SemType::Size(_) => vec![
                Misconfig::new(p, "9000000000", "size overflowing 32 bits", "semantic-type"),
                // Figure 5(a)/7(d): unit mismatch.
                Misconfig::new(
                    p,
                    "512MB",
                    "unit suffix the parser may ignore",
                    "semantic-type",
                ),
            ],
            SemType::Permission => vec![Misconfig::new(
                p,
                "999",
                "invalid permission mask",
                "semantic-type",
            )],
        }
    }
}

// --- Data range ---------------------------------------------------------------

struct RangeRule;

impl GenRule for RangeRule {
    fn name(&self) -> &'static str {
        "range"
    }

    fn generate(&self, c: &Constraint) -> Vec<Misconfig> {
        let p = c.param.as_str();
        match &c.kind {
            ConstraintKind::Range(r) => r
                .invalid_samples()
                .into_iter()
                .map(|v| {
                    Misconfig::new(
                        p,
                        v.to_string(),
                        format!("out-of-range value {v}"),
                        "data-range",
                    )
                })
                .collect(),
            ConstraintKind::EnumRange(e) => {
                let mut out = vec![Misconfig::new(
                    p,
                    "__invalid__",
                    "value outside the accepted set",
                    "data-range",
                )];
                // Case-flip a valid word: exposes case-sensitivity traps
                // (the iSCSI initiator-name failure of Figure 1).
                if !e.case_insensitive {
                    if let Some(alt) = e.alternatives.iter().find(|a| a.valid) {
                        if let EnumValue::Str(s) = &alt.value {
                            let flipped = flip_case(s);
                            if &flipped != s {
                                out.push(Misconfig::new(
                                    p,
                                    flipped,
                                    "case-flipped variant of a valid word",
                                    "data-range",
                                ));
                            }
                        }
                    }
                }
                // An integer outside the switch arms.
                let max_int = e
                    .alternatives
                    .iter()
                    .filter_map(|a| match &a.value {
                        EnumValue::Int(v) => Some(*v),
                        _ => None,
                    })
                    .max();
                if let Some(m) = max_int {
                    out.push(Misconfig::new(
                        p,
                        (m + 1).to_string(),
                        "integer outside the accepted alternatives",
                        "data-range",
                    ));
                    // Only keep integer-flavoured errors for switch ranges.
                    out.retain(|mc| mc.value != "__invalid__");
                }
                out
            }
            _ => Vec::new(),
        }
    }
}

fn flip_case(s: &str) -> String {
    if s.chars().any(|c| c.is_ascii_lowercase()) {
        s.to_uppercase()
    } else {
        s.to_lowercase()
    }
}

// --- Control dependency ----------------------------------------------------------

struct ControlDepRule;

impl GenRule for ControlDepRule {
    fn name(&self) -> &'static str {
        "control-dep"
    }

    fn generate(&self, c: &Constraint) -> Vec<Misconfig> {
        let ConstraintKind::ControlDep(d) = &c.kind else {
            return Vec::new();
        };
        // Make (P ⋄ V) false while setting Q to a non-default value
        // (Figure 5e: fsync=off with commit_siblings=5). Boolean
        // controllers expect word values, so zero is spelled "off".
        let controller_value = falsify(d.op, d.value);
        let rendered = if controller_value == 0 {
            "off".to_string()
        } else {
            controller_value.to_string()
        };
        let mut m = Misconfig::new(
            &d.dependent,
            "5",
            format!(
                "setting \"{}\" while its controller \"{}\" disables it",
                d.dependent, d.controller
            ),
            "control-dep",
        );
        m.also_set.push((d.controller.clone(), rendered));
        vec![m]
    }
}

/// A value of P that makes `P ⋄ V` false.
fn falsify(op: CmpOp, v: i64) -> i64 {
    match op {
        CmpOp::Ne => v,
        CmpOp::Eq => v + 1,
        CmpOp::Gt | CmpOp::Ge => v - 1,
        CmpOp::Lt | CmpOp::Le => v + 1,
    }
}

// --- Value relationship -------------------------------------------------------------

struct ValueRelRule;

impl GenRule for ValueRelRule {
    fn name(&self) -> &'static str {
        "value-rel"
    }

    fn generate(&self, c: &Constraint) -> Vec<Misconfig> {
        let ConstraintKind::ValueRel(r) = &c.kind else {
            return Vec::new();
        };
        // Violate the relation with a concrete pair (Figure 5f:
        // min=25, max=10).
        let (lhs_v, rhs_v) = match r.op {
            CmpOp::Lt | CmpOp::Le => (25, 10),
            CmpOp::Gt | CmpOp::Ge => (10, 25),
            CmpOp::Eq => (10, 25),
            CmpOp::Ne => (10, 10),
        };
        let mut m = Misconfig::new(
            &r.lhs,
            lhs_v.to_string(),
            format!("violating \"{}\" {} \"{}\"", r.lhs, r.op, r.rhs),
            "value-rel",
        );
        m.also_set.push((r.rhs.clone(), rhs_v.to_string()));
        vec![m]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spex_core::constraint::{
        ControlDep, EnumAlternative, EnumRange, NumericRange, RangeSegment, SizeUnit, ValueRel,
    };
    use spex_lang::diag::Span;

    fn c(param: &str, kind: ConstraintKind) -> Constraint {
        Constraint {
            param: param.into(),
            kind,
            in_function: String::new(),
            span: Span::unknown(),
        }
    }

    #[test]
    fn basic_type_int32_includes_overflow_and_unit() {
        let rules = standard_rules();
        let cs = vec![c(
            "log.filesize",
            ConstraintKind::BasicType(BasicType::Int {
                bits: 32,
                signed: true,
            }),
        )];
        let ms = generate_all(&rules, &cs);
        let values: Vec<&str> = ms.iter().map(|m| m.value.as_str()).collect();
        assert!(values.contains(&"9000000000"), "overflow case");
        assert!(values.contains(&"9G"), "unit-suffix case");
    }

    #[test]
    fn file_semantic_type_generates_directory() {
        let rules = standard_rules();
        let cs = vec![c(
            "ft_stopword_file",
            ConstraintKind::SemanticType(SemType::FilePath),
        )];
        let ms = generate_all(&rules, &cs);
        assert!(ms.iter().any(|m| m.value == "/etc"), "directory for FILE");
        assert!(ms.iter().any(|m| m.value == "/no/such/file"));
    }

    #[test]
    fn port_semantic_type_generates_occupied_and_oob() {
        let rules = standard_rules();
        let cs = vec![c("udp_port", ConstraintKind::SemanticType(SemType::Port))];
        let ms = generate_all(&rules, &cs);
        let values: Vec<&str> = ms.iter().map(|m| m.value.as_str()).collect();
        assert!(values.contains(&"80"));
        assert!(values.contains(&"70000"));
    }

    #[test]
    fn range_rule_samples_every_invalid_segment() {
        let rules = standard_rules();
        let range = NumericRange {
            cutpoints: vec![4, 255],
            segments: vec![
                RangeSegment {
                    lo: None,
                    hi: Some(3),
                    valid: false,
                },
                RangeSegment {
                    lo: Some(4),
                    hi: Some(255),
                    valid: true,
                },
                RangeSegment {
                    lo: Some(256),
                    hi: None,
                    valid: false,
                },
            ],
        };
        let cs = vec![c("index_intlen", ConstraintKind::Range(range.clone()))];
        let ms = generate_all(&rules, &cs);
        assert_eq!(ms.len(), 2);
        for m in &ms {
            let v: i64 = m.value.parse().unwrap();
            assert!(!range.is_valid(v), "{v} must be invalid");
        }
    }

    #[test]
    fn enum_rule_flips_case_for_sensitive_params() {
        let rules = standard_rules();
        let e = EnumRange {
            alternatives: vec![EnumAlternative {
                value: EnumValue::Str("on".into()),
                valid: true,
            }],
            unmatched_is_error: false,
            unmatched_overwrites: true,
            case_insensitive: false,
        };
        let cs = vec![c("icp_hit_stale", ConstraintKind::EnumRange(e))];
        let ms = generate_all(&rules, &cs);
        assert!(ms.iter().any(|m| m.value == "ON"), "case-flipped variant");
    }

    #[test]
    fn control_dep_rule_sets_both_params() {
        let rules = standard_rules();
        let d = ControlDep {
            controller: "fsync".into(),
            value: 0,
            op: CmpOp::Ne,
            dependent: "commit_siblings".into(),
            confidence: 1.0,
        };
        let cs = vec![c("commit_siblings", ConstraintKind::ControlDep(d))];
        let ms = generate_all(&rules, &cs);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].param, "commit_siblings");
        // Zero controllers are rendered as the word "off" so boolean
        // parsers accept the co-setting.
        assert_eq!(
            ms[0].also_set,
            vec![("fsync".to_string(), "off".to_string())]
        );
    }

    #[test]
    fn value_rel_rule_produces_violating_pair() {
        let rules = standard_rules();
        let r = ValueRel {
            lhs: "ft_min_word_len".into(),
            op: CmpOp::Lt,
            rhs: "ft_max_word_len".into(),
        };
        let cs = vec![c("ft_min_word_len", ConstraintKind::ValueRel(r))];
        let ms = generate_all(&rules, &cs);
        assert_eq!(ms.len(), 1);
        let lhs: i64 = ms[0].value.parse().unwrap();
        let rhs: i64 = ms[0].also_set[0].1.parse().unwrap();
        assert!(lhs >= rhs, "pair must violate lhs < rhs");
    }

    #[test]
    fn falsify_table() {
        assert!(!CmpOp::Ne.eval(falsify(CmpOp::Ne, 0), 0));
        assert!(!CmpOp::Eq.eval(falsify(CmpOp::Eq, 5), 5));
        assert!(!CmpOp::Gt.eval(falsify(CmpOp::Gt, 5), 5));
        assert!(!CmpOp::Le.eval(falsify(CmpOp::Le, 5), 5));
    }

    #[test]
    fn semantic_size_generates_unit_suffix() {
        let rules = standard_rules();
        let cs = vec![c(
            "pcs.size",
            ConstraintKind::SemanticType(SemType::Size(SizeUnit::B)),
        )];
        let ms = generate_all(&rules, &cs);
        assert!(ms.iter().any(|m| m.value == "512MB"));
    }
}
