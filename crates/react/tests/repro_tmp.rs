use spex_core::{annotations::Annotation, Spex};
use spex_react::{classify, ReactionClass, SinkKind};

#[test]
fn undominated_divisor_with_unsafe_parse_and_check() {
    let src = r#"
        char* raw = "100";
        int flag = 0;
        struct opt { char* name; char* var; };
        struct opt options[] = { { "max_ranges", &raw } };
        void apply() {
            int v = atoi(raw);
            if (flag) {
                if (v > 16) { fprintf(stderr, "bad"); exit(1); }
            }
            int y = 100 / v;
            listen(0, y);
        }
    "#;
    let p = spex_lang::parse_program(src).unwrap();
    let m = spex_ir::lower_program(&p).unwrap();
    let anns =
        Annotation::parse("{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }").unwrap();
    let a = Spex::analyze(m, &anns);
    let r = a.param("max_ranges").unwrap();
    let f = classify(&a.am, r);
    eprintln!("class = {:?}, checks = {}, sinks = {:?}", f.class, f.checks,
        f.sinks.iter().map(|s| s.kind).collect::<Vec<_>>());
    // The divisor sink is NOT dominated by the check (the check sits
    // behind `if (flag)`), so this must be late-detection.
    assert!(f.sinks.iter().any(|s| s.kind == SinkKind::Divisor));
    assert!(f.checks > 0, "the guarded comparison must count as a check");
    assert_eq!(f.class, ReactionClass::LateDetection);
}
