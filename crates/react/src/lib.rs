//! `spex-react` — static reaction analysis.
//!
//! SPEX-INJ (§3.1 of the paper) finds misconfiguration *vulnerabilities* —
//! silent ignores, late crashes, missing messages — by actually executing
//! corrupted configurations. That is the accuracy gold standard, but every
//! verdict costs a VM run. This crate predicts the same taxonomy statically:
//! for each configuration parameter it walks the taint slice computed by
//! `spex-dataflow`, finds the validation branches guarding the value, finds
//! the dangerous sinks the value flows into, and classifies the *reaction
//! path* the system would take on an invalid value — in microseconds, with
//! no injection run at all.
//!
//! The four verdicts map onto the stable `SPEX-V` diagnostic-code family:
//!
//! | Code | [`ReactionClass`] | Meaning |
//! |------|-------------------|---------|
//! | `SPEX-V001` | [`CheckedWithMessage`](ReactionClass::CheckedWithMessage) | a validation branch dominates the uses and its failure arm exits, returns an error, or logs before falling back |
//! | `SPEX-V002` | [`SilentFallback`](ReactionClass::SilentFallback) | the failure arm overwrites the value with a default and emits nothing |
//! | `SPEX-V003` | [`LateDetection`](ReactionClass::LateDetection) | the value reaches a dangerous sink (unsafe parse API, divisor, allocation size, sleep duration, array index, loop bound) before any dominating check |
//! | `SPEX-V004` | [`ReactUnchecked`](ReactionClass::Unchecked) | no validation branch guards the parameter at all |
//!
//! Predictions are cross-validated against observed SPEX-INJ outcomes in
//! the repository's `tests/cross_validation.rs` snapshot.
//!
//! # Example
//!
//! ```
//! use spex_core::{annotations::Annotation, Spex};
//! use spex_react::{classify_analysis, ReactionClass};
//!
//! let src = r#"
//!     int threads = 4;
//!     struct opt { char* name; int* var; };
//!     struct opt options[] = { { "threads", &threads } };
//!     void startup() {
//!         if (threads > 16) { fprintf(stderr, "bad threads"); exit(1); }
//!         listen(0, threads);
//!     }
//! "#;
//! let program = spex_lang::parse_program(src).unwrap();
//! let module = spex_ir::lower_program(&program).unwrap();
//! let anns =
//!     Annotation::parse("{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }").unwrap();
//! let analysis = Spex::analyze(module, &anns);
//! let findings = classify_analysis(&analysis);
//! assert_eq!(findings[0].class, ReactionClass::CheckedWithMessage);
//! ```

#![deny(missing_docs)]

use spex_core::constraint::DiagCode;
use spex_core::infer::branch::{branch_sides, classify_region, BranchBehavior};
use spex_core::infer::{ParamReport, SpexAnalysis};
use spex_dataflow::{AnalyzedModule, ModuleSummaries, ReturnTransfer, TaintResult};
use spex_ir::{BlockId, Callee, FuncId, Instr, PlaceElem, Terminator, ValueId};
use spex_lang::ast::BinOp;
use spex_lang::builtins::Builtin;
use spex_lang::diag::Span;
use std::fmt;

/// The predicted reaction path for an invalid value of one parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ReactionClass {
    /// A validation branch guards the value and its failure arm reaches a
    /// message-emitting or aborting call (or propagates an error return):
    /// the desired reaction, pinpointed and early.
    CheckedWithMessage,
    /// The failure arm of the validation branch overwrites the value with
    /// a default and emits nothing — the configured value is silently
    /// overruled (the paper's "silent violation").
    SilentFallback,
    /// The value flows into a dangerous sink — unsafe parse API, divisor,
    /// allocation size, sleep duration, array index, loop bound — before
    /// any dominating check: an invalid value surfaces late, as a crash,
    /// hang or corruption, if it surfaces at all.
    LateDetection,
    /// No validation branch guards the parameter at all; an invalid value
    /// silently changes behaviour.
    Unchecked,
}

impl ReactionClass {
    /// Every class, in code order (`SPEX-V001..V004`).
    pub const ALL: [ReactionClass; 4] = [
        ReactionClass::CheckedWithMessage,
        ReactionClass::SilentFallback,
        ReactionClass::LateDetection,
        ReactionClass::Unchecked,
    ];

    /// The stable diagnostic code of this verdict.
    pub fn code(self) -> DiagCode {
        match self {
            ReactionClass::CheckedWithMessage => DiagCode::ReactChecked,
            ReactionClass::SilentFallback => DiagCode::ReactSilentFallback,
            ReactionClass::LateDetection => DiagCode::ReactLateDetection,
            ReactionClass::Unchecked => DiagCode::ReactUnchecked,
        }
    }

    /// Stable kebab-case name (the vocabulary of the paper's §3.1 table).
    pub fn as_str(self) -> &'static str {
        match self {
            ReactionClass::CheckedWithMessage => "checked-with-message",
            ReactionClass::SilentFallback => "silent-fallback",
            ReactionClass::LateDetection => "late-detection",
            ReactionClass::Unchecked => "unchecked",
        }
    }

    /// Whether this prediction marks the parameter as a misconfiguration
    /// vulnerability (everything but a checked-with-message reaction).
    pub fn is_vulnerability(self) -> bool {
        self != ReactionClass::CheckedWithMessage
    }
}

impl fmt::Display for ReactionClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A kind of dangerous sink (§3.2's error-prone uses, plus the classic
/// crash sites).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SinkKind {
    /// An unsafe transformation API (`atoi`, `sscanf`, ...) that cannot
    /// report a malformed value.
    UnsafeParse,
    /// The right-hand side of a division or modulo.
    Divisor,
    /// The size argument of an allocation call.
    AllocationSize,
    /// The duration argument of `sleep`/`usleep`/`alarm`.
    SleepDuration,
    /// A dynamic array index.
    ArrayIndex,
    /// The bound of a loop (a tainted comparison deciding a back edge).
    LoopBound,
}

impl SinkKind {
    /// Stable kebab-case name.
    pub fn as_str(self) -> &'static str {
        match self {
            SinkKind::UnsafeParse => "unsafe-parse",
            SinkKind::Divisor => "divisor",
            SinkKind::AllocationSize => "allocation-size",
            SinkKind::SleepDuration => "sleep-duration",
            SinkKind::ArrayIndex => "array-index",
            SinkKind::LoopBound => "loop-bound",
        }
    }
}

impl fmt::Display for SinkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One dangerous sink the parameter's value reaches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sink {
    /// What kind of sink.
    pub kind: SinkKind,
    /// Containing function.
    pub in_function: String,
    /// Source location of the sink.
    pub span: Span,
    fid: FuncId,
    block: BlockId,
}

/// One validation branch guarding the parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Check {
    /// What the failure arm does.
    behavior: BranchBehavior,
    in_function: String,
    span: Span,
    fid: FuncId,
    block: BlockId,
}

/// Strength order for picking the decisive check: exits beat error
/// returns beat logged resets beat silent resets.
fn behavior_rank(b: &BranchBehavior) -> u8 {
    match b {
        BranchBehavior::Exit => 4,
        BranchBehavior::ErrorReturn => 3,
        BranchBehavior::Reset { logged: true, .. } => 2,
        BranchBehavior::Reset { logged: false, .. } => 1,
        BranchBehavior::Normal => 0,
    }
}

/// The static verdict for one parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReactionFinding {
    /// The parameter.
    pub param: String,
    /// The predicted reaction class.
    pub class: ReactionClass,
    /// Function holding the decisive evidence (the strongest check, the
    /// first undominated sink, or empty for unchecked parameters with no
    /// anchor).
    pub in_function: String,
    /// Source location of the decisive evidence (the parameter's
    /// declaration for unchecked parameters).
    pub span: Span,
    /// Human explanation of the verdict.
    pub detail: String,
    /// Every dangerous sink the value reaches (dominated ones included).
    pub sinks: Vec<Sink>,
    /// How many validation branches guard the value.
    pub checks: usize,
}

impl ReactionFinding {
    /// The stable diagnostic code of this finding.
    pub fn code(&self) -> DiagCode {
        self.class.code()
    }
}

impl fmt::Display for ReactionFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] \"{}\": {}", self.code(), self.param, self.detail)
    }
}

/// Finds every validation branch guarding the parameter: a comparison (or
/// string-comparison call) on the value's flow that feeds a conditional
/// branch with at least one invalid arm, plus `switch` dispatches on the
/// value whose default arm is invalid.
fn find_checks(am: &AnalyzedModule, taint: &TaintResult) -> Vec<Check> {
    let mut checks = Vec::new();
    for fid in taint.touched_functions() {
        let func = am.module.func(fid);
        for (b, _, instr, span) in func.iter_instrs() {
            let cond: Option<ValueId> = match instr {
                Instr::Bin { dst, op, lhs, rhs }
                    if op.is_comparison()
                        && (taint.is_tainted(fid, *lhs) || taint.is_tainted(fid, *rhs)) =>
                {
                    Some(*dst)
                }
                // String validation goes through comparison builtins whose
                // result is not itself tainted (`strcmp(value, "on")`);
                // `branch_sides` follows the `== 0` wrapper and flips.
                Instr::Call {
                    callee: Callee::Builtin(bi),
                    args,
                    dst: Some(d),
                } if bi.is_string_comparison()
                    && args.iter().any(|a| taint.is_tainted(fid, *a)) =>
                {
                    Some(*d)
                }
                _ => None,
            };
            let Some(cond) = cond else { continue };
            let Some((t_bb, e_bb)) = branch_sides(am, fid, cond) else {
                continue;
            };
            let t_beh = classify_region(am, fid, t_bb, taint);
            let e_beh = classify_region(am, fid, e_bb, taint);
            let behavior = if behavior_rank(&t_beh) >= behavior_rank(&e_beh) {
                t_beh
            } else {
                e_beh
            };
            if behavior.is_invalid() {
                checks.push(Check {
                    behavior,
                    in_function: func.name.clone(),
                    span,
                    fid,
                    block: b,
                });
            }
        }
        // A `switch` on the value is a dispatch-style validation when its
        // default arm rejects or resets.
        for (bi, blk) in func.blocks.iter().enumerate() {
            if let Terminator::Switch { value, default, .. } = &blk.term.0 {
                if taint.is_tainted(fid, *value) {
                    let behavior = classify_region(am, fid, *default, taint);
                    if behavior.is_invalid() {
                        checks.push(Check {
                            behavior,
                            in_function: func.name.clone(),
                            span: blk.term.1,
                            fid,
                            block: BlockId(bi as u32),
                        });
                    }
                }
            }
        }
    }
    checks
}

/// Finds the validation branches whose comparison lives in a *callee*: the
/// caller branches on the result of a summarised predicate helper
/// (`if (!valid_port(port)) exit(1);`). The helper's own comparisons feed
/// its return value, not a branch, so intraprocedural [`find_checks`] sees
/// nothing there — the check summary is what turns such parameters from
/// unchecked (`SPEX-V004`) into checked (`SPEX-V001`).
fn find_summary_checks(
    am: &AnalyzedModule,
    summaries: &ModuleSummaries,
    taint: &TaintResult,
) -> Vec<Check> {
    let mut checks = Vec::new();
    for fid in taint.touched_functions() {
        let func = am.module.func(fid);
        for (b, _, instr, span) in func.iter_instrs() {
            let Instr::Call {
                dst: Some(dst),
                callee: Callee::Func(g),
                args,
            } = instr
            else {
                continue;
            };
            let Some(ReturnTransfer::Predicate { param, .. }) = &summaries.get(*g).ret else {
                continue;
            };
            let Some(&arg) = args.get(*param as usize) else {
                continue;
            };
            if !taint.is_tainted(fid, arg) {
                continue;
            }
            let Some((t_bb, e_bb)) = branch_sides(am, fid, *dst) else {
                continue;
            };
            let t_beh = classify_region(am, fid, t_bb, taint);
            let e_beh = classify_region(am, fid, e_bb, taint);
            let behavior = if behavior_rank(&t_beh) >= behavior_rank(&e_beh) {
                t_beh
            } else {
                e_beh
            };
            if behavior.is_invalid() {
                checks.push(Check {
                    behavior,
                    in_function: func.name.clone(),
                    span,
                    fid,
                    block: b,
                });
            }
        }
    }
    checks
}

/// Finds every dangerous sink the parameter's value reaches.
fn find_sinks(am: &AnalyzedModule, report: &ParamReport) -> Vec<Sink> {
    let taint = &report.taint;
    let mut sinks = Vec::new();
    for (bi, in_function, span) in report
        .evidence
        .unsafe_apis
        .iter()
        .map(|(b, f, s)| (*b, f.clone(), *s))
    {
        let _ = bi;
        // The raw string must be parsed before any numeric check can
        // exist, so unsafe-parse sinks are recorded without a block: they
        // are never dominated.
        sinks.push(Sink {
            kind: SinkKind::UnsafeParse,
            in_function,
            span,
            fid: FuncId(u32::MAX),
            block: BlockId(u32::MAX),
        });
    }
    for fid in taint.touched_functions() {
        let func = am.module.func(fid);
        for (b, _, instr, span) in func.iter_instrs() {
            let kind = match instr {
                Instr::Bin {
                    op: BinOp::Div | BinOp::Rem,
                    rhs,
                    ..
                } if taint.is_tainted(fid, *rhs) => Some(SinkKind::Divisor),
                Instr::Call {
                    callee: Callee::Builtin(Builtin::Malloc | Builtin::Calloc),
                    args,
                    ..
                } if args.iter().any(|a| taint.is_tainted(fid, *a)) => {
                    Some(SinkKind::AllocationSize)
                }
                Instr::Call {
                    callee: Callee::Builtin(Builtin::Sleep | Builtin::Usleep | Builtin::Alarm),
                    args,
                    ..
                } if args.iter().any(|a| taint.is_tainted(fid, *a)) => {
                    Some(SinkKind::SleepDuration)
                }
                Instr::Load { place, .. } | Instr::Store { place, .. }
                    if place.elems.iter().any(
                        |e| matches!(e, PlaceElem::IndexValue(v) if taint.is_tainted(fid, *v)),
                    ) =>
                {
                    Some(SinkKind::ArrayIndex)
                }
                _ => None,
            };
            if let Some(kind) = kind {
                sinks.push(Sink {
                    kind,
                    in_function: func.name.clone(),
                    span,
                    fid,
                    block: b,
                });
            }
        }
        // Loop bounds: a tainted comparison deciding a conditional branch
        // one of whose targets is a loop header (the target dominates the
        // branching block — a back edge).
        let dom = &am.doms[fid.index()];
        for (bi, blk) in func.blocks.iter().enumerate() {
            let b = BlockId(bi as u32);
            if let Terminator::CondBr {
                cond,
                then_bb,
                else_bb,
            } = &blk.term.0
            {
                if taint.is_tainted(fid, *cond)
                    && [*then_bb, *else_bb]
                        .iter()
                        .any(|t| *t != b && dom.dominates(*t, b))
                {
                    sinks.push(Sink {
                        kind: SinkKind::LoopBound,
                        in_function: func.name.clone(),
                        span: blk.term.1,
                        fid,
                        block: b,
                    });
                }
            }
        }
    }
    sinks
}

/// Whether any check dominates the sink. Within one function this is
/// dominator-tree dominance of the check's block over the sink's (a sink
/// sharing the check's own block runs before the branch takes effect, so
/// it does not count). Across functions the check is credited: the
/// subject systems validate in their config-dispatch path, which runs
/// before any startup use.
fn sink_dominated(am: &AnalyzedModule, checks: &[Check], sink: &Sink) -> bool {
    if sink.kind == SinkKind::UnsafeParse {
        return false;
    }
    checks.iter().any(|c| {
        if c.fid != sink.fid {
            return true;
        }
        c.block != sink.block && am.doms[c.fid.index()].dominates(c.block, sink.block)
    })
}

/// Classifies the reaction path of one parameter.
///
/// The verdict, in priority order: a dangerous sink no check dominates is
/// [`LateDetection`](ReactionClass::LateDetection); otherwise the
/// strongest validation branch decides between
/// [`CheckedWithMessage`](ReactionClass::CheckedWithMessage) (exit, error
/// return, or a logged fallback) and
/// [`SilentFallback`](ReactionClass::SilentFallback) (an unlogged reset);
/// a parameter whose slice only parses through an unsafe API is
/// [`LateDetection`](ReactionClass::LateDetection); everything else is
/// [`Unchecked`](ReactionClass::Unchecked).
pub fn classify(am: &AnalyzedModule, report: &ParamReport) -> ReactionFinding {
    let (summaries, _) = ModuleSummaries::compute(am);
    classify_with_summaries(am, &summaries, report)
}

/// Like [`classify`], but consuming precomputed interprocedural function
/// summaries instead of deriving them on the spot — the form the cached
/// analysis pipeline uses ([`SpexAnalysis`] carries the summaries it
/// computed during inference).
pub fn classify_with_summaries(
    am: &AnalyzedModule,
    summaries: &ModuleSummaries,
    report: &ParamReport,
) -> ReactionFinding {
    let _span = spex_obs::span!("react.classify", param = report.param.name);
    let mut checks = find_checks(am, &report.taint);
    checks.extend(find_summary_checks(am, summaries, &report.taint));
    let sinks = find_sinks(am, report);
    spex_obs::counter("react.checks.found", checks.len() as u64);
    spex_obs::counter("react.sinks.found", sinks.len() as u64);

    let undominated = sinks
        .iter()
        .find(|s| !sink_dominated(am, &checks, s))
        // Unsafe parses only decide the verdict when nothing checks the
        // parsed value at all — a dominating-style check after the parse
        // still catches the bad *number*, just not a malformed string.
        .filter(|s| s.kind != SinkKind::UnsafeParse || checks.is_empty());

    let (class, in_function, span, detail) = if let Some(sink) = undominated {
        (
            ReactionClass::LateDetection,
            sink.in_function.clone(),
            sink.span,
            format!(
                "value reaches a {} sink in \"{}\" with no dominating check",
                sink.kind, sink.in_function
            ),
        )
    } else if let Some(best) = checks.iter().max_by_key(|c| behavior_rank(&c.behavior)) {
        match &best.behavior {
            BranchBehavior::Exit => (
                ReactionClass::CheckedWithMessage,
                best.in_function.clone(),
                best.span,
                format!(
                    "validation branch in \"{}\" aborts on failure",
                    best.in_function
                ),
            ),
            BranchBehavior::ErrorReturn => (
                ReactionClass::CheckedWithMessage,
                best.in_function.clone(),
                best.span,
                format!(
                    "validation branch in \"{}\" propagates an error return on failure",
                    best.in_function
                ),
            ),
            BranchBehavior::Reset { logged: true, .. } => (
                ReactionClass::CheckedWithMessage,
                best.in_function.clone(),
                best.span,
                format!(
                    "failure arm in \"{}\" falls back to a default, with a message",
                    best.in_function
                ),
            ),
            BranchBehavior::Reset { logged: false, .. } => (
                ReactionClass::SilentFallback,
                best.in_function.clone(),
                best.span,
                format!(
                    "failure arm in \"{}\" silently overwrites the value with a default",
                    best.in_function
                ),
            ),
            BranchBehavior::Normal => unreachable!("checks hold invalid behaviors only"),
        }
    } else {
        (
            ReactionClass::Unchecked,
            String::new(),
            report.param.decl_span,
            "no validation branch guards this parameter".to_string(),
        )
    };
    ReactionFinding {
        param: report.param.name.clone(),
        class,
        in_function,
        span,
        detail,
        sinks,
        checks: checks.len(),
    }
}

/// Classifies every non-stale parameter of an analysis, in report order.
///
/// Stale reports (parameters a scoped re-analysis skipped) carry no
/// evidence, so their previous findings remain authoritative — the
/// workspace layer caches and reuses them.
pub fn classify_analysis(analysis: &SpexAnalysis) -> Vec<ReactionFinding> {
    let _span = spex_obs::span("react.analysis");
    let findings: Vec<ReactionFinding> = analysis
        .reports
        .iter()
        .filter(|r| !r.stale)
        .map(|r| classify_with_summaries(&analysis.am, &analysis.summaries, r))
        .collect();
    spex_obs::counter("react.params.classified", findings.len() as u64);
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use spex_core::annotations::Annotation;
    use spex_core::Spex;

    const ANN: &str = "{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }";

    fn analyze(src: &str) -> SpexAnalysis {
        let p = spex_lang::parse_program(src).unwrap();
        let m = spex_ir::lower_program(&p).unwrap();
        let anns = Annotation::parse(ANN).unwrap();
        Spex::analyze(m, &anns)
    }

    fn class_of(src: &str, param: &str) -> ReactionClass {
        let a = analyze(src);
        let r = a.param(param).unwrap();
        classify(&a.am, r).class
    }

    #[test]
    fn exit_guard_is_checked_with_message() {
        let class = class_of(
            r#"
            int threads = 4;
            struct opt { char* name; int* var; };
            struct opt options[] = { { "threads", &threads } };
            void startup() {
                if (threads > 16) { fprintf(stderr, "bad"); exit(1); }
                listen(0, threads);
            }
            "#,
            "threads",
        );
        assert_eq!(class, ReactionClass::CheckedWithMessage);
    }

    #[test]
    fn silent_clamp_is_silent_fallback() {
        let class = class_of(
            r#"
            int intlen = 8;
            struct opt { char* name; int* var; };
            struct opt options[] = { { "intlen", &intlen } };
            void clamp() {
                if (intlen > 255) { intlen = 255; }
                listen(0, intlen);
            }
            "#,
            "intlen",
        );
        assert_eq!(class, ReactionClass::SilentFallback);
    }

    #[test]
    fn logged_clamp_is_checked() {
        let class = class_of(
            r#"
            int intlen = 8;
            struct opt { char* name; int* var; };
            struct opt options[] = { { "intlen", &intlen } };
            void clamp() {
                if (intlen > 255) {
                    fprintf(stderr, "intlen too large, using 255");
                    intlen = 255;
                }
                listen(0, intlen);
            }
            "#,
            "intlen",
        );
        assert_eq!(class, ReactionClass::CheckedWithMessage);
    }

    #[test]
    fn unguarded_sleep_is_late_detection() {
        let a = analyze(
            r#"
            int nap = 30;
            struct opt { char* name; int* var; };
            struct opt options[] = { { "nap", &nap } };
            void napper() { sleep(nap); }
            "#,
        );
        let f = classify(&a.am, a.param("nap").unwrap());
        assert_eq!(f.class, ReactionClass::LateDetection);
        assert_eq!(f.sinks.len(), 1);
        assert_eq!(f.sinks[0].kind, SinkKind::SleepDuration);
    }

    #[test]
    fn unguarded_dynamic_index_is_late_detection() {
        let a = analyze(
            r#"
            int slot = 0;
            int table[16];
            struct opt { char* name; int* var; };
            struct opt options[] = { { "slot", &slot } };
            void place() { table[slot] = 1; }
            "#,
        );
        let f = classify(&a.am, a.param("slot").unwrap());
        assert_eq!(f.class, ReactionClass::LateDetection);
        assert!(f.sinks.iter().any(|s| s.kind == SinkKind::ArrayIndex));
    }

    #[test]
    fn dominating_check_neutralises_the_sink() {
        let class = class_of(
            r#"
            int nap = 30;
            struct opt { char* name; int* var; };
            struct opt options[] = { { "nap", &nap } };
            void napper() {
                if (nap > 600) { fprintf(stderr, "bad nap"); exit(1); }
                sleep(nap);
            }
            "#,
            "nap",
        );
        assert_eq!(class, ReactionClass::CheckedWithMessage);
    }

    #[test]
    fn cross_function_check_is_credited() {
        // The subject systems validate in the config-dispatch path, which
        // runs before any startup use of the stored value.
        let class = class_of(
            r#"
            int nap = 30;
            struct opt { char* name; int* var; };
            struct opt options[] = { { "nap", &nap } };
            int dispatch() {
                if (nap > 600) { fprintf(stderr, "bad nap"); return -1; }
                return 0;
            }
            void napper() { sleep(nap); }
            "#,
            "nap",
        );
        assert_eq!(class, ReactionClass::CheckedWithMessage);
    }

    #[test]
    fn plain_use_is_unchecked() {
        let a = analyze(
            r#"
            int margin = 2;
            struct opt { char* name; int* var; };
            struct opt options[] = { { "margin", &margin } };
            void apply() { int m = margin + 1; listen(0, m); }
            "#,
        );
        let f = classify(&a.am, a.param("margin").unwrap());
        assert_eq!(f.class, ReactionClass::Unchecked);
        assert!(f.sinks.is_empty());
        assert_eq!(f.checks, 0);
    }

    #[test]
    fn string_comparison_guard_counts_as_check() {
        let class = class_of(
            r#"
            char* mode = "fast";
            struct opt { char* name; char* var; };
            struct opt options[] = { { "mode", &mode } };
            void pick() {
                if (strcmp(mode, "fast") != 0) {
                    fprintf(stderr, "unknown mode");
                    exit(1);
                }
                printf("ok");
            }
            "#,
            "mode",
        );
        assert_eq!(class, ReactionClass::CheckedWithMessage);
    }

    #[test]
    fn codes_round_trip_and_flag_vulnerabilities() {
        for class in ReactionClass::ALL {
            assert_eq!(DiagCode::parse(class.code().as_str()), Some(class.code()));
            assert_eq!(class.code().category(), "reaction");
        }
        assert!(!ReactionClass::CheckedWithMessage.is_vulnerability());
        assert!(ReactionClass::SilentFallback.is_vulnerability());
        assert!(ReactionClass::LateDetection.is_vulnerability());
        assert!(ReactionClass::Unchecked.is_vulnerability());
    }

    #[test]
    fn classify_analysis_skips_stale_reports() {
        let a = analyze(
            r#"
            int a_knob = 1;
            int b_knob = 2;
            struct opt { char* name; int* var; };
            struct opt options[] = { { "a_knob", &a_knob }, { "b_knob", &b_knob } };
            void go() { sleep(a_knob); sleep(b_knob); }
            "#,
        );
        assert_eq!(classify_analysis(&a).len(), 2);
    }
}
