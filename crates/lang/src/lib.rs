//! Mini-C front-end for the SPEX reproduction.
//!
//! The original SPEX consumes C/C++ compiled to LLVM IR by Clang. This crate
//! provides the equivalent front-end for a C-like mini-language in which the
//! configuration-handling code of the subject systems is written: a lexer, a
//! recursive-descent parser, an AST, and a small C-flavoured type system.
//!
//! The language supports exactly the constructs SPEX's pattern recognition
//! relies on: globals with (aggregate) initializers, structs, arrays,
//! pointers, function pointers, the usual statements (`if`/`while`/`for`/
//! `switch`), and calls to a registry of known library functions
//! ([`Builtin`]).
//!
//! # Examples
//!
//! ```
//! use spex_lang::parse_program;
//!
//! let src = r#"
//!     int listener_threads = 16;
//!     void set_threads(char *value) {
//!         listener_threads = atoi(value);
//!     }
//! "#;
//! let program = parse_program(src).unwrap();
//! assert_eq!(program.functions.len(), 1);
//! assert_eq!(program.globals.len(), 1);
//! ```

pub mod ast;
pub mod builtins;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod token;
pub mod types;

pub use ast::Program;
pub use builtins::Builtin;
pub use diag::{Diagnostic, Span};
pub use types::CType;

/// Parses mini-C source text into a [`Program`].
///
/// This is the main entry point of the crate. Returns the first diagnostic
/// encountered on malformed input.
pub fn parse_program(src: &str) -> Result<Program, Diagnostic> {
    let tokens = lexer::Lexer::new(src).lex()?;
    parser::Parser::new(tokens).parse_program()
}
