//! Abstract syntax tree for the mini-C language.

use crate::diag::Span;
use crate::types::CType;

/// A complete translation unit.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Struct type definitions, in declaration order.
    pub structs: Vec<StructDef>,
    /// Enum definitions (each variant has an explicit or implicit value).
    pub enums: Vec<EnumDef>,
    /// Global variable definitions.
    pub globals: Vec<GlobalDef>,
    /// Function definitions.
    pub functions: Vec<FunctionDef>,
}

impl Program {
    /// Looks up a struct definition by name.
    pub fn struct_def(&self, name: &str) -> Option<&StructDef> {
        self.structs.iter().find(|s| s.name == name)
    }

    /// Looks up a function definition by name.
    pub fn function(&self, name: &str) -> Option<&FunctionDef> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Looks up a global definition by name.
    pub fn global(&self, name: &str) -> Option<&GlobalDef> {
        self.globals.iter().find(|g| g.name == name)
    }
}

/// `struct name { fields };`
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Struct tag name.
    pub name: String,
    /// Ordered fields.
    pub fields: Vec<FieldDef>,
    /// Declaration site.
    pub span: Span,
}

impl StructDef {
    /// Index of the field called `name`.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }
}

/// One field of a struct.
#[derive(Debug, Clone)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: CType,
}

/// `enum name { A, B = 3, ... };`
#[derive(Debug, Clone)]
pub struct EnumDef {
    /// Enum tag name.
    pub name: String,
    /// Variant names with resolved integer values.
    pub variants: Vec<(String, i64)>,
    /// Declaration site.
    pub span: Span,
}

/// A global variable definition, possibly with an initializer.
#[derive(Debug, Clone)]
pub struct GlobalDef {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: CType,
    /// Optional initializer (constant expression or aggregate).
    pub init: Option<Initializer>,
    /// Declaration site.
    pub span: Span,
}

/// A global initializer: either a single constant expression or a brace-
/// enclosed aggregate (for arrays and structs).
#[derive(Debug, Clone)]
pub enum Initializer {
    /// Scalar initializer expression.
    Expr(Expr),
    /// `{ a, b, ... }` aggregate, possibly nested.
    List(Vec<Initializer>),
}

/// A function definition.
#[derive(Debug, Clone)]
pub struct FunctionDef {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: CType,
    /// Parameters in order.
    pub params: Vec<ParamDef>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Definition site.
    pub span: Span,
}

/// One function parameter.
#[derive(Debug, Clone)]
pub struct ParamDef {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: CType,
}

/// A statement.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// Expression evaluated for effect.
    Expr(Expr),
    /// Local variable declaration with optional initializer.
    VarDecl {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: CType,
        /// Optional initializer.
        init: Option<Expr>,
        /// Declaration site.
        span: Span,
    },
    /// `if (cond) then else otherwise`.
    If {
        /// Branch condition.
        cond: Expr,
        /// Then-arm.
        then_body: Vec<Stmt>,
        /// Else-arm (empty when absent).
        else_body: Vec<Stmt>,
        /// Site of the `if` keyword.
        span: Span,
    },
    /// `while (cond) body`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Site of the `while` keyword.
        span: Span,
    },
    /// `do body while (cond);`
    DoWhile {
        /// Loop body.
        body: Vec<Stmt>,
        /// Loop condition.
        cond: Expr,
        /// Site of the `do` keyword.
        span: Span,
    },
    /// `for (init; cond; step) body`.
    For {
        /// Optional init statement.
        init: Option<Box<Stmt>>,
        /// Optional condition (true when absent).
        cond: Option<Expr>,
        /// Optional step expression.
        step: Option<Expr>,
        /// Loop body.
        body: Vec<Stmt>,
        /// Site of the `for` keyword.
        span: Span,
    },
    /// `switch (scrutinee) { cases }`.
    Switch {
        /// Switched-on expression.
        scrutinee: Expr,
        /// Case arms; each may carry several labels.
        cases: Vec<SwitchCase>,
        /// Statements of the `default:` arm, if present.
        default: Option<Vec<Stmt>>,
        /// Site of the `switch` keyword.
        span: Span,
    },
    /// `break;`
    Break(Span),
    /// `continue;`
    Continue(Span),
    /// `return expr?;`
    Return(Option<Expr>, Span),
    /// `{ ... }` block.
    Block(Vec<Stmt>),
}

/// One `case` arm of a switch.
#[derive(Debug, Clone)]
pub struct SwitchCase {
    /// Constant labels that fall into this arm.
    pub labels: Vec<Expr>,
    /// Statements of the arm (fallthrough is not modelled; each arm is
    /// implicitly terminated).
    pub body: Vec<Stmt>,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
    LogicalAnd,
    LogicalOr,
}

impl BinOp {
    /// Whether this is a comparison producing a boolean.
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
    /// Bitwise complement.
    BitNot,
}

/// An expression, carrying its source location.
#[derive(Debug, Clone)]
pub struct Expr {
    /// Expression kind.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

impl Expr {
    /// Creates an expression node.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }

    /// Convenience constructor for integer literals in synthesized code.
    pub fn int(v: i64) -> Self {
        Expr::new(ExprKind::IntLit(v), Span::unknown())
    }
}

/// Expression kinds.
#[derive(Debug, Clone)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Floating-point literal.
    FloatLit(f64),
    /// String literal.
    StrLit(String),
    /// Character literal.
    CharLit(char),
    /// `NULL`.
    Null,
    /// `true` / `false`.
    BoolLit(bool),
    /// Variable reference (local, parameter, global, enum constant, or
    /// function name when used as a function pointer).
    Ident(String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Assignment; `op` is `None` for plain `=`, or the compound operator.
    Assign {
        /// Assignment target (lvalue).
        target: Box<Expr>,
        /// Compound operator, if any (`+=` carries [`BinOp::Add`]).
        op: Option<BinOp>,
        /// Right-hand side.
        value: Box<Expr>,
    },
    /// Function call; the callee is an expression to allow calls through
    /// function pointers stored in struct fields.
    Call {
        /// Callee expression (usually an identifier).
        callee: Box<Expr>,
        /// Arguments in order.
        args: Vec<Expr>,
    },
    /// Array indexing `base[idx]`.
    Index(Box<Expr>, Box<Expr>),
    /// Member access `base.field` or `base->field`.
    Member {
        /// Base expression.
        base: Box<Expr>,
        /// Field name.
        field: String,
        /// Whether `->` was used.
        arrow: bool,
    },
    /// C-style cast `(type) expr`.
    Cast(CType, Box<Expr>),
    /// Ternary conditional.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Address-of `&expr`.
    AddrOf(Box<Expr>),
    /// Dereference `*expr`.
    Deref(Box<Expr>),
    /// Post-increment/decrement; `inc` selects `++`.
    PostIncDec {
        /// Target lvalue.
        target: Box<Expr>,
        /// True for `++`.
        inc: bool,
    },
    /// `sizeof(type)` — evaluated to a constant size in bytes.
    Sizeof(CType),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_comparison_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(BinOp::Ne.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(!BinOp::LogicalAnd.is_comparison());
    }

    #[test]
    fn program_lookup_helpers() {
        let mut p = Program::default();
        p.structs.push(StructDef {
            name: "opt".into(),
            fields: vec![FieldDef {
                name: "name".into(),
                ty: CType::string(),
            }],
            span: Span::unknown(),
        });
        assert!(p.struct_def("opt").is_some());
        assert_eq!(p.struct_def("opt").unwrap().field_index("name"), Some(0));
        assert!(p.struct_def("missing").is_none());
        assert!(p.function("f").is_none());
    }
}
