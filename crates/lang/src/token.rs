//! Token definitions for the mini-C lexer.

use crate::diag::Span;
use std::fmt;

/// A lexical token kind.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Literals.
    /// Integer literal (decimal, hex `0x`, or octal `0`), value and whether a
    /// `L`/`LL` suffix was present.
    Int(i64, bool),
    /// Floating-point literal.
    Float(f64),
    /// String literal with escapes resolved.
    Str(String),
    /// Character literal.
    Char(char),
    /// Identifier or keyword candidate.
    Ident(String),

    // Keywords.
    KwInt,
    KwLong,
    KwShort,
    KwChar,
    KwBool,
    KwFloat,
    KwDouble,
    KwVoid,
    KwUnsigned,
    KwSigned,
    KwStruct,
    KwEnum,
    KwIf,
    KwElse,
    KwWhile,
    KwDo,
    KwFor,
    KwSwitch,
    KwCase,
    KwDefault,
    KwBreak,
    KwContinue,
    KwReturn,
    KwStatic,
    KwConst,
    KwExtern,
    KwSizeof,
    KwNull,
    KwTrue,
    KwFalse,

    // Punctuation and operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Colon,
    Question,
    Dot,
    Arrow,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    Ne,
    AmpAmp,
    PipePipe,
    Shl,
    Shr,
    Eq,
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    PercentEq,
    AmpEq,
    PipeEq,
    CaretEq,
    ShlEq,
    ShrEq,
    PlusPlus,
    MinusMinus,

    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TokenKind::*;
        match self {
            Int(v, _) => write!(f, "{v}"),
            Float(v) => write!(f, "{v}"),
            Str(s) => write!(f, "{s:?}"),
            Char(c) => write!(f, "'{c}'"),
            Ident(s) => write!(f, "{s}"),
            KwInt => write!(f, "int"),
            KwLong => write!(f, "long"),
            KwShort => write!(f, "short"),
            KwChar => write!(f, "char"),
            KwBool => write!(f, "bool"),
            KwFloat => write!(f, "float"),
            KwDouble => write!(f, "double"),
            KwVoid => write!(f, "void"),
            KwUnsigned => write!(f, "unsigned"),
            KwSigned => write!(f, "signed"),
            KwStruct => write!(f, "struct"),
            KwEnum => write!(f, "enum"),
            KwIf => write!(f, "if"),
            KwElse => write!(f, "else"),
            KwWhile => write!(f, "while"),
            KwDo => write!(f, "do"),
            KwFor => write!(f, "for"),
            KwSwitch => write!(f, "switch"),
            KwCase => write!(f, "case"),
            KwDefault => write!(f, "default"),
            KwBreak => write!(f, "break"),
            KwContinue => write!(f, "continue"),
            KwReturn => write!(f, "return"),
            KwStatic => write!(f, "static"),
            KwConst => write!(f, "const"),
            KwExtern => write!(f, "extern"),
            KwSizeof => write!(f, "sizeof"),
            KwNull => write!(f, "NULL"),
            KwTrue => write!(f, "true"),
            KwFalse => write!(f, "false"),
            LParen => write!(f, "("),
            RParen => write!(f, ")"),
            LBrace => write!(f, "{{"),
            RBrace => write!(f, "}}"),
            LBracket => write!(f, "["),
            RBracket => write!(f, "]"),
            Semi => write!(f, ";"),
            Comma => write!(f, ","),
            Colon => write!(f, ":"),
            Question => write!(f, "?"),
            Dot => write!(f, "."),
            Arrow => write!(f, "->"),
            Plus => write!(f, "+"),
            Minus => write!(f, "-"),
            Star => write!(f, "*"),
            Slash => write!(f, "/"),
            Percent => write!(f, "%"),
            Amp => write!(f, "&"),
            Pipe => write!(f, "|"),
            Caret => write!(f, "^"),
            Tilde => write!(f, "~"),
            Bang => write!(f, "!"),
            Lt => write!(f, "<"),
            Gt => write!(f, ">"),
            Le => write!(f, "<="),
            Ge => write!(f, ">="),
            EqEq => write!(f, "=="),
            Ne => write!(f, "!="),
            AmpAmp => write!(f, "&&"),
            PipePipe => write!(f, "||"),
            Shl => write!(f, "<<"),
            Shr => write!(f, ">>"),
            Eq => write!(f, "="),
            PlusEq => write!(f, "+="),
            MinusEq => write!(f, "-="),
            StarEq => write!(f, "*="),
            SlashEq => write!(f, "/="),
            PercentEq => write!(f, "%="),
            AmpEq => write!(f, "&="),
            PipeEq => write!(f, "|="),
            CaretEq => write!(f, "^="),
            ShlEq => write!(f, "<<="),
            ShrEq => write!(f, ">>="),
            PlusPlus => write!(f, "++"),
            MinusMinus => write!(f, "--"),
            Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where the token starts.
    pub span: Span,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

/// Maps an identifier to its keyword kind, if it is a keyword.
pub fn keyword(ident: &str) -> Option<TokenKind> {
    use TokenKind::*;
    Some(match ident {
        "int" => KwInt,
        "long" => KwLong,
        "short" => KwShort,
        "char" => KwChar,
        "bool" => KwBool,
        "float" => KwFloat,
        "double" => KwDouble,
        "void" => KwVoid,
        "unsigned" => KwUnsigned,
        "signed" => KwSigned,
        "struct" => KwStruct,
        "enum" => KwEnum,
        "if" => KwIf,
        "else" => KwElse,
        "while" => KwWhile,
        "do" => KwDo,
        "for" => KwFor,
        "switch" => KwSwitch,
        "case" => KwCase,
        "default" => KwDefault,
        "break" => KwBreak,
        "continue" => KwContinue,
        "return" => KwReturn,
        "static" => KwStatic,
        "const" => KwConst,
        "extern" => KwExtern,
        "sizeof" => KwSizeof,
        "NULL" => KwNull,
        "true" => KwTrue,
        "false" => KwFalse,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup() {
        assert_eq!(keyword("if"), Some(TokenKind::KwIf));
        assert_eq!(keyword("switch"), Some(TokenKind::KwSwitch));
        assert_eq!(keyword("listener_threads"), None);
    }

    #[test]
    fn display_round_trip_for_punct() {
        assert_eq!(TokenKind::Arrow.to_string(), "->");
        assert_eq!(TokenKind::ShlEq.to_string(), "<<=");
        assert_eq!(TokenKind::Int(42, false).to_string(), "42");
    }
}
