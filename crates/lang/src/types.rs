//! The C-flavoured type system of the mini language.

use std::fmt;

/// A C-like type.
///
/// Bit widths are explicit because SPEX reports basic-type constraints like
/// "32-bit integer" (Figure 3a of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CType {
    /// `void`.
    Void,
    /// `bool`.
    Bool,
    /// Integer with the given width in bits (8, 16, 32 or 64) and signedness.
    Int { bits: u8, signed: bool },
    /// Floating-point number of the given width (32 or 64).
    Float { bits: u8 },
    /// Pointer to another type; `char*` doubles as the string type.
    Ptr(Box<CType>),
    /// Fixed-size array.
    Array(Box<CType>, usize),
    /// Named struct type.
    Struct(String),
    /// Named enum type (represented as `int` at runtime).
    Enum(String),
    /// Pointer to a function (signature is not tracked at the type level).
    FuncPtr,
}

impl CType {
    /// The `int` type (32-bit signed).
    pub fn int() -> Self {
        CType::Int {
            bits: 32,
            signed: true,
        }
    }

    /// The `long` type (64-bit signed).
    pub fn long() -> Self {
        CType::Int {
            bits: 64,
            signed: true,
        }
    }

    /// The `char` type (8-bit signed).
    pub fn char_ty() -> Self {
        CType::Int {
            bits: 8,
            signed: true,
        }
    }

    /// The `char*` string type.
    pub fn string() -> Self {
        CType::Ptr(Box::new(Self::char_ty()))
    }

    /// The `double` type.
    pub fn double() -> Self {
        CType::Float { bits: 64 }
    }

    /// Whether this is `char*` (the string representation).
    pub fn is_string(&self) -> bool {
        matches!(self, CType::Ptr(inner) if **inner == CType::char_ty())
    }

    /// Whether this is any integer type.
    pub fn is_integer(&self) -> bool {
        matches!(self, CType::Int { .. } | CType::Bool | CType::Enum(_))
    }

    /// Whether this is a pointer type.
    pub fn is_pointer(&self) -> bool {
        matches!(self, CType::Ptr(_) | CType::FuncPtr)
    }

    /// Whether values of this type fit in a scalar machine register
    /// (everything except structs and arrays).
    pub fn is_scalar(&self) -> bool {
        !matches!(self, CType::Struct(_) | CType::Array(..))
    }
}

impl fmt::Display for CType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CType::Void => write!(f, "void"),
            CType::Bool => write!(f, "bool"),
            CType::Int { bits, signed } => {
                write!(f, "{}{}", if *signed { "i" } else { "u" }, bits)
            }
            CType::Float { bits } => write!(f, "f{bits}"),
            CType::Ptr(inner) if self.is_string() => {
                let _ = inner;
                write!(f, "char*")
            }
            CType::Ptr(inner) => write!(f, "{inner}*"),
            CType::Array(inner, n) => write!(f, "{inner}[{n}]"),
            CType::Struct(name) => write!(f, "struct {name}"),
            CType::Enum(name) => write!(f, "enum {name}"),
            CType::FuncPtr => write!(f, "fnptr"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_detection() {
        assert!(CType::string().is_string());
        assert!(!CType::Ptr(Box::new(CType::int())).is_string());
    }

    #[test]
    fn display_forms() {
        assert_eq!(CType::int().to_string(), "i32");
        assert_eq!(CType::string().to_string(), "char*");
        assert_eq!(CType::Struct("opt".into()).to_string(), "struct opt");
        assert_eq!(
            CType::Array(Box::new(CType::int()), 4).to_string(),
            "i32[4]"
        );
    }

    #[test]
    fn scalar_classification() {
        assert!(CType::int().is_scalar());
        assert!(CType::string().is_scalar());
        assert!(!CType::Struct("s".into()).is_scalar());
        assert!(!CType::Array(Box::new(CType::int()), 2).is_scalar());
    }

    #[test]
    fn integer_classification() {
        assert!(CType::Bool.is_integer());
        assert!(CType::Enum("e".into()).is_integer());
        assert!(!CType::double().is_integer());
    }
}
