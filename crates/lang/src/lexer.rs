//! Hand-written lexer for the mini-C language.

use crate::diag::{Diagnostic, Span};
use crate::token::{keyword, Token, TokenKind};

/// Converts source text into a token stream.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    /// Lexes the whole input, ending with an [`TokenKind::Eof`] token.
    pub fn lex(mut self) -> Result<Vec<Token>, Diagnostic> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let span = self.span();
            if self.at_end() {
                out.push(Token::new(TokenKind::Eof, span));
                return Ok(out);
            }
            let kind = self.next_token()?;
            out.push(Token::new(kind, span));
        }
    }

    fn span(&self) -> Span {
        Span::new(self.line, self.col)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.src.get(self.pos + 1).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        c
    }

    fn skip_trivia(&mut self) -> Result<(), Diagnostic> {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek2() == b'/' => {
                    while !self.at_end() && self.peek() != b'\n' {
                        self.bump();
                    }
                }
                b'/' if self.peek2() == b'*' => {
                    let start = self.span();
                    self.bump();
                    self.bump();
                    loop {
                        if self.at_end() {
                            return Err(Diagnostic::new(start, "unterminated block comment"));
                        }
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.bump();
                            self.bump();
                            break;
                        }
                        self.bump();
                    }
                }
                // Preprocessor-style lines are tolerated and skipped so that
                // excerpts of real C code can be pasted into subject systems.
                b'#' if self.col == 1 => {
                    while !self.at_end() && self.peek() != b'\n' {
                        self.bump();
                    }
                }
                _ => return Ok(()),
            }
            if self.at_end() {
                return Ok(());
            }
        }
    }

    fn next_token(&mut self) -> Result<TokenKind, Diagnostic> {
        let c = self.peek();
        match c {
            b'0'..=b'9' => self.lex_number(),
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => Ok(self.lex_ident()),
            b'"' => self.lex_string(),
            b'\'' => self.lex_char(),
            _ => self.lex_punct(),
        }
    }

    fn lex_ident(&mut self) -> TokenKind {
        let start = self.pos;
        while matches!(self.peek(), b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_') {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii ident");
        keyword(text).unwrap_or_else(|| TokenKind::Ident(text.to_string()))
    }

    fn lex_number(&mut self) -> Result<TokenKind, Diagnostic> {
        let span = self.span();
        let start = self.pos;
        if self.peek() == b'0' && (self.peek2() == b'x' || self.peek2() == b'X') {
            self.bump();
            self.bump();
            let hex_start = self.pos;
            while self.peek().is_ascii_hexdigit() {
                self.bump();
            }
            let text = std::str::from_utf8(&self.src[hex_start..self.pos]).expect("ascii");
            let value = i64::from_str_radix(text, 16)
                .map_err(|_| Diagnostic::new(span, format!("invalid hex literal 0x{text}")))?;
            let long = self.eat_int_suffix();
            return Ok(TokenKind::Int(value, long));
        }
        while self.peek().is_ascii_digit() {
            self.bump();
        }
        // Float: digits '.' digits, optionally exponent.
        if self.peek() == b'.' && self.peek2().is_ascii_digit() {
            self.bump();
            while self.peek().is_ascii_digit() {
                self.bump();
            }
            if matches!(self.peek(), b'e' | b'E') {
                self.bump();
                if matches!(self.peek(), b'+' | b'-') {
                    self.bump();
                }
                while self.peek().is_ascii_digit() {
                    self.bump();
                }
            }
            let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
            let value = text
                .parse::<f64>()
                .map_err(|_| Diagnostic::new(span, format!("invalid float literal {text}")))?;
            return Ok(TokenKind::Float(value));
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
        let value = text
            .parse::<i64>()
            .map_err(|_| Diagnostic::new(span, format!("integer literal out of range: {text}")))?;
        let long = self.eat_int_suffix();
        Ok(TokenKind::Int(value, long))
    }

    fn eat_int_suffix(&mut self) -> bool {
        let mut long = false;
        while matches!(self.peek(), b'l' | b'L' | b'u' | b'U') {
            if matches!(self.peek(), b'l' | b'L') {
                long = true;
            }
            self.bump();
        }
        long
    }

    fn lex_string(&mut self) -> Result<TokenKind, Diagnostic> {
        let span = self.span();
        self.bump(); // Opening quote.
        let mut s = String::new();
        loop {
            if self.at_end() {
                return Err(Diagnostic::new(span, "unterminated string literal"));
            }
            match self.bump() {
                b'"' => break,
                b'\\' => s.push(self.escape(span)?),
                c => s.push(c as char),
            }
        }
        Ok(TokenKind::Str(s))
    }

    fn lex_char(&mut self) -> Result<TokenKind, Diagnostic> {
        let span = self.span();
        self.bump(); // Opening quote.
        let c = match self.bump() {
            b'\\' => self.escape(span)?,
            0 => return Err(Diagnostic::new(span, "unterminated char literal")),
            c => c as char,
        };
        if self.bump() != b'\'' {
            return Err(Diagnostic::new(span, "unterminated char literal"));
        }
        Ok(TokenKind::Char(c))
    }

    fn escape(&mut self, span: Span) -> Result<char, Diagnostic> {
        Ok(match self.bump() {
            b'n' => '\n',
            b't' => '\t',
            b'r' => '\r',
            b'0' => '\0',
            b'\\' => '\\',
            b'\'' => '\'',
            b'"' => '"',
            c => {
                return Err(Diagnostic::new(
                    span,
                    format!("unknown escape sequence \\{}", c as char),
                ))
            }
        })
    }

    fn lex_punct(&mut self) -> Result<TokenKind, Diagnostic> {
        use TokenKind::*;
        let span = self.span();
        let c = self.bump();
        let two = |l: &mut Self, next: u8, yes: TokenKind, no: TokenKind| {
            if l.peek() == next {
                l.bump();
                yes
            } else {
                no
            }
        };
        Ok(match c {
            b'(' => LParen,
            b')' => RParen,
            b'{' => LBrace,
            b'}' => RBrace,
            b'[' => LBracket,
            b']' => RBracket,
            b';' => Semi,
            b',' => Comma,
            b':' => Colon,
            b'?' => Question,
            b'.' => Dot,
            b'~' => Tilde,
            b'+' => {
                if self.peek() == b'+' {
                    self.bump();
                    PlusPlus
                } else {
                    two(self, b'=', PlusEq, Plus)
                }
            }
            b'-' => {
                if self.peek() == b'-' {
                    self.bump();
                    MinusMinus
                } else if self.peek() == b'>' {
                    self.bump();
                    Arrow
                } else {
                    two(self, b'=', MinusEq, Minus)
                }
            }
            b'*' => two(self, b'=', StarEq, Star),
            b'/' => two(self, b'=', SlashEq, Slash),
            b'%' => two(self, b'=', PercentEq, Percent),
            b'^' => two(self, b'=', CaretEq, Caret),
            b'!' => two(self, b'=', Ne, Bang),
            b'=' => two(self, b'=', EqEq, Eq),
            b'&' => {
                if self.peek() == b'&' {
                    self.bump();
                    AmpAmp
                } else {
                    two(self, b'=', AmpEq, Amp)
                }
            }
            b'|' => {
                if self.peek() == b'|' {
                    self.bump();
                    PipePipe
                } else {
                    two(self, b'=', PipeEq, Pipe)
                }
            }
            b'<' => {
                if self.peek() == b'<' {
                    self.bump();
                    two(self, b'=', ShlEq, Shl)
                } else {
                    two(self, b'=', Le, Lt)
                }
            }
            b'>' => {
                if self.peek() == b'>' {
                    self.bump();
                    two(self, b'=', ShrEq, Shr)
                } else {
                    two(self, b'=', Ge, Gt)
                }
            }
            _ => {
                return Err(Diagnostic::new(
                    span,
                    format!("unexpected character '{}'", c as char),
                ))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind as T;

    fn kinds(src: &str) -> Vec<T> {
        Lexer::new(src)
            .lex()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_simple_assignment() {
        assert_eq!(
            kinds("x = 42;"),
            vec![
                T::Ident("x".into()),
                T::Eq,
                T::Int(42, false),
                T::Semi,
                T::Eof
            ]
        );
    }

    #[test]
    fn lexes_keywords_and_idents() {
        assert_eq!(
            kinds("if while listener"),
            vec![T::KwIf, T::KwWhile, T::Ident("listener".into()), T::Eof]
        );
    }

    #[test]
    fn lexes_hex_and_long() {
        assert_eq!(kinds("0x10"), vec![T::Int(16, false), T::Eof]);
        assert_eq!(kinds("5L"), vec![T::Int(5, true), T::Eof]);
        assert_eq!(kinds("7UL"), vec![T::Int(7, true), T::Eof]);
    }

    #[test]
    fn lexes_float() {
        assert_eq!(kinds("3.25"), vec![T::Float(3.25), T::Eof]);
        assert_eq!(kinds("1.5e2"), vec![T::Float(150.0), T::Eof]);
    }

    #[test]
    fn lexes_string_with_escapes() {
        assert_eq!(
            kinds(r#""a\nb\"c""#),
            vec![T::Str("a\nb\"c".into()), T::Eof]
        );
    }

    #[test]
    fn lexes_char_literal() {
        assert_eq!(kinds("'x'"), vec![T::Char('x'), T::Eof]);
        assert_eq!(kinds(r"'\n'"), vec![T::Char('\n'), T::Eof]);
    }

    #[test]
    fn skips_comments() {
        assert_eq!(
            kinds("a // line\n/* block\nmore */ b"),
            vec![T::Ident("a".into()), T::Ident("b".into()), T::Eof]
        );
    }

    #[test]
    fn skips_preprocessor_lines() {
        assert_eq!(
            kinds("#include <stdio.h>\nx"),
            vec![T::Ident("x".into()), T::Eof]
        );
    }

    #[test]
    fn lexes_compound_operators() {
        assert_eq!(
            kinds("a->b <<= 1 && c >= 2"),
            vec![
                T::Ident("a".into()),
                T::Arrow,
                T::Ident("b".into()),
                T::ShlEq,
                T::Int(1, false),
                T::AmpAmp,
                T::Ident("c".into()),
                T::Ge,
                T::Int(2, false),
                T::Eof
            ]
        );
    }

    #[test]
    fn tracks_line_numbers() {
        let toks = Lexer::new("a\nb\n  c").lex().unwrap();
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[1].span.line, 2);
        assert_eq!(toks[2].span.line, 3);
        assert_eq!(toks[2].span.col, 3);
    }

    #[test]
    fn reports_unterminated_string() {
        let err = Lexer::new("\"abc").lex().unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn reports_unknown_character() {
        let err = Lexer::new("@").lex().unwrap_err();
        assert!(err.message.contains("unexpected character"));
    }

    #[test]
    fn ternary_tokens() {
        assert_eq!(
            kinds("a ? b : c"),
            vec![
                T::Ident("a".into()),
                T::Question,
                T::Ident("b".into()),
                T::Colon,
                T::Ident("c".into()),
                T::Eof
            ]
        );
    }
}
