//! Source locations and diagnostics.

use std::fmt;

/// A location in the source text (1-based line and column).
///
/// Spans are threaded through the AST and IR so that misconfiguration
/// vulnerabilities can be attributed to unique source-code locations
/// (Table 5b of the paper counts vulnerabilities per location).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Span {
    /// 1-based line number; 0 means "unknown".
    pub line: u32,
    /// 1-based column number; 0 means "unknown".
    pub col: u32,
}

impl Span {
    /// Creates a span at the given line and column.
    pub fn new(line: u32, col: u32) -> Self {
        Span { line, col }
    }

    /// The unknown/synthetic location.
    pub fn unknown() -> Self {
        Span { line: 0, col: 0 }
    }

    /// Whether this span refers to a real source location.
    pub fn is_known(&self) -> bool {
        self.line != 0
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_known() {
            write!(f, "{}:{}", self.line, self.col)
        } else {
            write!(f, "<unknown>")
        }
    }
}

/// A front-end error with a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Where the problem was detected.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic at `span`.
    pub fn new(span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            span,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.message)
    }
}

impl std::error::Error for Diagnostic {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_display_known() {
        assert_eq!(Span::new(3, 7).to_string(), "3:7");
    }

    #[test]
    fn span_display_unknown() {
        assert_eq!(Span::unknown().to_string(), "<unknown>");
        assert!(!Span::unknown().is_known());
    }

    #[test]
    fn diagnostic_display() {
        let d = Diagnostic::new(Span::new(1, 2), "unexpected token");
        assert_eq!(d.to_string(), "1:2: unexpected token");
    }

    #[test]
    fn span_ordering_is_line_major() {
        assert!(Span::new(1, 9) < Span::new(2, 1));
        assert!(Span::new(2, 1) < Span::new(2, 5));
    }
}
