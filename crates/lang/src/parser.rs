//! Recursive-descent parser for the mini-C language.
//!
//! Grammar summary (C subset, plus the `fnptr` type for function pointers):
//!
//! ```text
//! program   := (struct_def | enum_def | global | function)*
//! struct_def:= "struct" IDENT "{" (type IDENT ("[" INT "]")? ";")* "}" ";"
//! enum_def  := "enum" IDENT "{" IDENT ("=" INT)? ("," ...)* "}" ";"
//! global    := quals type IDENT ("[" INT? "]")? ("=" initializer)? ";"
//! function  := quals type IDENT "(" params ")" block
//! ```
//!
//! Expressions follow C precedence. Assignment and the ternary operator are
//! right-associative; all binary operators are left-associative.

use crate::ast::*;
use crate::diag::{Diagnostic, Span};
use crate::token::{Token, TokenKind};
use crate::types::CType;

/// Recursive-descent parser state.
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    /// Creates a parser over a token stream (must end with `Eof`).
    pub fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    /// Parses a whole translation unit.
    pub fn parse_program(mut self) -> Result<Program, Diagnostic> {
        let mut program = Program::default();
        while !self.check(&TokenKind::Eof) {
            // Leading qualifiers are accepted and ignored.
            while matches!(
                self.peek(),
                TokenKind::KwStatic | TokenKind::KwConst | TokenKind::KwExtern
            ) {
                self.bump();
            }
            if self.check(&TokenKind::KwStruct) && self.peek_is_struct_def() {
                program.structs.push(self.parse_struct_def()?);
            } else if self.check(&TokenKind::KwEnum) && self.peek_is_enum_def() {
                program.enums.push(self.parse_enum_def()?);
            } else {
                self.parse_global_or_function(&mut program)?;
            }
        }
        Ok(program)
    }

    // --- Token helpers -----------------------------------------------------

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_n(&self, n: usize) -> &TokenKind {
        &self
            .tokens
            .get(self.pos + n)
            .unwrap_or(&self.tokens[self.tokens.len() - 1])
            .kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn check(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.check(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, Diagnostic> {
        if self.check(kind) {
            Ok(self.bump())
        } else {
            Err(Diagnostic::new(
                self.span(),
                format!("expected `{kind}`, found `{}`", self.peek()),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), Diagnostic> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok((name, span))
            }
            other => Err(Diagnostic::new(
                span,
                format!("expected identifier, found `{other}`"),
            )),
        }
    }

    // --- Types -------------------------------------------------------------

    fn at_type_start(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::KwInt
                | TokenKind::KwLong
                | TokenKind::KwShort
                | TokenKind::KwChar
                | TokenKind::KwBool
                | TokenKind::KwFloat
                | TokenKind::KwDouble
                | TokenKind::KwVoid
                | TokenKind::KwUnsigned
                | TokenKind::KwSigned
                | TokenKind::KwStruct
                | TokenKind::KwEnum
        ) || matches!(self.peek(), TokenKind::Ident(n) if n == "fnptr")
    }

    fn parse_type(&mut self) -> Result<CType, Diagnostic> {
        let mut signed = true;
        let mut saw_sign = false;
        while matches!(self.peek(), TokenKind::KwUnsigned | TokenKind::KwSigned) {
            signed = self.check(&TokenKind::KwSigned);
            saw_sign = true;
            self.bump();
        }
        let base = match self.peek().clone() {
            TokenKind::KwVoid => {
                self.bump();
                CType::Void
            }
            TokenKind::KwBool => {
                self.bump();
                CType::Bool
            }
            TokenKind::KwChar => {
                self.bump();
                CType::Int { bits: 8, signed }
            }
            TokenKind::KwShort => {
                self.bump();
                self.eat(&TokenKind::KwInt);
                CType::Int { bits: 16, signed }
            }
            TokenKind::KwInt => {
                self.bump();
                CType::Int { bits: 32, signed }
            }
            TokenKind::KwLong => {
                self.bump();
                self.eat(&TokenKind::KwLong);
                self.eat(&TokenKind::KwInt);
                CType::Int { bits: 64, signed }
            }
            TokenKind::KwFloat => {
                self.bump();
                CType::Float { bits: 32 }
            }
            TokenKind::KwDouble => {
                self.bump();
                CType::Float { bits: 64 }
            }
            TokenKind::KwStruct => {
                self.bump();
                let (name, _) = self.expect_ident()?;
                CType::Struct(name)
            }
            TokenKind::KwEnum => {
                self.bump();
                let (name, _) = self.expect_ident()?;
                CType::Enum(name)
            }
            TokenKind::Ident(n) if n == "fnptr" => {
                self.bump();
                CType::FuncPtr
            }
            other => {
                return Err(Diagnostic::new(
                    self.span(),
                    format!("expected type, found `{other}`"),
                ))
            }
        };
        if saw_sign && !matches!(base, CType::Int { .. }) {
            return Err(Diagnostic::new(
                self.span(),
                "signedness qualifier on non-integer type",
            ));
        }
        let mut ty = base;
        while self.eat(&TokenKind::Star) {
            ty = CType::Ptr(Box::new(ty));
        }
        Ok(ty)
    }

    // --- Declarations ------------------------------------------------------

    fn peek_is_struct_def(&self) -> bool {
        // `struct X {` is a definition; `struct X ident` is a variable.
        matches!(self.peek_n(1), TokenKind::Ident(_)) && matches!(self.peek_n(2), TokenKind::LBrace)
    }

    fn peek_is_enum_def(&self) -> bool {
        matches!(self.peek_n(1), TokenKind::Ident(_)) && matches!(self.peek_n(2), TokenKind::LBrace)
    }

    fn parse_struct_def(&mut self) -> Result<StructDef, Diagnostic> {
        let span = self.span();
        self.expect(&TokenKind::KwStruct)?;
        let (name, _) = self.expect_ident()?;
        self.expect(&TokenKind::LBrace)?;
        let mut fields = Vec::new();
        while !self.check(&TokenKind::RBrace) {
            let mut ty = self.parse_type()?;
            let (fname, _) = self.expect_ident()?;
            if self.eat(&TokenKind::LBracket) {
                let size = self.parse_const_int()?;
                self.expect(&TokenKind::RBracket)?;
                ty = CType::Array(Box::new(ty), size as usize);
            }
            self.expect(&TokenKind::Semi)?;
            fields.push(FieldDef { name: fname, ty });
        }
        self.expect(&TokenKind::RBrace)?;
        self.expect(&TokenKind::Semi)?;
        Ok(StructDef { name, fields, span })
    }

    fn parse_enum_def(&mut self) -> Result<EnumDef, Diagnostic> {
        let span = self.span();
        self.expect(&TokenKind::KwEnum)?;
        let (name, _) = self.expect_ident()?;
        self.expect(&TokenKind::LBrace)?;
        let mut variants = Vec::new();
        let mut next = 0i64;
        while !self.check(&TokenKind::RBrace) {
            let (vname, _) = self.expect_ident()?;
            if self.eat(&TokenKind::Eq) {
                next = self.parse_const_int()?;
            }
            variants.push((vname, next));
            next += 1;
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RBrace)?;
        self.expect(&TokenKind::Semi)?;
        Ok(EnumDef {
            name,
            variants,
            span,
        })
    }

    fn parse_const_int(&mut self) -> Result<i64, Diagnostic> {
        let neg = self.eat(&TokenKind::Minus);
        match self.peek().clone() {
            TokenKind::Int(v, _) => {
                self.bump();
                Ok(if neg { -v } else { v })
            }
            other => Err(Diagnostic::new(
                self.span(),
                format!("expected integer constant, found `{other}`"),
            )),
        }
    }

    fn parse_global_or_function(&mut self, program: &mut Program) -> Result<(), Diagnostic> {
        let ty = self.parse_type()?;
        let (name, span) = self.expect_ident()?;
        if self.check(&TokenKind::LParen) {
            program
                .functions
                .push(self.parse_function_rest(ty, name, span)?);
        } else {
            program
                .globals
                .push(self.parse_global_rest(ty, name, span)?);
        }
        Ok(())
    }

    fn parse_global_rest(
        &mut self,
        mut ty: CType,
        name: String,
        span: Span,
    ) -> Result<GlobalDef, Diagnostic> {
        if self.eat(&TokenKind::LBracket) {
            if self.check(&TokenKind::RBracket) {
                // `T name[] = {...}` — size from the initializer, patched
                // below after parsing it.
                self.bump();
                self.expect(&TokenKind::Eq)?;
                let init = self.parse_initializer()?;
                let n = match &init {
                    Initializer::List(items) => items.len(),
                    Initializer::Expr(_) => 1,
                };
                self.expect(&TokenKind::Semi)?;
                return Ok(GlobalDef {
                    name,
                    ty: CType::Array(Box::new(ty), n),
                    init: Some(init),
                    span,
                });
            }
            let size = self.parse_const_int()?;
            self.expect(&TokenKind::RBracket)?;
            ty = CType::Array(Box::new(ty), size as usize);
        }
        let init = if self.eat(&TokenKind::Eq) {
            Some(self.parse_initializer()?)
        } else {
            None
        };
        self.expect(&TokenKind::Semi)?;
        Ok(GlobalDef {
            name,
            ty,
            init,
            span,
        })
    }

    fn parse_initializer(&mut self) -> Result<Initializer, Diagnostic> {
        if self.eat(&TokenKind::LBrace) {
            let mut items = Vec::new();
            while !self.check(&TokenKind::RBrace) {
                items.push(self.parse_initializer()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RBrace)?;
            Ok(Initializer::List(items))
        } else {
            Ok(Initializer::Expr(self.parse_ternary()?))
        }
    }

    fn parse_function_rest(
        &mut self,
        ret: CType,
        name: String,
        span: Span,
    ) -> Result<FunctionDef, Diagnostic> {
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.check(&TokenKind::RParen) {
            if self.check(&TokenKind::KwVoid) && matches!(self.peek_n(1), TokenKind::RParen) {
                self.bump(); // `(void)`
            } else {
                loop {
                    let pty = self.parse_type()?;
                    let (pname, _) = self.expect_ident()?;
                    params.push(ParamDef {
                        name: pname,
                        ty: pty,
                    });
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        let body = self.parse_block()?;
        Ok(FunctionDef {
            name,
            ret,
            params,
            body,
            span,
        })
    }

    // --- Statements ----------------------------------------------------------

    fn parse_block(&mut self) -> Result<Vec<Stmt>, Diagnostic> {
        self.expect(&TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.check(&TokenKind::RBrace) {
            stmts.push(self.parse_stmt()?);
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(stmts)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::LBrace => Ok(Stmt::Block(self.parse_block()?)),
            TokenKind::KwIf => self.parse_if(),
            TokenKind::KwWhile => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                let body = self.parse_stmt_as_block()?;
                Ok(Stmt::While { cond, body, span })
            }
            TokenKind::KwDo => {
                self.bump();
                let body = self.parse_stmt_as_block()?;
                self.expect(&TokenKind::KwWhile)?;
                self.expect(&TokenKind::LParen)?;
                let cond = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::DoWhile { body, cond, span })
            }
            TokenKind::KwFor => self.parse_for(),
            TokenKind::KwSwitch => self.parse_switch(),
            TokenKind::KwBreak => {
                self.bump();
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Break(span))
            }
            TokenKind::KwContinue => {
                self.bump();
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Continue(span))
            }
            TokenKind::KwReturn => {
                self.bump();
                let value = if self.check(&TokenKind::Semi) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Return(value, span))
            }
            TokenKind::KwStatic | TokenKind::KwConst => {
                self.bump();
                self.parse_stmt()
            }
            _ if self.at_type_start() => self.parse_var_decl(),
            _ => {
                let expr = self.parse_expr()?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Expr(expr))
            }
        }
    }

    fn parse_stmt_as_block(&mut self) -> Result<Vec<Stmt>, Diagnostic> {
        if self.check(&TokenKind::LBrace) {
            self.parse_block()
        } else {
            Ok(vec![self.parse_stmt()?])
        }
    }

    fn parse_if(&mut self) -> Result<Stmt, Diagnostic> {
        let span = self.span();
        self.expect(&TokenKind::KwIf)?;
        self.expect(&TokenKind::LParen)?;
        let cond = self.parse_expr()?;
        self.expect(&TokenKind::RParen)?;
        let then_body = self.parse_stmt_as_block()?;
        let else_body = if self.eat(&TokenKind::KwElse) {
            self.parse_stmt_as_block()?
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            cond,
            then_body,
            else_body,
            span,
        })
    }

    fn parse_for(&mut self) -> Result<Stmt, Diagnostic> {
        let span = self.span();
        self.expect(&TokenKind::KwFor)?;
        self.expect(&TokenKind::LParen)?;
        let init = if self.check(&TokenKind::Semi) {
            self.bump();
            None
        } else if self.at_type_start() {
            Some(Box::new(self.parse_var_decl()?))
        } else {
            let e = self.parse_expr()?;
            self.expect(&TokenKind::Semi)?;
            Some(Box::new(Stmt::Expr(e)))
        };
        let cond = if self.check(&TokenKind::Semi) {
            None
        } else {
            Some(self.parse_expr()?)
        };
        self.expect(&TokenKind::Semi)?;
        let step = if self.check(&TokenKind::RParen) {
            None
        } else {
            Some(self.parse_expr()?)
        };
        self.expect(&TokenKind::RParen)?;
        let body = self.parse_stmt_as_block()?;
        Ok(Stmt::For {
            init,
            cond,
            step,
            body,
            span,
        })
    }

    fn parse_switch(&mut self) -> Result<Stmt, Diagnostic> {
        let span = self.span();
        self.expect(&TokenKind::KwSwitch)?;
        self.expect(&TokenKind::LParen)?;
        let scrutinee = self.parse_expr()?;
        self.expect(&TokenKind::RParen)?;
        self.expect(&TokenKind::LBrace)?;
        let mut cases: Vec<SwitchCase> = Vec::new();
        let mut default = None;
        while !self.check(&TokenKind::RBrace) {
            if self.eat(&TokenKind::KwCase) {
                let label = self.parse_ternary()?;
                self.expect(&TokenKind::Colon)?;
                // Accumulate consecutive labels into one arm (fallthrough of
                // empty arms).
                let mut labels = vec![label];
                while self.eat(&TokenKind::KwCase) {
                    labels.push(self.parse_ternary()?);
                    self.expect(&TokenKind::Colon)?;
                }
                let body = self.parse_case_body()?;
                cases.push(SwitchCase { labels, body });
            } else if self.eat(&TokenKind::KwDefault) {
                self.expect(&TokenKind::Colon)?;
                default = Some(self.parse_case_body()?);
            } else {
                return Err(Diagnostic::new(
                    self.span(),
                    format!("expected `case` or `default`, found `{}`", self.peek()),
                ));
            }
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(Stmt::Switch {
            scrutinee,
            cases,
            default,
            span,
        })
    }

    fn parse_case_body(&mut self) -> Result<Vec<Stmt>, Diagnostic> {
        let mut body = Vec::new();
        while !matches!(
            self.peek(),
            TokenKind::KwCase | TokenKind::KwDefault | TokenKind::RBrace
        ) {
            // A trailing `break;` ends the arm (fallthrough between
            // non-empty arms is not modelled).
            if self.check(&TokenKind::KwBreak) {
                self.bump();
                self.expect(&TokenKind::Semi)?;
                break;
            }
            body.push(self.parse_stmt()?);
        }
        Ok(body)
    }

    fn parse_var_decl(&mut self) -> Result<Stmt, Diagnostic> {
        let span = self.span();
        let mut ty = self.parse_type()?;
        let (name, _) = self.expect_ident()?;
        if self.eat(&TokenKind::LBracket) {
            let size = self.parse_const_int()?;
            self.expect(&TokenKind::RBracket)?;
            ty = CType::Array(Box::new(ty), size as usize);
        }
        let init = if self.eat(&TokenKind::Eq) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        self.expect(&TokenKind::Semi)?;
        Ok(Stmt::VarDecl {
            name,
            ty,
            init,
            span,
        })
    }

    // --- Expressions ---------------------------------------------------------

    /// Parses a full expression (assignment level).
    pub fn parse_expr(&mut self) -> Result<Expr, Diagnostic> {
        let lhs = self.parse_ternary()?;
        let op = match self.peek() {
            TokenKind::Eq => Some(None),
            TokenKind::PlusEq => Some(Some(BinOp::Add)),
            TokenKind::MinusEq => Some(Some(BinOp::Sub)),
            TokenKind::StarEq => Some(Some(BinOp::Mul)),
            TokenKind::SlashEq => Some(Some(BinOp::Div)),
            TokenKind::PercentEq => Some(Some(BinOp::Rem)),
            TokenKind::AmpEq => Some(Some(BinOp::And)),
            TokenKind::PipeEq => Some(Some(BinOp::Or)),
            TokenKind::CaretEq => Some(Some(BinOp::Xor)),
            TokenKind::ShlEq => Some(Some(BinOp::Shl)),
            TokenKind::ShrEq => Some(Some(BinOp::Shr)),
            _ => None,
        };
        if let Some(op) = op {
            let span = self.span();
            self.bump();
            let value = self.parse_expr()?; // Right-associative.
            return Ok(Expr::new(
                ExprKind::Assign {
                    target: Box::new(lhs),
                    op,
                    value: Box::new(value),
                },
                span,
            ));
        }
        Ok(lhs)
    }

    fn parse_ternary(&mut self) -> Result<Expr, Diagnostic> {
        let cond = self.parse_binary(0)?;
        if self.check(&TokenKind::Question) {
            let span = self.span();
            self.bump();
            let t = self.parse_expr()?;
            self.expect(&TokenKind::Colon)?;
            let f = self.parse_ternary()?;
            return Ok(Expr::new(
                ExprKind::Ternary(Box::new(cond), Box::new(t), Box::new(f)),
                span,
            ));
        }
        Ok(cond)
    }

    fn binop_at(&self, level: u8) -> Option<BinOp> {
        use BinOp::*;
        use TokenKind as T;
        let op = match (level, self.peek()) {
            (0, T::PipePipe) => LogicalOr,
            (1, T::AmpAmp) => LogicalAnd,
            (2, T::Pipe) => Or,
            (3, T::Caret) => Xor,
            (4, T::Amp) => And,
            (5, T::EqEq) => Eq,
            (5, T::Ne) => Ne,
            (6, T::Lt) => Lt,
            (6, T::Gt) => Gt,
            (6, T::Le) => Le,
            (6, T::Ge) => Ge,
            (7, T::Shl) => Shl,
            (7, T::Shr) => Shr,
            (8, T::Plus) => Add,
            (8, T::Minus) => Sub,
            (9, T::Star) => Mul,
            (9, T::Slash) => Div,
            (9, T::Percent) => Rem,
            _ => return None,
        };
        Some(op)
    }

    fn parse_binary(&mut self, level: u8) -> Result<Expr, Diagnostic> {
        if level > 9 {
            return self.parse_unary();
        }
        let mut lhs = self.parse_binary(level + 1)?;
        while let Some(op) = self.binop_at(level) {
            let span = self.span();
            self.bump();
            let rhs = self.parse_binary(level + 1)?;
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, Diagnostic> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Minus => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr::new(ExprKind::Unary(UnOp::Neg, Box::new(e)), span))
            }
            TokenKind::Bang => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr::new(ExprKind::Unary(UnOp::Not, Box::new(e)), span))
            }
            TokenKind::Tilde => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr::new(ExprKind::Unary(UnOp::BitNot, Box::new(e)), span))
            }
            TokenKind::Amp => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr::new(ExprKind::AddrOf(Box::new(e)), span))
            }
            TokenKind::Star => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr::new(ExprKind::Deref(Box::new(e)), span))
            }
            TokenKind::PlusPlus | TokenKind::MinusMinus => {
                // Pre-inc/dec is desugared to `x += 1` (value unused in
                // statement position, which is how it appears in practice).
                let inc = self.check(&TokenKind::PlusPlus);
                self.bump();
                let target = self.parse_unary()?;
                Ok(Expr::new(
                    ExprKind::Assign {
                        target: Box::new(target),
                        op: Some(if inc { BinOp::Add } else { BinOp::Sub }),
                        value: Box::new(Expr::int(1)),
                    },
                    span,
                ))
            }
            TokenKind::KwSizeof => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let ty = self.parse_type()?;
                self.expect(&TokenKind::RParen)?;
                Ok(Expr::new(ExprKind::Sizeof(ty), span))
            }
            TokenKind::LParen if self.peek_n(1).is_type_start_token() => {
                // Cast: `(type) expr`.
                self.bump();
                let ty = self.parse_type()?;
                self.expect(&TokenKind::RParen)?;
                let e = self.parse_unary()?;
                Ok(Expr::new(ExprKind::Cast(ty, Box::new(e)), span))
            }
            _ => self.parse_postfix(),
        }
    }

    fn parse_postfix(&mut self) -> Result<Expr, Diagnostic> {
        let mut e = self.parse_primary()?;
        loop {
            let span = self.span();
            match self.peek().clone() {
                TokenKind::LParen => {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.check(&TokenKind::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    e = Expr::new(
                        ExprKind::Call {
                            callee: Box::new(e),
                            args,
                        },
                        span,
                    );
                }
                TokenKind::LBracket => {
                    self.bump();
                    let idx = self.parse_expr()?;
                    self.expect(&TokenKind::RBracket)?;
                    e = Expr::new(ExprKind::Index(Box::new(e), Box::new(idx)), span);
                }
                TokenKind::Dot => {
                    self.bump();
                    let (field, _) = self.expect_ident()?;
                    e = Expr::new(
                        ExprKind::Member {
                            base: Box::new(e),
                            field,
                            arrow: false,
                        },
                        span,
                    );
                }
                TokenKind::Arrow => {
                    self.bump();
                    let (field, _) = self.expect_ident()?;
                    e = Expr::new(
                        ExprKind::Member {
                            base: Box::new(e),
                            field,
                            arrow: true,
                        },
                        span,
                    );
                }
                TokenKind::PlusPlus | TokenKind::MinusMinus => {
                    let inc = self.check(&TokenKind::PlusPlus);
                    self.bump();
                    e = Expr::new(
                        ExprKind::PostIncDec {
                            target: Box::new(e),
                            inc,
                        },
                        span,
                    );
                }
                _ => return Ok(e),
            }
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, Diagnostic> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Int(v, _) => {
                self.bump();
                Ok(Expr::new(ExprKind::IntLit(v), span))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Expr::new(ExprKind::FloatLit(v), span))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::new(ExprKind::StrLit(s), span))
            }
            TokenKind::Char(c) => {
                self.bump();
                Ok(Expr::new(ExprKind::CharLit(c), span))
            }
            TokenKind::KwNull => {
                self.bump();
                Ok(Expr::new(ExprKind::Null, span))
            }
            TokenKind::KwTrue => {
                self.bump();
                Ok(Expr::new(ExprKind::BoolLit(true), span))
            }
            TokenKind::KwFalse => {
                self.bump();
                Ok(Expr::new(ExprKind::BoolLit(false), span))
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(Expr::new(ExprKind::Ident(name), span))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            other => Err(Diagnostic::new(
                span,
                format!("expected expression, found `{other}`"),
            )),
        }
    }
}

impl TokenKind {
    /// Whether this token can begin a type (used to disambiguate casts).
    fn is_type_start_token(&self) -> bool {
        matches!(
            self,
            TokenKind::KwInt
                | TokenKind::KwLong
                | TokenKind::KwShort
                | TokenKind::KwChar
                | TokenKind::KwBool
                | TokenKind::KwFloat
                | TokenKind::KwDouble
                | TokenKind::KwVoid
                | TokenKind::KwUnsigned
                | TokenKind::KwSigned
                | TokenKind::KwStruct
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    #[test]
    fn parses_global_with_init() {
        let p = parse_program("int max_conn = 100;").unwrap();
        assert_eq!(p.globals.len(), 1);
        assert_eq!(p.globals[0].name, "max_conn");
        assert!(matches!(
            p.globals[0].init,
            Some(Initializer::Expr(Expr {
                kind: ExprKind::IntLit(100),
                ..
            }))
        ));
    }

    #[test]
    fn parses_struct_and_array_global() {
        let src = r#"
            struct config_int { char* name; int* var; int min; int max; };
            int deadlock_timeout = 1000;
            struct config_int options[] = {
                { "deadlock_timeout", &deadlock_timeout, 1, 600000 },
            };
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.structs.len(), 1);
        assert_eq!(p.structs[0].fields.len(), 4);
        let g = p.global("options").unwrap();
        assert!(matches!(g.ty, CType::Array(_, 1)));
    }

    #[test]
    fn parses_function_with_control_flow() {
        let src = r#"
            int clamp(int v) {
                if (v < 4) { v = 4; }
                else if (v > 255) { v = 255; }
                return v;
            }
        "#;
        let p = parse_program(src).unwrap();
        let f = p.function("clamp").unwrap();
        assert_eq!(f.params.len(), 1);
        assert!(matches!(f.body[0], Stmt::If { .. }));
    }

    #[test]
    fn parses_for_and_while() {
        let src = r#"
            void scan(int n) {
                for (int i = 0; i < n; i++) { process(i); }
                while (n > 0) { n -= 1; }
                do { n += 1; } while (n < 3);
            }
        "#;
        let p = parse_program(src).unwrap();
        let f = p.function("scan").unwrap();
        assert_eq!(f.body.len(), 3);
    }

    #[test]
    fn parses_switch() {
        let src = r#"
            int dispatch(int mode) {
                switch (mode) {
                    case 0: return 10; break;
                    case 1:
                    case 2: return 20; break;
                    default: return -1;
                }
            }
        "#;
        let p = parse_program(src).unwrap();
        let f = p.function("dispatch").unwrap();
        match &f.body[0] {
            Stmt::Switch { cases, default, .. } => {
                assert_eq!(cases.len(), 2);
                assert_eq!(cases[1].labels.len(), 2);
                assert!(default.is_some());
            }
            other => panic!("expected switch, got {other:?}"),
        }
    }

    #[test]
    fn parses_member_and_pointer_exprs() {
        let src = r#"
            struct opt { char* name; int* var; };
            void apply(struct opt* o, char* value) {
                *(o->var) = atoi(value);
            }
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.functions.len(), 1);
    }

    #[test]
    fn parses_cast() {
        let src = "long widen(int x) { return (long) x; }";
        let p = parse_program(src).unwrap();
        let f = p.function("widen").unwrap();
        match &f.body[0] {
            Stmt::Return(Some(e), _) => assert!(matches!(e.kind, ExprKind::Cast(..))),
            other => panic!("expected return, got {other:?}"),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let src = "int f() { return 1 + 2 * 3; }";
        let p = parse_program(src).unwrap();
        match &p.functions[0].body[0] {
            Stmt::Return(Some(e), _) => match &e.kind {
                ExprKind::Binary(BinOp::Add, _, rhs) => {
                    assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::Mul, ..)));
                }
                other => panic!("expected add at top, got {other:?}"),
            },
            _ => unreachable!(),
        }
    }

    #[test]
    fn precedence_logical_ops() {
        let src = "int f(int a, int b, int c) { return a || b && c; }";
        let p = parse_program(src).unwrap();
        match &p.functions[0].body[0] {
            Stmt::Return(Some(e), _) => {
                assert!(matches!(e.kind, ExprKind::Binary(BinOp::LogicalOr, ..)));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn parses_ternary() {
        let src = "int f(int a) { return a > 0 ? a : -a; }";
        let p = parse_program(src).unwrap();
        match &p.functions[0].body[0] {
            Stmt::Return(Some(e), _) => assert!(matches!(e.kind, ExprKind::Ternary(..))),
            _ => unreachable!(),
        }
    }

    #[test]
    fn parses_function_pointer_field_and_call() {
        let src = r#"
            struct command_rec { char* name; fnptr handler; };
            int set_root(char* arg) { return 0; }
            struct command_rec cmds[] = { { "DocumentRoot", set_root } };
            void run(char* v) {
                cmds[0].handler(v);
            }
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.structs[0].fields[1].ty, CType::FuncPtr);
        assert_eq!(p.functions.len(), 2);
    }

    #[test]
    fn rejects_bad_syntax() {
        assert!(parse_program("int = 3;").is_err());
        assert!(parse_program("void f( { }").is_err());
        assert!(parse_program("int f() { return }").is_err());
    }

    #[test]
    fn parses_enum_def() {
        let p = parse_program("enum mode { OFF, ON = 5, AUTO };").unwrap();
        assert_eq!(
            p.enums[0].variants,
            vec![("OFF".into(), 0), ("ON".into(), 5), ("AUTO".into(), 6)]
        );
    }

    #[test]
    fn ignores_qualifiers() {
        let p = parse_program("static const int x = 1; extern int y;").unwrap();
        assert_eq!(p.globals.len(), 2);
    }

    #[test]
    fn parses_negative_global_init() {
        let p = parse_program("int x = -1;").unwrap();
        match p.globals[0].init.as_ref().unwrap() {
            Initializer::Expr(e) => assert!(matches!(e.kind, ExprKind::Unary(UnOp::Neg, _))),
            _ => panic!("expected expr init"),
        }
    }

    #[test]
    fn unsized_array_infers_length() {
        let p = parse_program(r#"char* names[] = { "a", "b", "c" };"#).unwrap();
        assert!(matches!(p.globals[0].ty, CType::Array(_, 3)));
    }
}
