//! Registry of known system and library calls.
//!
//! SPEX infers semantic-type constraints by recognising calls to known
//! system- and library-APIs along a parameter's data-flow path (§2.2.2 of
//! the paper): a value passed to `open` is a file path, a value passed to
//! `htons`/`bind` is a port, a value passed to `sleep` is a time in seconds,
//! and so on. This module enumerates those APIs. The *inference-facing*
//! semantic signatures live in `spex-core::apispec`; the *execution-facing*
//! behaviour lives in `spex-vm`. Both are keyed by this enum.

use std::fmt;

macro_rules! builtins {
    ($($variant:ident => $name:literal),+ $(,)?) => {
        /// A known library or system call.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        #[allow(missing_docs)]
        pub enum Builtin {
            $($variant,)+
        }

        impl Builtin {
            /// All builtins, in a stable order.
            pub const ALL: &'static [Builtin] = &[$(Builtin::$variant,)+];

            /// The C-level function name.
            pub fn name(&self) -> &'static str {
                match self {
                    $(Builtin::$variant => $name,)+
                }
            }

            /// Resolves a C-level function name to a builtin.
            pub fn from_name(name: &str) -> Option<Builtin> {
                match name {
                    $($name => Some(Builtin::$variant),)+
                    _ => None,
                }
            }
        }
    };
}

builtins! {
    // String handling.
    Strcmp => "strcmp",
    Strcasecmp => "strcasecmp",
    Strncmp => "strncmp",
    Strncasecmp => "strncasecmp",
    Strlen => "strlen",
    Strcpy => "strcpy",
    Strncpy => "strncpy",
    Strcat => "strcat",
    Strdup => "strdup",
    Strchr => "strchr",
    Strstr => "strstr",
    // Numeric conversions: safe (strto*) and unsafe (ato*, sscanf).
    Strtol => "strtol",
    Strtoll => "strtoll",
    Strtod => "strtod",
    Atoi => "atoi",
    Atol => "atol",
    Atof => "atof",
    Sscanf => "sscanf",
    Sprintf => "sprintf",
    Snprintf => "snprintf",
    // Files and directories.
    Open => "open",
    Fopen => "fopen",
    Close => "close",
    Read => "read",
    Write => "write",
    Stat => "stat",
    Access => "access",
    Mkdir => "mkdir",
    Unlink => "unlink",
    Chmod => "chmod",
    Opendir => "opendir",
    Fgets => "fgets",
    // Networking.
    Socket => "socket",
    Bind => "bind",
    Listen => "listen",
    Accept => "accept",
    Connect => "connect",
    Htons => "htons",
    Ntohs => "ntohs",
    InetAddr => "inet_addr",
    Gethostbyname => "gethostbyname",
    Setsockopt => "setsockopt",
    SockaddrSetPort => "sockaddr_set_port",
    // Time.
    Sleep => "sleep",
    Usleep => "usleep",
    Time => "time",
    Alarm => "alarm",
    // Process, users, memory.
    Exit => "exit",
    Abort => "abort",
    Getuid => "getuid",
    Setuid => "setuid",
    Getpwnam => "getpwnam",
    Getgrnam => "getgrnam",
    Chroot => "chroot",
    Malloc => "malloc",
    Calloc => "calloc",
    Free => "free",
    Memset => "memset",
    Memcpy => "memcpy",
    // Logging and output.
    Printf => "printf",
    Fprintf => "fprintf",
    Syslog => "syslog",
    Perror => "perror",
    LogError => "log_error",
    LogWarn => "log_warn",
    LogInfo => "log_info",
    // Misc.
    Assert => "assert",
    Getenv => "getenv",
    Rand => "rand",
}

impl Builtin {
    /// Whether the builtin is one of the string-comparison functions used by
    /// comparison-based parameter mapping (§2.2.1) and by the
    /// case-sensitivity detector (§3.2).
    pub fn is_string_comparison(&self) -> bool {
        matches!(
            self,
            Builtin::Strcmp | Builtin::Strcasecmp | Builtin::Strncmp | Builtin::Strncasecmp
        )
    }

    /// Whether the comparison ignores character case. Only meaningful for
    /// string-comparison builtins.
    pub fn is_case_insensitive(&self) -> bool {
        matches!(self, Builtin::Strcasecmp | Builtin::Strncasecmp)
    }

    /// Whether this is one of the unsafe string-to-number transformation
    /// APIs the paper flags in configuration-parsing contexts (§3.2):
    /// `atoi(1O0)` returns 1, `atoi(INT_MAX+1)` overflows silently.
    pub fn is_unsafe_transform(&self) -> bool {
        matches!(
            self,
            Builtin::Atoi | Builtin::Atol | Builtin::Atof | Builtin::Sscanf | Builtin::Sprintf
        )
    }

    /// Whether this is a safe numeric-conversion API (errors observable via
    /// end pointers / errno).
    pub fn is_safe_transform(&self) -> bool {
        matches!(self, Builtin::Strtol | Builtin::Strtoll | Builtin::Strtod)
    }

    /// Whether this converts a string to a number at all.
    pub fn is_numeric_conversion(&self) -> bool {
        self.is_unsafe_transform() && *self != Builtin::Sprintf || self.is_safe_transform()
    }

    /// Whether a call to this builtin counts as a *usage* of its arguments
    /// in the control-dependency sense of §2.2.4. Logging a value or freeing
    /// it does not change program behaviour; using it as a syscall argument
    /// does.
    pub fn is_behavioral_use(&self) -> bool {
        !matches!(
            self,
            Builtin::Printf
                | Builtin::Fprintf
                | Builtin::Syslog
                | Builtin::Perror
                | Builtin::LogError
                | Builtin::LogWarn
                | Builtin::LogInfo
                | Builtin::Free
        )
    }

    /// Whether this emits a log/console message visible to the injection
    /// harness.
    pub fn is_logging(&self) -> bool {
        matches!(
            self,
            Builtin::Printf
                | Builtin::Fprintf
                | Builtin::Syslog
                | Builtin::Perror
                | Builtin::LogError
                | Builtin::LogWarn
                | Builtin::LogInfo
        )
    }
}

impl Builtin {
    /// The C return type of the builtin, used during lowering to type the
    /// call's result value.
    pub fn ret_type(&self) -> crate::types::CType {
        use crate::types::CType;
        use Builtin::*;
        match self {
            // String-returning APIs.
            Strcpy | Strncpy | Strcat | Strdup | Strchr | Strstr | Fgets | Getenv => {
                CType::string()
            }
            // Long-returning conversions.
            Strtol | Strtoll | Atol | Strlen | Time => CType::long(),
            // Double-returning conversions.
            Strtod | Atof => CType::double(),
            // Pointer-returning APIs (opaque handles).
            Fopen | Opendir | Getpwnam | Getgrnam | Gethostbyname | Malloc | Calloc | Memset
            | Memcpy => CType::Ptr(Box::new(CType::Void)),
            // No result.
            Exit | Abort | Free | Perror | Syslog | LogError | LogWarn | LogInfo | Assert => {
                CType::Void
            }
            // Everything else behaves like an int-returning libc call.
            _ => CType::int(),
        }
    }

    /// Whether calls to this builtin never return (`exit`, `abort`).
    pub fn is_noreturn(&self) -> bool {
        matches!(self, Builtin::Exit | Builtin::Abort)
    }
}

impl fmt::Display for Builtin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_round_trip() {
        for b in Builtin::ALL {
            assert_eq!(Builtin::from_name(b.name()), Some(*b));
        }
    }

    #[test]
    fn unknown_name() {
        assert_eq!(Builtin::from_name("definitely_not_libc"), None);
    }

    #[test]
    fn comparison_classification() {
        assert!(Builtin::Strcasecmp.is_string_comparison());
        assert!(Builtin::Strcasecmp.is_case_insensitive());
        assert!(Builtin::Strcmp.is_string_comparison());
        assert!(!Builtin::Strcmp.is_case_insensitive());
        assert!(!Builtin::Strlen.is_string_comparison());
    }

    #[test]
    fn unsafe_transform_classification() {
        assert!(Builtin::Atoi.is_unsafe_transform());
        assert!(Builtin::Sscanf.is_unsafe_transform());
        assert!(!Builtin::Strtol.is_unsafe_transform());
        assert!(Builtin::Strtol.is_safe_transform());
    }

    #[test]
    fn logging_is_not_behavioral_use() {
        assert!(!Builtin::Syslog.is_behavioral_use());
        assert!(!Builtin::Fprintf.is_behavioral_use());
        assert!(Builtin::Open.is_behavioral_use());
        assert!(Builtin::Sleep.is_behavioral_use());
    }

    #[test]
    fn numeric_conversions() {
        assert!(Builtin::Atoi.is_numeric_conversion());
        assert!(Builtin::Strtol.is_numeric_conversion());
        assert!(!Builtin::Sprintf.is_numeric_conversion());
        assert!(!Builtin::Strcmp.is_numeric_conversion());
    }
}
