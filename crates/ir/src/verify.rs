//! IR well-formedness checks.
//!
//! Run after lowering (and after SSA promotion) in tests and by the subject-
//! system generator to catch malformed code early.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::instr::Instr;
use crate::module::{BlockId, Function, Module, ValueId};
use std::collections::{HashMap, HashSet};

/// A verifier finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function where the problem was found.
    pub function: String,
    /// Description of the violation.
    pub message: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.function, self.message)
    }
}

/// Verifies every function of a module. Returns all violations found.
pub fn verify_module(m: &Module) -> Vec<VerifyError> {
    let mut errors = Vec::new();
    for f in &m.functions {
        errors.extend(verify_function(f));
    }
    errors
}

/// Verifies a single function.
pub fn verify_function(f: &Function) -> Vec<VerifyError> {
    let mut errors = Vec::new();
    let err = |msg: String| VerifyError {
        function: f.name.clone(),
        message: msg,
    };
    let nblocks = f.blocks.len();
    let nvalues = f.num_values();

    // Branch targets in range; value ids in range; single definition.
    let mut defs: HashMap<ValueId, BlockId> = HashMap::new();
    for (b, _, instr, _) in f.iter_instrs() {
        if let Some(d) = instr.def() {
            if d.index() >= nvalues {
                errors.push(err(format!("value {d} out of range")));
            }
            if defs.insert(d, b).is_some() {
                errors.push(err(format!("value {d} defined more than once")));
            }
        }
        for u in instr.uses() {
            if u.index() >= nvalues {
                errors.push(err(format!("use of out-of-range value {u}")));
            }
        }
        if let Instr::Phi { incomings, .. } = instr {
            if !f.is_ssa {
                errors.push(err("phi in non-SSA function".into()));
            }
            for (pred, _) in incomings {
                if pred.index() >= nblocks {
                    errors.push(err(format!("phi predecessor {pred} out of range")));
                }
            }
        }
    }
    for blk in &f.blocks {
        for t in blk.term.0.successors() {
            if t.index() >= nblocks {
                errors.push(err(format!("branch target {t} out of range")));
            }
        }
        for u in blk.term.0.uses() {
            if u.index() >= nvalues {
                errors.push(err(format!("terminator uses out-of-range value {u}")));
            }
        }
    }

    // Every use in a reachable block must see a definition (SSA only: the
    // def must dominate the use).
    let cfg = Cfg::build(f);
    if f.is_ssa {
        let dom = DomTree::build(f, &cfg);
        let defined: HashSet<ValueId> = defs.keys().copied().collect();
        for (b, idx, instr, _) in f.iter_instrs() {
            if !cfg.is_reachable(b) {
                continue;
            }
            if let Instr::Phi { .. } = instr {
                continue; // Phi operands are checked edge-wise below.
            }
            for u in instr.uses() {
                match defs.get(&u) {
                    None => {
                        if defined.contains(&u) {
                            continue;
                        }
                        errors.push(err(format!("use of undefined value {u} in {b}")));
                    }
                    Some(&db) => {
                        if db == b {
                            // Same block: definition must come earlier.
                            let def_idx = f.blocks[b.index()]
                                .instrs
                                .iter()
                                .position(|(i, _)| i.def() == Some(u));
                            if let Some(di) = def_idx {
                                if di >= idx {
                                    errors.push(err(format!(
                                        "value {u} used before definition in {b}"
                                    )));
                                }
                            }
                        } else if !dom.dominates(db, b) {
                            errors.push(err(format!(
                                "def of {u} in {db} does not dominate use in {b}"
                            )));
                        }
                    }
                }
            }
        }
        // Phi edges must come from actual predecessors.
        for (b, _, instr, _) in f.iter_instrs() {
            if !cfg.is_reachable(b) {
                continue;
            }
            if let Instr::Phi { incomings, dst } = instr {
                let preds: HashSet<BlockId> = cfg.preds[b.index()].iter().copied().collect();
                for (pred, _) in incomings {
                    if !preds.contains(pred) && cfg.is_reachable(*pred) {
                        errors.push(err(format!(
                            "phi {dst} in {b} has edge from non-predecessor {pred}"
                        )));
                    }
                }
            }
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lower_program, promote_to_ssa};

    fn check(src: &str) {
        let p = spex_lang::parse_program(src).unwrap();
        let m = lower_program(&p).unwrap();
        let errs = verify_module(&m);
        assert!(errs.is_empty(), "pre-SSA verify failed: {errs:?}");
        for f in &m.functions {
            let ssa = promote_to_ssa(f);
            let errs = verify_function(&ssa);
            assert!(
                errs.is_empty(),
                "SSA verify failed for {}: {errs:?}",
                f.name
            );
        }
    }

    #[test]
    fn verifies_control_flow_heavy_code() {
        check(
            r#"
            int limit = 10;
            int process(int n) {
                int total = 0;
                for (int i = 0; i < n; i++) {
                    if (i % 2 == 0 && i < limit) { total += i; }
                    else if (i > 100) { break; }
                    else { continue; }
                }
                while (total > 50) { total /= 2; }
                switch (total) {
                    case 0: return -1;
                    case 1:
                    case 2: return total * 10;
                    default: return total;
                }
            }
            "#,
        );
    }

    #[test]
    fn verifies_pointer_and_struct_code() {
        check(
            r#"
            struct opt { char* name; int* var; int max; };
            int threads = 4;
            struct opt options[] = { { "threads", &threads, 64 } };
            void set_opt(int i, char* value) {
                int v = atoi(value);
                if (v > options[i].max) { v = options[i].max; }
                *(options[i].var) = v;
            }
            "#,
        );
    }

    #[test]
    fn verifies_early_exit_code() {
        check(
            r#"
            void die(char* msg) { fprintf(stderr, "%s", msg); exit(1); }
            int setup(int port) {
                if (port < 1 || port > 65535) { die("bad port"); }
                return bind(socket(0, 0, 0), port);
            }
            "#,
        );
    }

    #[test]
    fn catches_double_definition() {
        use crate::instr::{ConstVal, Instr};
        use crate::module::{Block, Function, SlotId, ValueId};
        use spex_lang::diag::Span;
        use spex_lang::types::CType;
        let _ = SlotId(0);
        let mut blk = Block::new();
        blk.instrs.push((
            Instr::Const {
                dst: ValueId(0),
                val: ConstVal::Int(1),
            },
            Span::unknown(),
        ));
        blk.instrs.push((
            Instr::Const {
                dst: ValueId(0),
                val: ConstVal::Int(2),
            },
            Span::unknown(),
        ));
        blk.term = (crate::instr::Terminator::Ret(None), Span::unknown());
        let f = Function {
            name: "bad".into(),
            ret: CType::Void,
            params: vec![],
            slots: vec![],
            blocks: vec![blk],
            value_types: vec![CType::int()],
            is_ssa: false,
            span: Span::unknown(),
            clones: Default::default(),
        };
        let errs = verify_function(&f);
        assert!(errs.iter().any(|e| e.message.contains("more than once")));
    }
}
