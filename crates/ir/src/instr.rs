//! Instruction set of the IR.

use crate::module::{BlockId, FuncId, GlobalId, SlotId, ValueId};
use spex_lang::ast::{BinOp, UnOp};
use spex_lang::builtins::Builtin;
use spex_lang::types::CType;

/// A compile-time constant.
#[derive(Debug, Clone, PartialEq)]
pub enum ConstVal {
    /// Integer constant (also used for `char` and enum values).
    Int(i64),
    /// Floating-point constant.
    Float(f64),
    /// String literal.
    Str(String),
    /// Boolean constant.
    Bool(bool),
    /// The null pointer.
    Null,
    /// Address of a function (function-pointer tables).
    FuncRef(FuncId),
    /// Address of a global (e.g. `&DeadlockTimeout` in PostgreSQL-style
    /// option tables).
    GlobalRef(GlobalId),
    /// Brace-initializer aggregate for arrays and structs.
    Aggregate(Vec<ConstVal>),
}

impl ConstVal {
    /// The all-zeros value of a type (C static initialization semantics).
    pub fn zero_of(ty: &CType, structs: &[crate::module::StructLayout]) -> ConstVal {
        match ty {
            CType::Void => ConstVal::Int(0),
            CType::Bool => ConstVal::Bool(false),
            CType::Int { .. } | CType::Enum(_) => ConstVal::Int(0),
            CType::Float { .. } => ConstVal::Float(0.0),
            CType::Ptr(_) | CType::FuncPtr => ConstVal::Null,
            CType::Array(elem, n) => {
                ConstVal::Aggregate(vec![ConstVal::zero_of(elem, structs); *n])
            }
            CType::Struct(name) => {
                let layout = structs.iter().find(|s| &s.name == name);
                match layout {
                    Some(l) => ConstVal::Aggregate(
                        l.fields
                            .iter()
                            .map(|(_, fty)| ConstVal::zero_of(fty, structs))
                            .collect(),
                    ),
                    None => ConstVal::Aggregate(Vec::new()),
                }
            }
        }
    }

    /// The integer value, if this is an integer constant.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            ConstVal::Int(v) => Some(*v),
            ConstVal::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// The string value, if this is a string constant.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ConstVal::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// The base storage a [`Place`] refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlaceBase {
    /// A function-local stack slot.
    Slot(SlotId),
    /// A module global.
    Global(GlobalId),
    /// Memory reached through a pointer-typed SSA value (`*p`, `p->f`).
    ValuePtr(ValueId),
}

/// One projection step applied to a place.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlaceElem {
    /// Struct field by resolved index.
    Field(u32),
    /// Array element by constant index.
    IndexConst(u32),
    /// Array element by dynamic index.
    IndexValue(ValueId),
    /// Extra pointer indirection (e.g. `*(o->var)` stores through the
    /// pointer stored in a field).
    Deref,
}

/// A memory location: a base plus a projection path. Field-sensitivity of
/// the data-flow engine (§2.2 of the paper) keys on this representation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Place {
    /// Base storage.
    pub base: PlaceBase,
    /// Projection path, outermost first.
    pub elems: Vec<PlaceElem>,
}

impl Place {
    /// A place for a whole slot.
    pub fn slot(s: SlotId) -> Self {
        Place {
            base: PlaceBase::Slot(s),
            elems: Vec::new(),
        }
    }

    /// A place for a whole global.
    pub fn global(g: GlobalId) -> Self {
        Place {
            base: PlaceBase::Global(g),
            elems: Vec::new(),
        }
    }

    /// A place dereferencing a pointer value.
    pub fn deref_value(v: ValueId) -> Self {
        Place {
            base: PlaceBase::ValuePtr(v),
            elems: Vec::new(),
        }
    }

    /// Whether the place is exactly one unprojected slot.
    pub fn as_plain_slot(&self) -> Option<SlotId> {
        match (self.base, self.elems.is_empty()) {
            (PlaceBase::Slot(s), true) => Some(s),
            _ => None,
        }
    }

    /// Values used by the projection path and base.
    pub fn operand_values(&self) -> Vec<ValueId> {
        let mut out = Vec::new();
        if let PlaceBase::ValuePtr(v) = self.base {
            out.push(v);
        }
        for e in &self.elems {
            if let PlaceElem::IndexValue(v) = e {
                out.push(*v);
            }
        }
        out
    }
}

/// What a call targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Callee {
    /// A function defined in the module.
    Func(FuncId),
    /// A known library/system call.
    Builtin(Builtin),
    /// A call through a function-pointer value.
    Indirect(ValueId),
}

/// A non-terminator instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Materialises a constant.
    Const {
        /// Defined value.
        dst: ValueId,
        /// The constant.
        val: ConstVal,
    },
    /// Materialises the `index`-th function parameter at entry.
    Param {
        /// Defined value.
        dst: ValueId,
        /// Zero-based parameter index.
        index: u32,
    },
    /// Loads from memory.
    Load {
        /// Defined value.
        dst: ValueId,
        /// Source location.
        place: Place,
    },
    /// Stores to memory.
    Store {
        /// Destination location.
        place: Place,
        /// Stored value.
        value: ValueId,
    },
    /// Takes the address of a place.
    AddrOf {
        /// Defined (pointer) value.
        dst: ValueId,
        /// Addressed location.
        place: Place,
    },
    /// Binary operation (arithmetic, bitwise, comparison).
    Bin {
        /// Defined value.
        dst: ValueId,
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: ValueId,
        /// Right operand.
        rhs: ValueId,
    },
    /// Unary operation.
    Un {
        /// Defined value.
        dst: ValueId,
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: ValueId,
    },
    /// Type cast/conversion.
    Cast {
        /// Defined value.
        dst: ValueId,
        /// Target type.
        ty: CType,
        /// Operand.
        operand: ValueId,
    },
    /// Function or builtin call.
    Call {
        /// Result value (`None` for void calls).
        dst: Option<ValueId>,
        /// Call target.
        callee: Callee,
        /// Arguments in order.
        args: Vec<ValueId>,
    },
    /// SSA phi node (present only after promotion).
    Phi {
        /// Defined value.
        dst: ValueId,
        /// `(predecessor block, incoming value)` pairs.
        incomings: Vec<(BlockId, ValueId)>,
    },
}

impl Instr {
    /// The value defined by this instruction, if any.
    pub fn def(&self) -> Option<ValueId> {
        match self {
            Instr::Const { dst, .. }
            | Instr::Param { dst, .. }
            | Instr::Load { dst, .. }
            | Instr::AddrOf { dst, .. }
            | Instr::Bin { dst, .. }
            | Instr::Un { dst, .. }
            | Instr::Cast { dst, .. }
            | Instr::Phi { dst, .. } => Some(*dst),
            Instr::Call { dst, .. } => *dst,
            Instr::Store { .. } => None,
        }
    }

    /// All value operands read by this instruction.
    pub fn uses(&self) -> Vec<ValueId> {
        match self {
            Instr::Const { .. } | Instr::Param { .. } => Vec::new(),
            Instr::Load { place, .. } | Instr::AddrOf { place, .. } => place.operand_values(),
            Instr::Store { place, value } => {
                let mut v = place.operand_values();
                v.push(*value);
                v
            }
            Instr::Bin { lhs, rhs, .. } => vec![*lhs, *rhs],
            Instr::Un { operand, .. } | Instr::Cast { operand, .. } => vec![*operand],
            Instr::Call { callee, args, .. } => {
                let mut v = Vec::new();
                if let Callee::Indirect(f) = callee {
                    v.push(*f);
                }
                v.extend(args.iter().copied());
                v
            }
            Instr::Phi { incomings, .. } => incomings.iter().map(|(_, v)| *v).collect(),
        }
    }

    /// Rewrites every value operand through `map`.
    pub fn map_uses(&mut self, map: &mut impl FnMut(ValueId) -> ValueId) {
        let map_place = |place: &mut Place, map: &mut dyn FnMut(ValueId) -> ValueId| {
            if let PlaceBase::ValuePtr(v) = &mut place.base {
                *v = map(*v);
            }
            for e in &mut place.elems {
                if let PlaceElem::IndexValue(v) = e {
                    *v = map(*v);
                }
            }
        };
        match self {
            Instr::Const { .. } | Instr::Param { .. } => {}
            Instr::Load { place, .. } | Instr::AddrOf { place, .. } => map_place(place, map),
            Instr::Store { place, value } => {
                map_place(place, map);
                *value = map(*value);
            }
            Instr::Bin { lhs, rhs, .. } => {
                *lhs = map(*lhs);
                *rhs = map(*rhs);
            }
            Instr::Un { operand, .. } | Instr::Cast { operand, .. } => *operand = map(*operand),
            Instr::Call { callee, args, .. } => {
                if let Callee::Indirect(f) = callee {
                    *f = map(*f);
                }
                for a in args {
                    *a = map(*a);
                }
            }
            Instr::Phi { incomings, .. } => {
                for (_, v) in incomings {
                    *v = map(*v);
                }
            }
        }
    }
}

/// A block terminator.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Br(BlockId),
    /// Two-way conditional branch.
    CondBr {
        /// Condition value (nonzero = then).
        cond: ValueId,
        /// Target when true.
        then_bb: BlockId,
        /// Target when false.
        else_bb: BlockId,
    },
    /// Multi-way switch on an integer value.
    Switch {
        /// Scrutinee.
        value: ValueId,
        /// `(constant, target)` arms.
        cases: Vec<(i64, BlockId)>,
        /// Default target.
        default: BlockId,
    },
    /// Function return.
    Ret(Option<ValueId>),
    /// Unreachable (e.g. after `exit`).
    Unreachable,
}

impl Terminator {
    /// Successor blocks in order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Br(b) => vec![*b],
            Terminator::CondBr {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Switch { cases, default, .. } => {
                let mut v: Vec<BlockId> = cases.iter().map(|(_, b)| *b).collect();
                v.push(*default);
                v
            }
            Terminator::Ret(_) | Terminator::Unreachable => Vec::new(),
        }
    }

    /// Value operands read by the terminator.
    pub fn uses(&self) -> Vec<ValueId> {
        match self {
            Terminator::CondBr { cond, .. } => vec![*cond],
            Terminator::Switch { value, .. } => vec![*value],
            Terminator::Ret(Some(v)) => vec![*v],
            _ => Vec::new(),
        }
    }

    /// Rewrites every value operand through `map`.
    pub fn map_uses(&mut self, map: &mut impl FnMut(ValueId) -> ValueId) {
        match self {
            Terminator::CondBr { cond, .. } => *cond = map(*cond),
            Terminator::Switch { value, .. } => *value = map(*value),
            Terminator::Ret(Some(v)) => *v = map(*v),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_of_array() {
        let z = ConstVal::zero_of(&CType::Array(Box::new(CType::int()), 3), &[]);
        assert_eq!(
            z,
            ConstVal::Aggregate(vec![ConstVal::Int(0), ConstVal::Int(0), ConstVal::Int(0)])
        );
    }

    #[test]
    fn instr_def_and_uses() {
        let i = Instr::Bin {
            dst: ValueId(2),
            op: BinOp::Add,
            lhs: ValueId(0),
            rhs: ValueId(1),
        };
        assert_eq!(i.def(), Some(ValueId(2)));
        assert_eq!(i.uses(), vec![ValueId(0), ValueId(1)]);
    }

    #[test]
    fn store_has_no_def() {
        let i = Instr::Store {
            place: Place::slot(SlotId(0)),
            value: ValueId(5),
        };
        assert_eq!(i.def(), None);
        assert_eq!(i.uses(), vec![ValueId(5)]);
    }

    #[test]
    fn place_operands_include_dynamic_index_and_base() {
        let p = Place {
            base: PlaceBase::ValuePtr(ValueId(1)),
            elems: vec![PlaceElem::Field(0), PlaceElem::IndexValue(ValueId(2))],
        };
        assert_eq!(p.operand_values(), vec![ValueId(1), ValueId(2)]);
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::Switch {
            value: ValueId(0),
            cases: vec![(1, BlockId(1)), (2, BlockId(2))],
            default: BlockId(3),
        };
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(2), BlockId(3)]);
        assert_eq!(Terminator::Ret(None).successors(), vec![]);
    }

    #[test]
    fn map_uses_rewrites_operands() {
        let mut i = Instr::Call {
            dst: Some(ValueId(9)),
            callee: Callee::Indirect(ValueId(1)),
            args: vec![ValueId(2), ValueId(3)],
        };
        i.map_uses(&mut |v| ValueId(v.0 + 10));
        assert_eq!(i.uses(), vec![ValueId(11), ValueId(12), ValueId(13)]);
    }
}
