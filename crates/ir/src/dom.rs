//! Dominator tree and dominance frontiers.
//!
//! Implements the Cooper–Harvey–Kennedy "engineered" dominance algorithm on
//! reverse postorder, plus the standard dominance-frontier computation used
//! by the SSA construction pass and by SPEX's control-dependency inference.

use crate::cfg::Cfg;
use crate::module::{BlockId, Function};

/// Immediate-dominator tree and dominance frontiers for one function.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator of each block (`None` for the entry and for
    /// unreachable blocks).
    pub idom: Vec<Option<BlockId>>,
    /// Dominance frontier of each block.
    pub frontier: Vec<Vec<BlockId>>,
    /// Children in the dominator tree.
    pub children: Vec<Vec<BlockId>>,
}

impl DomTree {
    /// Computes dominators and frontiers for `f` using its CFG.
    pub fn build(f: &Function, cfg: &Cfg) -> DomTree {
        let n = f.blocks.len();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        if !cfg.rpo.is_empty() {
            idom[cfg.rpo[0].index()] = Some(cfg.rpo[0]);
            let mut changed = true;
            while changed {
                changed = false;
                for &b in cfg.rpo.iter().skip(1) {
                    let mut new_idom: Option<BlockId> = None;
                    for &p in &cfg.preds[b.index()] {
                        if idom[p.index()].is_none() {
                            continue; // Unprocessed or unreachable.
                        }
                        new_idom = Some(match new_idom {
                            None => p,
                            Some(cur) => intersect(p, cur, &idom, &cfg.rpo_index),
                        });
                    }
                    if let Some(ni) = new_idom {
                        if idom[b.index()] != Some(ni) {
                            idom[b.index()] = Some(ni);
                            changed = true;
                        }
                    }
                }
            }
            // By convention the entry has no immediate dominator.
            idom[cfg.rpo[0].index()] = None;
        }

        // Dominance frontiers (Cooper et al.): for each join point, walk up
        // from each predecessor to the idom of the join.
        let mut frontier = vec![Vec::new(); n];
        for b in 0..n {
            let bid = BlockId(b as u32);
            if !cfg.is_reachable(bid) || cfg.preds[b].len() < 2 {
                continue;
            }
            let b_idom = idom[b];
            for &p in &cfg.preds[b] {
                if !cfg.is_reachable(p) {
                    continue;
                }
                let mut runner = Some(p);
                while let Some(r) = runner {
                    if Some(r) == b_idom {
                        break;
                    }
                    if !frontier[r.index()].contains(&bid) {
                        frontier[r.index()].push(bid);
                    }
                    runner = idom[r.index()];
                    if runner == Some(r) {
                        break;
                    }
                }
            }
        }

        let mut children = vec![Vec::new(); n];
        for (b, d) in idom.iter().enumerate() {
            if let Some(d) = d {
                children[d.index()].push(BlockId(b as u32));
            }
        }
        DomTree {
            idom,
            frontier,
            children,
        }
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = Some(b);
        while let Some(c) = cur {
            if c == a {
                return true;
            }
            cur = self.idom[c.index()];
        }
        false
    }

    /// Blocks dominating `b`, from `b` up to the entry (inclusive of `b`).
    pub fn dominators_of(&self, b: BlockId) -> Vec<BlockId> {
        let mut out = vec![b];
        let mut cur = self.idom[b.index()];
        while let Some(c) = cur {
            out.push(c);
            cur = self.idom[c.index()];
        }
        out
    }
}

fn intersect(
    mut a: BlockId,
    mut b: BlockId,
    idom: &[Option<BlockId>],
    rpo_index: &[usize],
) -> BlockId {
    while a != b {
        while rpo_index[a.index()] > rpo_index[b.index()] {
            a = idom[a.index()].expect("processed block has idom");
        }
        while rpo_index[b.index()] > rpo_index[a.index()] {
            b = idom[b.index()].expect("processed block has idom");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower_program;

    fn dom_of(src: &str, func: &str) -> (std::sync::Arc<crate::module::Function>, Cfg, DomTree) {
        let p = spex_lang::parse_program(src).unwrap();
        let m = lower_program(&p).unwrap();
        let id = m.function_by_name(func).unwrap();
        let f = m.functions[id.index()].clone();
        let cfg = Cfg::build(&f);
        let dom = DomTree::build(&f, &cfg);
        (f, cfg, dom)
    }

    #[test]
    fn entry_dominates_everything_reachable() {
        let (_, cfg, dom) = dom_of(
            "int f(int x) { if (x > 0) { x = 1; } while (x < 9) { x += 1; } return x; }",
            "f",
        );
        for &b in &cfg.rpo {
            assert!(dom.dominates(BlockId(0), b), "entry must dominate {b}");
        }
    }

    #[test]
    fn branch_arms_do_not_dominate_join() {
        let (_, cfg, dom) = dom_of(
            "int f(int x) { if (x > 0) { x = 1; } else { x = 2; } return x; }",
            "f",
        );
        let then_bb = cfg.succs[0][0];
        let join = cfg.succs[then_bb.index()][0];
        assert!(!dom.dominates(then_bb, join));
        assert!(dom.dominates(BlockId(0), join));
        // The join is in the frontier of both arms.
        assert!(dom.frontier[then_bb.index()].contains(&join));
    }

    #[test]
    fn idom_of_entry_is_none() {
        let (_, _, dom) = dom_of("int f() { return 0; }", "f");
        assert_eq!(dom.idom[0], None);
    }

    #[test]
    fn loop_header_dominates_body() {
        let (_, cfg, dom) = dom_of("int f(int x) { while (x > 0) { x -= 1; } return x; }", "f");
        // Find the header: a reachable block with two predecessors.
        let header = (0..cfg.preds.len())
            .map(|i| BlockId(i as u32))
            .find(|b| cfg.is_reachable(*b) && cfg.preds[b.index()].len() == 2)
            .expect("loop has a header");
        let body = cfg.succs[header.index()][0];
        assert!(dom.dominates(header, body));
        // The header is its own frontier (back edge).
        assert!(dom.frontier[body.index()].contains(&header));
    }

    #[test]
    fn dominators_of_walks_to_entry() {
        let (_, cfg, dom) = dom_of("int f(int x) { if (x > 0) { x = 1; } return x; }", "f");
        let join = *cfg.rpo.last().unwrap();
        let doms = dom.dominators_of(join);
        assert_eq!(doms[0], join);
        assert_eq!(*doms.last().unwrap(), BlockId(0));
    }
}
