//! `mem2reg`-style SSA construction.
//!
//! Promotes eligible stack slots (scalar type, address never taken, never
//! accessed through a projection) to SSA values, inserting phi nodes at
//! iterated dominance frontiers and renaming uses along the dominator tree —
//! the same pipeline LLVM applies before SPEX's analyses run (§2.3 of the
//! paper).

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::instr::{ConstVal, Instr, PlaceBase, Terminator};
use crate::module::{BlockId, Function, SlotId, ValueId};
use spex_lang::diag::Span;
use std::collections::{HashMap, HashSet};

/// Returns a copy of `f` in SSA form.
///
/// The original function is left untouched (the interpreter executes the
/// pre-SSA form); analyses use the returned function.
pub fn promote_to_ssa(f: &Function) -> Function {
    let mut f = f.body_copy();
    let cfg = Cfg::build(&f);
    let dom = DomTree::build(&f, &cfg);

    let promotable = find_promotable_slots(&f);
    if promotable.is_empty() {
        f.is_ssa = true;
        return f;
    }

    // Blocks containing a store to each promotable slot.
    let mut def_blocks: HashMap<SlotId, HashSet<BlockId>> = HashMap::new();
    for (b, _, instr, _) in f.iter_instrs() {
        if let Instr::Store { place, .. } = instr {
            if let Some(s) = place.as_plain_slot() {
                if promotable.contains(&s) {
                    def_blocks.entry(s).or_default().insert(b);
                }
            }
        }
    }

    // Phi placement at iterated dominance frontiers.
    let mut phi_sites: HashMap<BlockId, Vec<(SlotId, ValueId)>> = HashMap::new();
    for &slot in &promotable {
        let mut work: Vec<BlockId> = def_blocks
            .get(&slot)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        let mut placed: HashSet<BlockId> = HashSet::new();
        while let Some(b) = work.pop() {
            for &df in &dom.frontier[b.index()] {
                if placed.insert(df) {
                    let ty = f.slots[slot.index()].ty.clone();
                    f.value_types.push(ty);
                    let phi = ValueId((f.value_types.len() - 1) as u32);
                    phi_sites.entry(df).or_default().push((slot, phi));
                    if !def_blocks
                        .get(&slot)
                        .map(|s| s.contains(&df))
                        .unwrap_or(false)
                    {
                        work.push(df);
                    }
                }
            }
        }
    }

    let mut renamer = Renamer {
        f: &mut f,
        promotable: &promotable,
        phi_sites: &phi_sites,
        cfg: &cfg,
        replace: HashMap::new(),
        phi_edges: HashMap::new(),
        undef_cache: HashMap::new(),
    };
    let mut stacks: HashMap<SlotId, Vec<ValueId>> = HashMap::new();
    renamer.rename_block(BlockId(0), &dom, &mut stacks);
    let replace = std::mem::take(&mut renamer.replace);
    let phi_edges = std::mem::take(&mut renamer.phi_edges);

    apply_rewrites(&mut f, &phi_sites, &replace, &phi_edges, &promotable);
    f.is_ssa = true;
    f
}

/// Slots that can be promoted: scalar type and never address-taken.
fn find_promotable_slots(f: &Function) -> HashSet<SlotId> {
    let mut promotable: HashSet<SlotId> = (0..f.slots.len())
        .map(|i| SlotId(i as u32))
        .filter(|s| f.slots[s.index()].ty.is_scalar())
        .collect();
    for (_, _, instr, _) in f.iter_instrs() {
        match instr {
            Instr::AddrOf { place, .. } => {
                if let PlaceBase::Slot(s) = place.base {
                    promotable.remove(&s);
                }
            }
            Instr::Load { place, .. } | Instr::Store { place, .. } => {
                // Projected access (array element of a local, etc.) blocks
                // promotion of the base slot.
                if let PlaceBase::Slot(s) = place.base {
                    if !place.elems.is_empty() {
                        promotable.remove(&s);
                    }
                }
            }
            _ => {}
        }
    }
    promotable
}

struct Renamer<'a> {
    f: &'a mut Function,
    promotable: &'a HashSet<SlotId>,
    phi_sites: &'a HashMap<BlockId, Vec<(SlotId, ValueId)>>,
    cfg: &'a Cfg,
    /// Value substitution accumulated from removed loads.
    replace: HashMap<ValueId, ValueId>,
    /// Incoming edges collected for each phi value.
    phi_edges: HashMap<ValueId, Vec<(BlockId, ValueId)>>,
    /// Lazily created zero constants per slot (reads before writes).
    undef_cache: HashMap<SlotId, ValueId>,
}

impl Renamer<'_> {
    fn rename_block(
        &mut self,
        b: BlockId,
        dom: &DomTree,
        stacks: &mut HashMap<SlotId, Vec<ValueId>>,
    ) {
        let mut pushed: Vec<SlotId> = Vec::new();

        // Phis defined in this block become the current definition.
        if let Some(phis) = self.phi_sites.get(&b) {
            for &(slot, phi) in phis {
                stacks.entry(slot).or_default().push(phi);
                pushed.push(slot);
            }
        }

        for i in 0..self.f.blocks[b.index()].instrs.len() {
            let (instr, _) = self.f.blocks[b.index()].instrs[i].clone();
            match instr {
                Instr::Load { dst, place } => {
                    if let Some(s) = place.as_plain_slot() {
                        if self.promotable.contains(&s) {
                            let cur = self.current_def(s, stacks);
                            self.replace.insert(dst, cur);
                        }
                    }
                }
                Instr::Store { place, value } => {
                    if let Some(s) = place.as_plain_slot() {
                        if self.promotable.contains(&s) {
                            let v = self.resolve(value);
                            stacks.entry(s).or_default().push(v);
                            pushed.push(s);
                        }
                    }
                }
                _ => {}
            }
        }

        // Fill phi operands of CFG successors.
        for si in 0..self.cfg.succs[b.index()].len() {
            let succ = self.cfg.succs[b.index()][si];
            if let Some(phis) = self.phi_sites.get(&succ) {
                let pairs: Vec<(SlotId, ValueId)> = phis.clone();
                for (slot, phi) in pairs {
                    let cur = self.current_def(slot, stacks);
                    self.phi_edges.entry(phi).or_default().push((b, cur));
                }
            }
        }

        let children = dom.children[b.index()].clone();
        for c in children {
            self.rename_block(c, dom, stacks);
        }

        for s in pushed {
            stacks.get_mut(&s).expect("pushed slot has stack").pop();
        }
    }

    fn resolve(&self, v: ValueId) -> ValueId {
        let mut cur = v;
        let mut guard = 0usize;
        while let Some(&next) = self.replace.get(&cur) {
            if next == cur || guard > self.replace.len() {
                break;
            }
            cur = next;
            guard += 1;
        }
        cur
    }

    fn current_def(&mut self, slot: SlotId, stacks: &HashMap<SlotId, Vec<ValueId>>) -> ValueId {
        if let Some(v) = stacks.get(&slot).and_then(|s| s.last()) {
            return self.resolve(*v);
        }
        // Read before any write: synthesize a zero constant in the entry
        // block.
        if let Some(&v) = self.undef_cache.get(&slot) {
            return v;
        }
        let ty = self.f.slots[slot.index()].ty.clone();
        self.f.value_types.push(ty);
        let v = ValueId((self.f.value_types.len() - 1) as u32);
        self.f.blocks[0].instrs.insert(
            0,
            (
                Instr::Const {
                    dst: v,
                    val: ConstVal::Int(0),
                },
                Span::unknown(),
            ),
        );
        self.undef_cache.insert(slot, v);
        v
    }
}

fn apply_rewrites(
    f: &mut Function,
    phi_sites: &HashMap<BlockId, Vec<(SlotId, ValueId)>>,
    replace: &HashMap<ValueId, ValueId>,
    phi_edges: &HashMap<ValueId, Vec<(BlockId, ValueId)>>,
    promotable: &HashSet<SlotId>,
) {
    let resolve = |v: ValueId| {
        let mut cur = v;
        let mut guard = 0usize;
        while let Some(&next) = replace.get(&cur) {
            if next == cur || guard > replace.len() {
                break;
            }
            cur = next;
            guard += 1;
        }
        cur
    };

    for blk in &mut f.blocks {
        blk.instrs.retain(|(instr, _)| match instr {
            Instr::Load { place, .. } | Instr::Store { place, .. } => place
                .as_plain_slot()
                .map(|s| !promotable.contains(&s))
                .unwrap_or(true),
            _ => true,
        });
        for (instr, _) in &mut blk.instrs {
            instr.map_uses(&mut |v| resolve(v));
        }
        blk.term.0.map_uses(&mut |v| resolve(v));
        let _ = &blk.term.0 as &Terminator;
    }
    for (&b, phis) in phi_sites {
        for &(_, phi) in phis {
            let incomings: Vec<(BlockId, ValueId)> = phi_edges
                .get(&phi)
                .map(|edges| edges.iter().map(|&(b, v)| (b, resolve(v))).collect())
                .unwrap_or_default();
            f.blocks[b.index()].instrs.insert(
                0,
                (
                    Instr::Phi {
                        dst: phi,
                        incomings,
                    },
                    Span::unknown(),
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower_program;

    fn ssa_of(src: &str, func: &str) -> Function {
        let p = spex_lang::parse_program(src).unwrap();
        let m = lower_program(&p).unwrap();
        let id = m.function_by_name(func).unwrap();
        promote_to_ssa(&m.functions[id.index()])
    }

    fn count_phis(f: &Function) -> usize {
        f.iter_instrs()
            .filter(|(_, _, i, _)| matches!(i, Instr::Phi { .. }))
            .count()
    }

    fn count_slot_memops(f: &Function) -> usize {
        f.iter_instrs()
            .filter(|(_, _, i, _)| match i {
                Instr::Load { place, .. } | Instr::Store { place, .. } => {
                    matches!(place.base, PlaceBase::Slot(_))
                }
                _ => false,
            })
            .count()
    }

    #[test]
    fn straight_line_promotes_without_phis() {
        let f = ssa_of("int f(int x) { int y = x + 1; return y; }", "f");
        assert!(f.is_ssa);
        assert_eq!(count_phis(&f), 0);
        assert_eq!(count_slot_memops(&f), 0);
    }

    #[test]
    fn diamond_inserts_phi_at_join() {
        let f = ssa_of(
            "int f(int x) { int y = 0; if (x > 0) { y = 1; } else { y = 2; } return y; }",
            "f",
        );
        assert!(count_phis(&f) >= 1);
        assert_eq!(count_slot_memops(&f), 0);
        // Every phi has exactly two incoming edges here.
        for (_, _, i, _) in f.iter_instrs() {
            if let Instr::Phi { incomings, .. } = i {
                assert_eq!(incomings.len(), 2, "phi has two incomings");
            }
        }
    }

    #[test]
    fn loop_variable_gets_header_phi() {
        let f = ssa_of(
            "int f(int n) { int i = 0; while (i < n) { i += 1; } return i; }",
            "f",
        );
        assert!(count_phis(&f) >= 1);
        assert_eq!(count_slot_memops(&f), 0);
    }

    #[test]
    fn address_taken_slot_is_not_promoted() {
        let f = ssa_of(
            "void g(int* p) { }
             int f() { int x = 3; g(&x); return x; }",
            "f",
        );
        // x stays in memory: at least one load/store remains.
        assert!(count_slot_memops(&f) > 0);
    }

    #[test]
    fn array_local_is_not_promoted() {
        let f = ssa_of("int f() { int a[4]; a[0] = 1; return a[0]; }", "f");
        assert!(count_slot_memops(&f) > 0);
    }

    #[test]
    fn ssa_single_assignment_invariant() {
        let f = ssa_of(
            "int f(int x) { int y = 0; if (x > 0) { y = x; } else { y = -x; } \
             while (y > 10) { y -= 1; } return y; }",
            "f",
        );
        let mut defs = HashSet::new();
        for (_, _, i, _) in f.iter_instrs() {
            if let Some(d) = i.def() {
                assert!(defs.insert(d), "value {d} defined twice");
            }
        }
    }

    #[test]
    fn uses_are_defined_values() {
        let f = ssa_of(
            "int f(int x) { int y = x; if (x > 2) { y = y * 2; } return y + 1; }",
            "f",
        );
        let defs: HashSet<ValueId> = f.iter_instrs().filter_map(|(_, _, i, _)| i.def()).collect();
        for (_, _, i, _) in f.iter_instrs() {
            for u in i.uses() {
                assert!(defs.contains(&u), "use of undefined value {u}");
            }
        }
    }

    #[test]
    fn ternary_becomes_phi() {
        let f = ssa_of("int f(int a) { return a > 0 ? a : -a; }", "f");
        assert!(count_phis(&f) >= 1);
        assert_eq!(count_slot_memops(&f), 0);
    }

    #[test]
    fn logical_and_value_becomes_phi() {
        let f = ssa_of("int f(int a, int b) { int ok = a && b; return ok; }", "f");
        assert!(count_phis(&f) >= 1);
    }
}
