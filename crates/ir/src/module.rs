//! Module, function, block and identifier types.

use crate::instr::{ConstVal, Instr, Terminator};
use spex_lang::diag::Span;
use spex_lang::types::CType;
use std::collections::HashMap;
use std::sync::Arc;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// The id as a usize index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}{}", stringify!($name).chars().next().unwrap().to_ascii_lowercase(), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a function within a [`Module`].
    FuncId
);
id_type!(
    /// Identifies a basic block within a [`Function`].
    BlockId
);
id_type!(
    /// Identifies an SSA value / virtual register within a [`Function`].
    ValueId
);
id_type!(
    /// Identifies a stack slot (local variable storage) within a [`Function`].
    SlotId
);
id_type!(
    /// Identifies a global variable within a [`Module`].
    GlobalId
);

/// A lowered translation unit.
#[derive(Debug, Default)]
pub struct Module {
    /// Struct layouts: name plus ordered `(field name, field type)` pairs.
    pub structs: Vec<StructLayout>,
    /// Global variables with resolved constant initializers.
    pub globals: Vec<GlobalVar>,
    /// Functions, shared: an unchanged function is the *same* allocation
    /// across module generations, so rebuilding a module for an edit costs
    /// one refcount bump per untouched body.
    pub functions: Vec<Arc<Function>>,
    /// Flattened enum constants (`variant name` → value).
    pub enum_consts: HashMap<String, i64>,
    /// How many times this module lineage has been cloned (shared by every
    /// clone; see [`Module::clone_count`]).
    clones: Arc<std::sync::atomic::AtomicUsize>,
}

/// Cloning a module copies its tables but only bumps refcounts on the
/// shared function bodies. The lineage counter still ticks — the workspace
/// regression tests and benchmarks assert it stays flat across warm
/// re-analyses, and [`Function::clone_count`] separately guards the
/// bodies themselves.
impl Clone for Module {
    fn clone(&self) -> Module {
        self.clones
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Module {
            structs: self.structs.clone(),
            globals: self.globals.clone(),
            functions: self.functions.clone(),
            enum_consts: self.enum_consts.clone(),
            clones: Arc::clone(&self.clones),
        }
    }
}

impl Module {
    /// Assembles a module from its parts (a fresh lineage: the clone
    /// counter starts at zero).
    pub fn from_parts(
        structs: Vec<StructLayout>,
        globals: Vec<GlobalVar>,
        functions: Vec<Arc<Function>>,
        enum_consts: HashMap<String, i64>,
    ) -> Module {
        Module {
            structs,
            globals,
            functions,
            enum_consts,
            clones: Arc::default(),
        }
    }

    /// How many times this module — or any module in its clone lineage —
    /// has been deep-cloned. Incremental callers keep the stored module
    /// behind an `Arc` and are expected to keep this flat.
    pub fn clone_count(&self) -> usize {
        self.clones.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Total deep clones across every function body this module holds
    /// (each is lineage-shared; see [`Function::clone_count`]). Warm
    /// re-analysis paths are expected to keep this at zero.
    pub fn function_clones(&self) -> usize {
        self.functions.iter().map(|f| f.clone_count()).sum()
    }

    /// Looks up a function id by name.
    pub fn function_by_name(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Looks up a global id by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter()
            .position(|g| g.name == name)
            .map(|i| GlobalId(i as u32))
    }

    /// Looks up a struct layout by name.
    pub fn struct_layout(&self, name: &str) -> Option<&StructLayout> {
        self.structs.iter().find(|s| s.name == name)
    }

    /// The function for an id.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// The global for an id.
    pub fn global(&self, id: GlobalId) -> &GlobalVar {
        &self.globals[id.index()]
    }
}

/// A struct layout.
#[derive(Debug, Clone)]
pub struct StructLayout {
    /// Struct tag name.
    pub name: String,
    /// Ordered fields.
    pub fields: Vec<(String, CType)>,
}

impl StructLayout {
    /// Index of the field called `name`.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|(n, _)| n == name)
    }
}

/// A global variable with its resolved initializer.
#[derive(Debug, Clone)]
pub struct GlobalVar {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: CType,
    /// Initializer (zero-filled when the source had none).
    pub init: ConstVal,
    /// Declaration site.
    pub span: Span,
}

/// Information about one stack slot.
#[derive(Debug, Clone)]
pub struct SlotInfo {
    /// Source-level variable name.
    pub name: String,
    /// Slot type.
    pub ty: CType,
}

/// A basic block: straight-line instructions plus one terminator.
#[derive(Debug, Clone)]
pub struct Block {
    /// Instructions with their source locations.
    pub instrs: Vec<(Instr, Span)>,
    /// Block terminator with its source location.
    pub term: (Terminator, Span),
}

impl Block {
    /// An empty block ending in `Unreachable` (patched during lowering).
    pub fn new() -> Self {
        Block {
            instrs: Vec::new(),
            term: (Terminator::Unreachable, Span::unknown()),
        }
    }
}

impl Default for Block {
    fn default() -> Self {
        Self::new()
    }
}

/// A lowered function.
#[derive(Debug)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: CType,
    /// Parameters: `(name, type, backing slot)`. At entry each parameter
    /// value is materialised with [`Instr::Param`] and stored to its slot.
    pub params: Vec<(String, CType, SlotId)>,
    /// All stack slots (parameters first, then locals in declaration order).
    pub slots: Vec<SlotInfo>,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<Block>,
    /// Type of every SSA value, indexed by [`ValueId`].
    pub value_types: Vec<CType>,
    /// Whether [`crate::ssa::promote_to_ssa`] has run on this body.
    pub is_ssa: bool,
    /// Definition site.
    pub span: Span,
    /// How many times this body lineage has been cloned (shared by every
    /// clone; see [`Function::clone_count`]).
    pub(crate) clones: Arc<std::sync::atomic::AtomicUsize>,
}

/// Cloning a function copies its whole body — with modules holding
/// `Arc<Function>`, nothing on the warm re-analysis path should ever need
/// to — so each clone ticks a lineage-shared counter that the zero-copy
/// regression tests assert stays at zero across warm generations.
/// Deliberate body materialisation (SSA promotion) goes through
/// [`Function::body_copy`] instead, which does not tick.
impl Clone for Function {
    fn clone(&self) -> Function {
        self.clones
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Function {
            clones: Arc::clone(&self.clones),
            ..self.body_copy()
        }
    }
}

impl Function {
    /// How many times this function — or any function in its clone
    /// lineage — has been deep-cloned via `Clone`.
    pub fn clone_count(&self) -> usize {
        self.clones.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// A deep copy starting a fresh, untracked lineage — for deliberate
    /// transformations that materialise a new body (SSA promotion), as
    /// opposed to accidental copies the zero-copy counters exist to catch.
    pub fn body_copy(&self) -> Function {
        Function {
            name: self.name.clone(),
            ret: self.ret.clone(),
            params: self.params.clone(),
            slots: self.slots.clone(),
            blocks: self.blocks.clone(),
            value_types: self.value_types.clone(),
            is_ssa: self.is_ssa,
            span: self.span,
            clones: Arc::default(),
        }
    }
    /// The entry block id.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// The type of a value.
    pub fn value_type(&self, v: ValueId) -> &CType {
        &self.value_types[v.index()]
    }

    /// Number of SSA values.
    pub fn num_values(&self) -> usize {
        self.value_types.len()
    }

    /// Iterates over `(block id, instruction index, instruction, span)` for
    /// every instruction in the function.
    pub fn iter_instrs(&self) -> impl Iterator<Item = (BlockId, usize, &Instr, Span)> {
        self.blocks.iter().enumerate().flat_map(|(b, blk)| {
            blk.instrs
                .iter()
                .enumerate()
                .map(move |(i, (instr, span))| (BlockId(b as u32), i, instr, *span))
        })
    }

    /// Finds the block and index where a value is defined, if any.
    pub fn def_site(&self, v: ValueId) -> Option<(BlockId, usize)> {
        for (b, i, instr, _) in self.iter_instrs() {
            if instr.def() == Some(v) {
                return Some((b, i));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_display() {
        assert_eq!(FuncId(3).to_string(), "f3");
        assert_eq!(BlockId(0).to_string(), "b0");
        assert_eq!(ValueId(12).to_string(), "v12");
    }

    #[test]
    fn struct_layout_lookup() {
        let s = StructLayout {
            name: "opt".into(),
            fields: vec![
                ("name".into(), CType::string()),
                ("var".into(), CType::Ptr(Box::new(CType::int()))),
            ],
        };
        assert_eq!(s.field_index("var"), Some(1));
        assert_eq!(s.field_index("missing"), None);
    }

    #[test]
    fn module_lookups_empty() {
        let m = Module::default();
        assert!(m.function_by_name("f").is_none());
        assert!(m.global_by_name("g").is_none());
    }
}
