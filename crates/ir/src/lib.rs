//! Intermediate representation for the SPEX reproduction.
//!
//! The original SPEX runs on LLVM IR, "a generic assembly language in the
//! static single assignment (SSA) form" (§2.3 of the paper). This crate is
//! the equivalent substrate: a typed, CFG-based IR with stack slots
//! (`alloca`-style), a lowering pass from the [`spex_lang`] AST, dominator
//! and dominance-frontier computation, and a `mem2reg`-style SSA promotion
//! pass.
//!
//! Two consumers share one lowering:
//! * the static analyses (`spex-dataflow`, `spex-core`) run on the SSA form,
//! * the injection-testing interpreter (`spex-vm`) executes the pre-SSA form
//!   where locals are memory slots.
//!
//! # Examples
//!
//! ```
//! use spex_ir::lower_program;
//!
//! let program = spex_lang::parse_program(
//!     "int threshold = 10;
//!      int check(int v) { if (v > threshold) { return 1; } return 0; }",
//! )
//! .unwrap();
//! let module = lower_program(&program).unwrap();
//! let f = module.function_by_name("check").unwrap();
//! assert!(module.functions[f.0 as usize].blocks.len() >= 3);
//! ```

pub mod cfg;
pub mod dom;
pub mod instr;
pub mod lower;
pub mod module;
pub mod printer;
pub mod ssa;
pub mod verify;

pub use instr::{Callee, ConstVal, Instr, Place, PlaceBase, PlaceElem, Terminator};
pub use lower::lower_program;
pub use module::{Block, BlockId, FuncId, Function, GlobalId, GlobalVar, Module, SlotId, ValueId};
pub use ssa::promote_to_ssa;
