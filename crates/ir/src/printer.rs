//! Textual dump of the IR, for debugging and golden tests.

use crate::instr::{Callee, ConstVal, Instr, Place, PlaceBase, PlaceElem, Terminator};
use crate::module::{Function, Module};
use std::fmt::Write;

/// Renders a whole module.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    for g in &m.globals {
        let _ = writeln!(
            out,
            "global {} : {} = {}",
            g.name,
            g.ty,
            fmt_const(&g.init, m)
        );
    }
    for f in &m.functions {
        out.push_str(&print_function(f, m));
    }
    out
}

/// Renders one function.
pub fn print_function(f: &Function, m: &Module) -> String {
    let mut out = String::new();
    let params: Vec<String> = f
        .params
        .iter()
        .map(|(n, t, _)| format!("{n}: {t}"))
        .collect();
    let _ = writeln!(
        out,
        "fn {}({}) -> {} {{{}",
        f.name,
        params.join(", "),
        f.ret,
        if f.is_ssa { "  // ssa" } else { "" }
    );
    for (b, blk) in f.blocks.iter().enumerate() {
        let _ = writeln!(out, "b{b}:");
        for (instr, _) in &blk.instrs {
            let _ = writeln!(out, "  {}", fmt_instr(instr, m));
        }
        let _ = writeln!(out, "  {}", fmt_term(&blk.term.0));
    }
    out.push_str("}\n");
    out
}

fn fmt_const(c: &ConstVal, m: &Module) -> String {
    match c {
        ConstVal::Int(v) => format!("{v}"),
        ConstVal::Float(v) => format!("{v}"),
        ConstVal::Str(s) => format!("{s:?}"),
        ConstVal::Bool(b) => format!("{b}"),
        ConstVal::Null => "null".into(),
        ConstVal::FuncRef(f) => format!(
            "@{}",
            m.functions
                .get(f.index())
                .map(|f| f.name.as_str())
                .unwrap_or("?")
        ),
        ConstVal::GlobalRef(g) => format!(
            "&{}",
            m.globals
                .get(g.index())
                .map(|g| g.name.as_str())
                .unwrap_or("?")
        ),
        ConstVal::Aggregate(items) => {
            let inner: Vec<String> = items.iter().map(|i| fmt_const(i, m)).collect();
            format!("{{{}}}", inner.join(", "))
        }
    }
}

fn fmt_place(p: &Place) -> String {
    let mut s = match p.base {
        PlaceBase::Slot(sl) => format!("%{}", sl.0),
        PlaceBase::Global(g) => format!("@g{}", g.0),
        PlaceBase::ValuePtr(v) => format!("*v{}", v.0),
    };
    for e in &p.elems {
        match e {
            PlaceElem::Field(i) => {
                let _ = write!(s, ".{i}");
            }
            PlaceElem::IndexConst(i) => {
                let _ = write!(s, "[{i}]");
            }
            PlaceElem::IndexValue(v) => {
                let _ = write!(s, "[v{}]", v.0);
            }
            PlaceElem::Deref => s.push_str(".*"),
        }
    }
    s
}

fn fmt_instr(i: &Instr, m: &Module) -> String {
    match i {
        Instr::Const { dst, val } => format!("v{} = const {}", dst.0, fmt_const(val, m)),
        Instr::Param { dst, index } => format!("v{} = param {}", dst.0, index),
        Instr::Load { dst, place } => format!("v{} = load {}", dst.0, fmt_place(place)),
        Instr::Store { place, value } => format!("store {} <- v{}", fmt_place(place), value.0),
        Instr::AddrOf { dst, place } => format!("v{} = addr {}", dst.0, fmt_place(place)),
        Instr::Bin { dst, op, lhs, rhs } => {
            format!("v{} = {:?} v{}, v{}", dst.0, op, lhs.0, rhs.0)
        }
        Instr::Un { dst, op, operand } => format!("v{} = {:?} v{}", dst.0, op, operand.0),
        Instr::Cast { dst, ty, operand } => format!("v{} = cast {} v{}", dst.0, ty, operand.0),
        Instr::Call { dst, callee, args } => {
            let callee = match callee {
                Callee::Func(f) => m
                    .functions
                    .get(f.index())
                    .map(|f| f.name.clone())
                    .unwrap_or_else(|| format!("f{}", f.0)),
                Callee::Builtin(b) => b.name().to_string(),
                Callee::Indirect(v) => format!("*v{}", v.0),
            };
            let args: Vec<String> = args.iter().map(|a| format!("v{}", a.0)).collect();
            match dst {
                Some(d) => format!("v{} = call {}({})", d.0, callee, args.join(", ")),
                None => format!("call {}({})", callee, args.join(", ")),
            }
        }
        Instr::Phi { dst, incomings } => {
            let inc: Vec<String> = incomings
                .iter()
                .map(|(b, v)| format!("[b{}: v{}]", b.0, v.0))
                .collect();
            format!("v{} = phi {}", dst.0, inc.join(", "))
        }
    }
}

fn fmt_term(t: &Terminator) -> String {
    match t {
        Terminator::Br(b) => format!("br b{}", b.0),
        Terminator::CondBr {
            cond,
            then_bb,
            else_bb,
        } => format!("condbr v{} ? b{} : b{}", cond.0, then_bb.0, else_bb.0),
        Terminator::Switch {
            value,
            cases,
            default,
        } => {
            let arms: Vec<String> = cases
                .iter()
                .map(|(c, b)| format!("{c}->b{}", b.0))
                .collect();
            format!(
                "switch v{} [{}] default b{}",
                value.0,
                arms.join(", "),
                default.0
            )
        }
        Terminator::Ret(Some(v)) => format!("ret v{}", v.0),
        Terminator::Ret(None) => "ret".into(),
        Terminator::Unreachable => "unreachable".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower_program;

    #[test]
    fn prints_function_with_blocks() {
        let p = spex_lang::parse_program(
            "int threshold = 5; int f(int x) { if (x > threshold) { return 1; } return 0; }",
        )
        .unwrap();
        let m = lower_program(&p).unwrap();
        let text = print_module(&m);
        assert!(text.contains("global threshold"));
        assert!(text.contains("fn f(x: i32) -> i32"));
        assert!(text.contains("condbr"));
        assert!(text.contains("ret"));
    }

    #[test]
    fn prints_ssa_phi() {
        let p = spex_lang::parse_program(
            "int f(int x) { int y = 0; if (x > 0) { y = 1; } else { y = 2; } return y; }",
        )
        .unwrap();
        let m = lower_program(&p).unwrap();
        let ssa = crate::promote_to_ssa(&m.functions[0]);
        let text = print_function(&ssa, &m);
        assert!(text.contains("phi"));
        assert!(text.contains("// ssa"));
    }

    #[test]
    fn prints_calls_and_builtins() {
        let p = spex_lang::parse_program(
            "int g(int a) { return a; } int f() { return g(atoi(\"3\")); }",
        )
        .unwrap();
        let m = lower_program(&p).unwrap();
        let text = print_module(&m);
        assert!(text.contains("call atoi"));
        assert!(text.contains("call g"));
    }
}
