//! Control-flow-graph utilities: successors, predecessors, reachability and
//! reverse postorder.

use crate::module::{BlockId, Function};

/// Predecessor lists and a reverse postorder for a function's CFG.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Predecessors of each block (indexed by block id).
    pub preds: Vec<Vec<BlockId>>,
    /// Successors of each block (indexed by block id).
    pub succs: Vec<Vec<BlockId>>,
    /// Reverse postorder over blocks reachable from the entry.
    pub rpo: Vec<BlockId>,
    /// Position of each block in `rpo`; `usize::MAX` for unreachable blocks.
    pub rpo_index: Vec<usize>,
}

impl Cfg {
    /// Builds CFG information for `f`.
    pub fn build(f: &Function) -> Cfg {
        let n = f.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (b, blk) in f.blocks.iter().enumerate() {
            for s in blk.term.0.successors() {
                succs[b].push(s);
                preds[s.index()].push(BlockId(b as u32));
            }
        }
        // Iterative DFS postorder from the entry.
        let mut post = Vec::new();
        let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
        let mut stack: Vec<(BlockId, usize)> = vec![(BlockId(0), 0)];
        state[0] = 1;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < succs[b.index()].len() {
                let s = succs[b.index()][*i];
                *i += 1;
                if state[s.index()] == 0 {
                    state[s.index()] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[b.index()] = 2;
                post.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<BlockId> = post.into_iter().rev().collect();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        Cfg {
            preds,
            succs,
            rpo,
            rpo_index,
        }
    }

    /// Whether a block is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index[b.index()] != usize::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower_program;

    fn cfg_of(src: &str, func: &str) -> (std::sync::Arc<crate::module::Function>, Cfg) {
        let p = spex_lang::parse_program(src).unwrap();
        let m = lower_program(&p).unwrap();
        let id = m.function_by_name(func).unwrap();
        let f = m.functions[id.index()].clone();
        let cfg = Cfg::build(&f);
        (f, cfg)
    }

    #[test]
    fn straight_line_has_single_block_rpo() {
        let (_, cfg) = cfg_of("int f() { return 1; }", "f");
        assert_eq!(cfg.rpo[0], BlockId(0));
        assert!(cfg.is_reachable(BlockId(0)));
    }

    #[test]
    fn if_produces_diamond() {
        let (f, cfg) = cfg_of(
            "int f(int x) { if (x > 0) { x = 1; } else { x = 2; } return x; }",
            "f",
        );
        // Entry branches to two blocks that both reach the join.
        let entry_succs = &cfg.succs[0];
        assert_eq!(entry_succs.len(), 2);
        let join = cfg.succs[entry_succs[0].index()][0];
        assert_eq!(cfg.preds[join.index()].len(), 2);
        assert!(f.blocks.len() >= 4);
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let (_, cfg) = cfg_of("int f(int x) { while (x > 0) { x -= 1; } return x; }", "f");
        assert_eq!(cfg.rpo[0], BlockId(0));
        // Every reachable block appears exactly once.
        let mut seen = std::collections::HashSet::new();
        for b in &cfg.rpo {
            assert!(seen.insert(*b));
        }
    }

    #[test]
    fn code_after_return_is_unreachable() {
        let (_, cfg) = cfg_of("int f() { return 1; return 2; }", "f");
        assert!(cfg.rpo.len() < cfg.preds.len());
    }
}
