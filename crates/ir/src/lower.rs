//! Lowering from the mini-C AST to the CFG IR.
//!
//! Condition expressions of `if`/`while`/`for` are lowered with
//! short-circuit *branch* lowering (`a && b` becomes nested conditional
//! branches), mirroring Clang's `-O0` output. This matters for SPEX: range
//! inference (§2.2.3) and control-dependency inference (§2.2.4) look for
//! individual comparisons that dominate branch blocks.

use crate::instr::{Callee, ConstVal, Instr, Place, PlaceBase, PlaceElem, Terminator};
use crate::module::{
    Block, BlockId, FuncId, Function, GlobalId, GlobalVar, Module, SlotId, SlotInfo, StructLayout,
    ValueId,
};
use spex_lang::ast::{BinOp, Expr, ExprKind, FunctionDef, Initializer, Program, Stmt, UnOp};
use spex_lang::builtins::Builtin;
use spex_lang::diag::{Diagnostic, Span};
use spex_lang::types::CType;
use std::collections::HashMap;

/// Lowers a parsed program to an IR module.
pub fn lower_program(program: &Program) -> Result<Module, Diagnostic> {
    let mut module = Module::default();

    for s in &program.structs {
        module.structs.push(StructLayout {
            name: s.name.clone(),
            fields: s
                .fields
                .iter()
                .map(|f| (f.name.clone(), f.ty.clone()))
                .collect(),
        });
    }
    for e in &program.enums {
        for (name, value) in &e.variants {
            module.enum_consts.insert(name.clone(), *value);
        }
    }

    // Pre-assign ids so initializers and bodies can reference anything.
    let global_ids: HashMap<String, GlobalId> = program
        .globals
        .iter()
        .enumerate()
        .map(|(i, g)| (g.name.clone(), GlobalId(i as u32)))
        .collect();
    let func_ids: HashMap<String, FuncId> = program
        .functions
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.clone(), FuncId(i as u32)))
        .collect();

    for g in &program.globals {
        let init = match &g.init {
            Some(init) => const_eval_init(init, &g.ty, &module, &global_ids, &func_ids)?,
            None => ConstVal::zero_of(&g.ty, &module.structs),
        };
        module.globals.push(GlobalVar {
            name: g.name.clone(),
            ty: g.ty.clone(),
            init,
            span: g.span,
        });
    }

    let fn_rets: HashMap<FuncId, CType> = program
        .functions
        .iter()
        .enumerate()
        .map(|(i, f)| (FuncId(i as u32), f.ret.clone()))
        .collect();

    for f in &program.functions {
        let lowered = FuncLowerer::new(&module, &global_ids, &func_ids, &fn_rets, f).lower()?;
        module.functions.push(std::sync::Arc::new(lowered));
    }
    Ok(module)
}

// --- Constant evaluation of global initializers ---------------------------

fn const_eval_init(
    init: &Initializer,
    ty: &CType,
    module: &Module,
    globals: &HashMap<String, GlobalId>,
    funcs: &HashMap<String, FuncId>,
) -> Result<ConstVal, Diagnostic> {
    match init {
        Initializer::Expr(e) => const_eval_expr(e, module, globals, funcs),
        Initializer::List(items) => {
            let elem_tys: Vec<CType> = match ty {
                CType::Array(elem, n) => vec![(**elem).clone(); (*n).max(items.len())],
                CType::Struct(name) => {
                    let layout = module.struct_layout(name).ok_or_else(|| {
                        Diagnostic::new(Span::unknown(), format!("unknown struct `{name}`"))
                    })?;
                    layout.fields.iter().map(|(_, t)| t.clone()).collect()
                }
                other => {
                    return Err(Diagnostic::new(
                        Span::unknown(),
                        format!("brace initializer for non-aggregate type {other}"),
                    ))
                }
            };
            let mut out = Vec::new();
            for (i, ety) in elem_tys.iter().enumerate() {
                match items.get(i) {
                    Some(item) => out.push(const_eval_init(item, ety, module, globals, funcs)?),
                    None => out.push(ConstVal::zero_of(ety, &module.structs)),
                }
            }
            Ok(ConstVal::Aggregate(out))
        }
    }
}

fn const_eval_expr(
    e: &Expr,
    module: &Module,
    globals: &HashMap<String, GlobalId>,
    funcs: &HashMap<String, FuncId>,
) -> Result<ConstVal, Diagnostic> {
    match &e.kind {
        ExprKind::IntLit(v) => Ok(ConstVal::Int(*v)),
        ExprKind::FloatLit(v) => Ok(ConstVal::Float(*v)),
        ExprKind::StrLit(s) => Ok(ConstVal::Str(s.clone())),
        ExprKind::CharLit(c) => Ok(ConstVal::Int(*c as i64)),
        ExprKind::BoolLit(b) => Ok(ConstVal::Bool(*b)),
        ExprKind::Null => Ok(ConstVal::Null),
        ExprKind::Unary(UnOp::Neg, inner) => {
            match const_eval_expr(inner, module, globals, funcs)? {
                ConstVal::Int(v) => Ok(ConstVal::Int(-v)),
                ConstVal::Float(v) => Ok(ConstVal::Float(-v)),
                _ => Err(Diagnostic::new(e.span, "cannot negate this constant")),
            }
        }
        ExprKind::Binary(op, l, r) => {
            let lv = const_eval_expr(l, module, globals, funcs)?;
            let rv = const_eval_expr(r, module, globals, funcs)?;
            match (lv.as_int(), rv.as_int()) {
                (Some(a), Some(b)) => {
                    let v = match op {
                        BinOp::Add => a + b,
                        BinOp::Sub => a - b,
                        BinOp::Mul => a * b,
                        BinOp::Div if b != 0 => a / b,
                        BinOp::Shl => a << (b & 63),
                        BinOp::Shr => a >> (b & 63),
                        BinOp::Or => a | b,
                        BinOp::And => a & b,
                        BinOp::Xor => a ^ b,
                        _ => {
                            return Err(Diagnostic::new(
                                e.span,
                                "unsupported constant binary operator",
                            ))
                        }
                    };
                    Ok(ConstVal::Int(v))
                }
                _ => Err(Diagnostic::new(e.span, "non-integer constant arithmetic")),
            }
        }
        ExprKind::Ident(name) => {
            if let Some(v) = module.enum_consts.get(name) {
                Ok(ConstVal::Int(*v))
            } else if let Some(f) = funcs.get(name) {
                Ok(ConstVal::FuncRef(*f))
            } else {
                Err(Diagnostic::new(
                    e.span,
                    format!("`{name}` is not a constant; use `&{name}` for a global's address"),
                ))
            }
        }
        ExprKind::AddrOf(inner) => match &inner.kind {
            ExprKind::Ident(name) => globals
                .get(name)
                .map(|g| ConstVal::GlobalRef(*g))
                .ok_or_else(|| Diagnostic::new(e.span, format!("`&{name}`: unknown global"))),
            _ => Err(Diagnostic::new(
                e.span,
                "only addresses of globals are constant",
            )),
        },
        ExprKind::Sizeof(ty) => Ok(ConstVal::Int(type_size(ty, module) as i64)),
        _ => Err(Diagnostic::new(e.span, "expression is not a constant")),
    }
}

/// Byte size of a type under the IR's data model.
pub fn type_size(ty: &CType, module: &Module) -> usize {
    match ty {
        CType::Void => 0,
        CType::Bool => 1,
        CType::Int { bits, .. } => (*bits as usize) / 8,
        CType::Float { bits } => (*bits as usize) / 8,
        CType::Ptr(_) | CType::FuncPtr => 8,
        CType::Enum(_) => 4,
        CType::Array(elem, n) => type_size(elem, module) * n,
        CType::Struct(name) => module
            .struct_layout(name)
            .map(|l| l.fields.iter().map(|(_, t)| type_size(t, module)).sum())
            .unwrap_or(0),
    }
}

// --- Function lowering -----------------------------------------------------

struct LoopCtx {
    break_to: BlockId,
    continue_to: BlockId,
}

struct FuncLowerer<'a> {
    module: &'a Module,
    globals: &'a HashMap<String, GlobalId>,
    funcs: &'a HashMap<String, FuncId>,
    fn_rets: &'a HashMap<FuncId, CType>,
    ast: &'a FunctionDef,
    blocks: Vec<Block>,
    cur: BlockId,
    value_types: Vec<CType>,
    slots: Vec<SlotInfo>,
    scopes: Vec<HashMap<String, SlotId>>,
    params: Vec<(String, CType, SlotId)>,
    loops: Vec<LoopCtx>,
}

impl<'a> FuncLowerer<'a> {
    fn new(
        module: &'a Module,
        globals: &'a HashMap<String, GlobalId>,
        funcs: &'a HashMap<String, FuncId>,
        fn_rets: &'a HashMap<FuncId, CType>,
        ast: &'a FunctionDef,
    ) -> Self {
        FuncLowerer {
            module,
            globals,
            funcs,
            fn_rets,
            ast,
            blocks: vec![Block::new()],
            cur: BlockId(0),
            value_types: Vec::new(),
            slots: Vec::new(),
            scopes: vec![HashMap::new()],
            params: Vec::new(),
            loops: Vec::new(),
        }
    }

    fn lower(mut self) -> Result<Function, Diagnostic> {
        for (i, p) in self.ast.params.iter().enumerate() {
            let slot = self.new_slot(&p.name, p.ty.clone());
            self.scopes[0].insert(p.name.clone(), slot);
            self.params.push((p.name.clone(), p.ty.clone(), slot));
            let v = self.new_value(p.ty.clone());
            self.emit(
                Instr::Param {
                    dst: v,
                    index: i as u32,
                },
                self.ast.span,
            );
            self.emit(
                Instr::Store {
                    place: Place::slot(slot),
                    value: v,
                },
                self.ast.span,
            );
        }
        let body = self.ast.body.clone();
        self.lower_stmts(&body)?;
        // Fall-off-the-end: return 0 / void.
        if matches!(
            self.blocks[self.cur.index()].term.0,
            Terminator::Unreachable
        ) {
            let term = if self.ast.ret == CType::Void {
                Terminator::Ret(None)
            } else {
                let z = self.const_value(ConstVal::Int(0), self.ast.ret.clone(), self.ast.span);
                Terminator::Ret(Some(z))
            };
            self.set_term(term, self.ast.span);
        }
        Ok(Function {
            name: self.ast.name.clone(),
            ret: self.ast.ret.clone(),
            params: self.params,
            slots: self.slots,
            blocks: self.blocks,
            value_types: self.value_types,
            is_ssa: false,
            span: self.ast.span,
            clones: Default::default(),
        })
    }

    // -- Builders --

    fn new_block(&mut self) -> BlockId {
        self.blocks.push(Block::new());
        BlockId((self.blocks.len() - 1) as u32)
    }

    fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
    }

    fn new_value(&mut self, ty: CType) -> ValueId {
        self.value_types.push(ty);
        ValueId((self.value_types.len() - 1) as u32)
    }

    fn new_slot(&mut self, name: &str, ty: CType) -> SlotId {
        self.slots.push(SlotInfo {
            name: name.to_string(),
            ty,
        });
        SlotId((self.slots.len() - 1) as u32)
    }

    fn emit(&mut self, instr: Instr, span: Span) {
        // Emitting into a terminated block would lose code: route to a fresh
        // dead block instead (statements after `return`/`break`).
        if !matches!(
            self.blocks[self.cur.index()].term.0,
            Terminator::Unreachable
        ) {
            let dead = self.new_block();
            self.switch_to(dead);
        }
        self.blocks[self.cur.index()].instrs.push((instr, span));
    }

    fn set_term(&mut self, term: Terminator, span: Span) {
        let blk = &mut self.blocks[self.cur.index()];
        if matches!(blk.term.0, Terminator::Unreachable) {
            blk.term = (term, span);
        }
    }

    fn const_value(&mut self, val: ConstVal, ty: CType, span: Span) -> ValueId {
        let v = self.new_value(ty);
        self.emit(Instr::Const { dst: v, val }, span);
        v
    }

    fn lookup_slot(&self, name: &str) -> Option<SlotId> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    // -- Statements --

    fn lower_stmts(&mut self, stmts: &[Stmt]) -> Result<(), Diagnostic> {
        for s in stmts {
            self.lower_stmt(s)?;
        }
        Ok(())
    }

    fn lower_block_scoped(&mut self, stmts: &[Stmt]) -> Result<(), Diagnostic> {
        self.scopes.push(HashMap::new());
        let r = self.lower_stmts(stmts);
        self.scopes.pop();
        r
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<(), Diagnostic> {
        match stmt {
            Stmt::Expr(e) => {
                self.lower_expr(e)?;
                Ok(())
            }
            Stmt::VarDecl {
                name,
                ty,
                init,
                span,
            } => {
                let slot = self.new_slot(name, ty.clone());
                self.scopes
                    .last_mut()
                    .expect("scope stack never empty")
                    .insert(name.clone(), slot);
                if let Some(init) = init {
                    let (v, _) = self.lower_expr(init)?;
                    self.emit(
                        Instr::Store {
                            place: Place::slot(slot),
                            value: v,
                        },
                        *span,
                    );
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                span,
            } => {
                let then_bb = self.new_block();
                let else_bb = self.new_block();
                let join = self.new_block();
                self.lower_cond(cond, then_bb, else_bb)?;
                self.switch_to(then_bb);
                self.lower_block_scoped(then_body)?;
                self.set_term(Terminator::Br(join), *span);
                self.switch_to(else_bb);
                self.lower_block_scoped(else_body)?;
                self.set_term(Terminator::Br(join), *span);
                self.switch_to(join);
                Ok(())
            }
            Stmt::While { cond, body, span } => {
                let header = self.new_block();
                let body_bb = self.new_block();
                let exit = self.new_block();
                self.set_term(Terminator::Br(header), *span);
                self.switch_to(header);
                self.lower_cond(cond, body_bb, exit)?;
                self.switch_to(body_bb);
                self.loops.push(LoopCtx {
                    break_to: exit,
                    continue_to: header,
                });
                self.lower_block_scoped(body)?;
                self.loops.pop();
                self.set_term(Terminator::Br(header), *span);
                self.switch_to(exit);
                Ok(())
            }
            Stmt::DoWhile { body, cond, span } => {
                let body_bb = self.new_block();
                let cond_bb = self.new_block();
                let exit = self.new_block();
                self.set_term(Terminator::Br(body_bb), *span);
                self.switch_to(body_bb);
                self.loops.push(LoopCtx {
                    break_to: exit,
                    continue_to: cond_bb,
                });
                self.lower_block_scoped(body)?;
                self.loops.pop();
                self.set_term(Terminator::Br(cond_bb), *span);
                self.switch_to(cond_bb);
                self.lower_cond(cond, body_bb, exit)?;
                self.switch_to(exit);
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                span,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(init) = init {
                    self.lower_stmt(init)?;
                }
                let header = self.new_block();
                let body_bb = self.new_block();
                let step_bb = self.new_block();
                let exit = self.new_block();
                self.set_term(Terminator::Br(header), *span);
                self.switch_to(header);
                match cond {
                    Some(c) => self.lower_cond(c, body_bb, exit)?,
                    None => self.set_term(Terminator::Br(body_bb), *span),
                }
                self.switch_to(body_bb);
                self.loops.push(LoopCtx {
                    break_to: exit,
                    continue_to: step_bb,
                });
                self.lower_block_scoped(body)?;
                self.loops.pop();
                self.set_term(Terminator::Br(step_bb), *span);
                self.switch_to(step_bb);
                if let Some(step) = step {
                    self.lower_expr(step)?;
                }
                self.set_term(Terminator::Br(header), *span);
                self.switch_to(exit);
                self.scopes.pop();
                Ok(())
            }
            Stmt::Switch {
                scrutinee,
                cases,
                default,
                span,
            } => {
                let (scrut, _) = self.lower_expr(scrutinee)?;
                let join = self.new_block();
                let mut arms = Vec::new();
                for case in cases {
                    let bb = self.new_block();
                    for label in &case.labels {
                        let val = self.case_label_value(label)?;
                        arms.push((val, bb));
                    }
                }
                let default_bb = if default.is_some() {
                    self.new_block()
                } else {
                    join
                };
                self.set_term(
                    Terminator::Switch {
                        value: scrut,
                        cases: arms.clone(),
                        default: default_bb,
                    },
                    *span,
                );
                // Arm bodies: block ids in `arms` are unique per case arm in
                // declaration order (dedup consecutive duplicates for
                // multi-label arms).
                let mut seen = std::collections::HashSet::new();
                let mut arm_blocks = Vec::new();
                for (_, bb) in &arms {
                    if seen.insert(*bb) {
                        arm_blocks.push(*bb);
                    }
                }
                for (case, bb) in cases.iter().zip(arm_blocks) {
                    self.switch_to(bb);
                    self.lower_block_scoped(&case.body)?;
                    self.set_term(Terminator::Br(join), *span);
                }
                if let Some(body) = default {
                    self.switch_to(default_bb);
                    self.lower_block_scoped(body)?;
                    self.set_term(Terminator::Br(join), *span);
                }
                self.switch_to(join);
                Ok(())
            }
            Stmt::Break(span) => {
                let target = self
                    .loops
                    .last()
                    .ok_or_else(|| Diagnostic::new(*span, "`break` outside loop"))?
                    .break_to;
                self.set_term(Terminator::Br(target), *span);
                let dead = self.new_block();
                self.switch_to(dead);
                Ok(())
            }
            Stmt::Continue(span) => {
                let target = self
                    .loops
                    .last()
                    .ok_or_else(|| Diagnostic::new(*span, "`continue` outside loop"))?
                    .continue_to;
                self.set_term(Terminator::Br(target), *span);
                let dead = self.new_block();
                self.switch_to(dead);
                Ok(())
            }
            Stmt::Return(value, span) => {
                let v = match value {
                    Some(e) => Some(self.lower_expr(e)?.0),
                    None => None,
                };
                self.set_term(Terminator::Ret(v), *span);
                let dead = self.new_block();
                self.switch_to(dead);
                Ok(())
            }
            Stmt::Block(stmts) => self.lower_block_scoped(stmts),
        }
    }

    fn case_label_value(&self, label: &Expr) -> Result<i64, Diagnostic> {
        match &label.kind {
            ExprKind::IntLit(v) => Ok(*v),
            ExprKind::CharLit(c) => Ok(*c as i64),
            ExprKind::BoolLit(b) => Ok(*b as i64),
            ExprKind::Unary(UnOp::Neg, inner) => Ok(-self.case_label_value(inner)?),
            ExprKind::Ident(name) => {
                self.module.enum_consts.get(name).copied().ok_or_else(|| {
                    Diagnostic::new(label.span, format!("`{name}` is not a constant"))
                })
            }
            _ => Err(Diagnostic::new(label.span, "case label must be constant")),
        }
    }

    // -- Condition lowering (short-circuit to branches) --

    fn lower_cond(
        &mut self,
        cond: &Expr,
        then_bb: BlockId,
        else_bb: BlockId,
    ) -> Result<(), Diagnostic> {
        match &cond.kind {
            ExprKind::Binary(BinOp::LogicalAnd, a, b) => {
                let mid = self.new_block();
                self.lower_cond(a, mid, else_bb)?;
                self.switch_to(mid);
                self.lower_cond(b, then_bb, else_bb)
            }
            ExprKind::Binary(BinOp::LogicalOr, a, b) => {
                let mid = self.new_block();
                self.lower_cond(a, then_bb, mid)?;
                self.switch_to(mid);
                self.lower_cond(b, then_bb, else_bb)
            }
            ExprKind::Unary(UnOp::Not, inner) => self.lower_cond(inner, else_bb, then_bb),
            _ => {
                let (v, _) = self.lower_expr(cond)?;
                self.set_term(
                    Terminator::CondBr {
                        cond: v,
                        then_bb,
                        else_bb,
                    },
                    cond.span,
                );
                Ok(())
            }
        }
    }

    // -- Expressions --

    fn lower_expr(&mut self, e: &Expr) -> Result<(ValueId, CType), Diagnostic> {
        match &e.kind {
            ExprKind::IntLit(v) => {
                let ty = if *v > i32::MAX as i64 || *v < i32::MIN as i64 {
                    CType::long()
                } else {
                    CType::int()
                };
                Ok((self.const_value(ConstVal::Int(*v), ty.clone(), e.span), ty))
            }
            ExprKind::FloatLit(v) => {
                let ty = CType::double();
                Ok((
                    self.const_value(ConstVal::Float(*v), ty.clone(), e.span),
                    ty,
                ))
            }
            ExprKind::StrLit(s) => {
                let ty = CType::string();
                Ok((
                    self.const_value(ConstVal::Str(s.clone()), ty.clone(), e.span),
                    ty,
                ))
            }
            ExprKind::CharLit(c) => {
                let ty = CType::char_ty();
                Ok((
                    self.const_value(ConstVal::Int(*c as i64), ty.clone(), e.span),
                    ty,
                ))
            }
            ExprKind::BoolLit(b) => {
                let ty = CType::Bool;
                Ok((self.const_value(ConstVal::Bool(*b), ty.clone(), e.span), ty))
            }
            ExprKind::Null => {
                let ty = CType::Ptr(Box::new(CType::Void));
                Ok((self.const_value(ConstVal::Null, ty.clone(), e.span), ty))
            }
            ExprKind::Ident(name) => {
                // Resolution order: locals, globals, enum constants,
                // functions, stdio streams.
                if let Some(slot) = self.lookup_slot(name) {
                    let ty = self.slots[slot.index()].ty.clone();
                    let v = self.new_value(ty.clone());
                    self.emit(
                        Instr::Load {
                            dst: v,
                            place: Place::slot(slot),
                        },
                        e.span,
                    );
                    return Ok((v, ty));
                }
                if let Some(&g) = self.globals.get(name) {
                    let ty = self.module.globals[g.index()].ty.clone();
                    let v = self.new_value(ty.clone());
                    self.emit(
                        Instr::Load {
                            dst: v,
                            place: Place::global(g),
                        },
                        e.span,
                    );
                    return Ok((v, ty));
                }
                if let Some(&val) = self.module.enum_consts.get(name) {
                    let ty = CType::int();
                    return Ok((self.const_value(ConstVal::Int(val), ty.clone(), e.span), ty));
                }
                if let Some(&f) = self.funcs.get(name) {
                    let ty = CType::FuncPtr;
                    return Ok((
                        self.const_value(ConstVal::FuncRef(f), ty.clone(), e.span),
                        ty,
                    ));
                }
                match name.as_str() {
                    "stdout" => {
                        let ty = CType::int();
                        Ok((self.const_value(ConstVal::Int(1), ty.clone(), e.span), ty))
                    }
                    "stderr" => {
                        let ty = CType::int();
                        Ok((self.const_value(ConstVal::Int(2), ty.clone(), e.span), ty))
                    }
                    _ => Err(Diagnostic::new(
                        e.span,
                        format!("unknown identifier `{name}`"),
                    )),
                }
            }
            ExprKind::Unary(op, inner) => {
                let (v, ty) = self.lower_expr(inner)?;
                let out_ty = if *op == UnOp::Not { CType::Bool } else { ty };
                let dst = self.new_value(out_ty.clone());
                self.emit(
                    Instr::Un {
                        dst,
                        op: *op,
                        operand: v,
                    },
                    e.span,
                );
                Ok((dst, out_ty))
            }
            ExprKind::Binary(op @ (BinOp::LogicalAnd | BinOp::LogicalOr), ..) => {
                // Value-position short circuit: materialise 0/1 through a
                // temporary slot; mem2reg turns it into a phi.
                let slot = self.new_slot("$logic", CType::Bool);
                let then_bb = self.new_block();
                let else_bb = self.new_block();
                let join = self.new_block();
                let _ = op;
                self.lower_cond(e, then_bb, else_bb)?;
                self.switch_to(then_bb);
                let one = self.const_value(ConstVal::Bool(true), CType::Bool, e.span);
                self.emit(
                    Instr::Store {
                        place: Place::slot(slot),
                        value: one,
                    },
                    e.span,
                );
                self.set_term(Terminator::Br(join), e.span);
                self.switch_to(else_bb);
                let zero = self.const_value(ConstVal::Bool(false), CType::Bool, e.span);
                self.emit(
                    Instr::Store {
                        place: Place::slot(slot),
                        value: zero,
                    },
                    e.span,
                );
                self.set_term(Terminator::Br(join), e.span);
                self.switch_to(join);
                let v = self.new_value(CType::Bool);
                self.emit(
                    Instr::Load {
                        dst: v,
                        place: Place::slot(slot),
                    },
                    e.span,
                );
                Ok((v, CType::Bool))
            }
            ExprKind::Binary(op, l, r) => {
                let (lv, lty) = self.lower_expr(l)?;
                let (rv, _) = self.lower_expr(r)?;
                let out_ty = if op.is_comparison() { CType::Bool } else { lty };
                let dst = self.new_value(out_ty.clone());
                self.emit(
                    Instr::Bin {
                        dst,
                        op: *op,
                        lhs: lv,
                        rhs: rv,
                    },
                    e.span,
                );
                Ok((dst, out_ty))
            }
            ExprKind::Assign { target, op, value } => {
                let (place, pty) = self.lower_lvalue(target)?;
                let (rv, _) = self.lower_expr(value)?;
                let stored = match op {
                    None => rv,
                    Some(op) => {
                        let cur = self.new_value(pty.clone());
                        self.emit(
                            Instr::Load {
                                dst: cur,
                                place: place.clone(),
                            },
                            e.span,
                        );
                        let dst = self.new_value(pty.clone());
                        self.emit(
                            Instr::Bin {
                                dst,
                                op: *op,
                                lhs: cur,
                                rhs: rv,
                            },
                            e.span,
                        );
                        dst
                    }
                };
                self.emit(
                    Instr::Store {
                        place,
                        value: stored,
                    },
                    e.span,
                );
                Ok((stored, pty))
            }
            ExprKind::Call { callee, args } => self.lower_call(e, callee, args),
            ExprKind::Index(..) | ExprKind::Member { .. } | ExprKind::Deref(_) => {
                let (place, ty) = self.lower_lvalue(e)?;
                let v = self.new_value(ty.clone());
                self.emit(Instr::Load { dst: v, place }, e.span);
                Ok((v, ty))
            }
            ExprKind::Cast(ty, inner) => {
                let (v, _) = self.lower_expr(inner)?;
                let dst = self.new_value(ty.clone());
                self.emit(
                    Instr::Cast {
                        dst,
                        ty: ty.clone(),
                        operand: v,
                    },
                    e.span,
                );
                Ok((dst, ty.clone()))
            }
            ExprKind::Ternary(cond, t, f) => {
                // Diamond through a temporary slot.
                let then_bb = self.new_block();
                let else_bb = self.new_block();
                let join = self.new_block();
                self.lower_cond(cond, then_bb, else_bb)?;
                self.switch_to(then_bb);
                let (tv, tty) = self.lower_expr(t)?;
                let slot = self.new_slot("$ternary", tty.clone());
                self.emit(
                    Instr::Store {
                        place: Place::slot(slot),
                        value: tv,
                    },
                    e.span,
                );
                self.set_term(Terminator::Br(join), e.span);
                self.switch_to(else_bb);
                let (fv, _) = self.lower_expr(f)?;
                self.emit(
                    Instr::Store {
                        place: Place::slot(slot),
                        value: fv,
                    },
                    e.span,
                );
                self.set_term(Terminator::Br(join), e.span);
                self.switch_to(join);
                let v = self.new_value(tty.clone());
                self.emit(
                    Instr::Load {
                        dst: v,
                        place: Place::slot(slot),
                    },
                    e.span,
                );
                Ok((v, tty))
            }
            ExprKind::AddrOf(inner) => {
                let (place, pty) = self.lower_lvalue(inner)?;
                let ty = CType::Ptr(Box::new(pty));
                let v = self.new_value(ty.clone());
                self.emit(Instr::AddrOf { dst: v, place }, e.span);
                Ok((v, ty))
            }
            ExprKind::PostIncDec { target, inc } => {
                let (place, pty) = self.lower_lvalue(target)?;
                let old = self.new_value(pty.clone());
                self.emit(
                    Instr::Load {
                        dst: old,
                        place: place.clone(),
                    },
                    e.span,
                );
                let one = self.const_value(ConstVal::Int(1), pty.clone(), e.span);
                let new = self.new_value(pty.clone());
                self.emit(
                    Instr::Bin {
                        dst: new,
                        op: if *inc { BinOp::Add } else { BinOp::Sub },
                        lhs: old,
                        rhs: one,
                    },
                    e.span,
                );
                self.emit(Instr::Store { place, value: new }, e.span);
                Ok((old, pty))
            }
            ExprKind::Sizeof(ty) => {
                let out = CType::long();
                let size = type_size(ty, self.module) as i64;
                Ok((
                    self.const_value(ConstVal::Int(size), out.clone(), e.span),
                    out,
                ))
            }
        }
    }

    fn lower_call(
        &mut self,
        e: &Expr,
        callee: &Expr,
        args: &[Expr],
    ) -> Result<(ValueId, CType), Diagnostic> {
        let mut arg_vals = Vec::new();
        for a in args {
            arg_vals.push(self.lower_expr(a)?.0);
        }
        let (target, ret_ty) = match &callee.kind {
            ExprKind::Ident(name) if self.lookup_slot(name).is_none() => {
                if let Some(&f) = self.funcs.get(name) {
                    let ret = self.fn_rets.get(&f).cloned().unwrap_or(CType::int());
                    (Callee::Func(f), ret)
                } else if let Some(b) = Builtin::from_name(name) {
                    (Callee::Builtin(b), b.ret_type())
                } else {
                    return Err(Diagnostic::new(
                        callee.span,
                        format!("call to unknown function `{name}`"),
                    ));
                }
            }
            _ => {
                let (fv, _) = self.lower_expr(callee)?;
                (Callee::Indirect(fv), CType::int())
            }
        };
        let dst = if ret_ty == CType::Void {
            None
        } else {
            Some(self.new_value(ret_ty.clone()))
        };
        let noreturn = matches!(target, Callee::Builtin(b) if b.is_noreturn());
        self.emit(
            Instr::Call {
                dst,
                callee: target,
                args: arg_vals,
            },
            e.span,
        );
        if noreturn {
            // Control never passes `exit`/`abort`: leave the block with its
            // `Unreachable` terminator and divert following statements to a
            // dead block.
            let dead = self.new_block();
            self.switch_to(dead);
        }
        let result = match dst {
            Some(v) => v,
            None => self.const_value(ConstVal::Int(0), CType::int(), e.span),
        };
        Ok((result, ret_ty))
    }

    // -- Lvalues --

    fn lower_lvalue(&mut self, e: &Expr) -> Result<(Place, CType), Diagnostic> {
        match &e.kind {
            ExprKind::Ident(name) => {
                if let Some(slot) = self.lookup_slot(name) {
                    let ty = self.slots[slot.index()].ty.clone();
                    return Ok((Place::slot(slot), ty));
                }
                if let Some(&g) = self.globals.get(name) {
                    let ty = self.module.globals[g.index()].ty.clone();
                    return Ok((Place::global(g), ty));
                }
                Err(Diagnostic::new(
                    e.span,
                    format!("`{name}` is not an assignable location"),
                ))
            }
            ExprKind::Member { base, field, arrow } => {
                if *arrow {
                    let (bv, bty) = self.lower_expr(base)?;
                    let sty = self.pointee_struct(&bty, e.span)?;
                    let (idx, fty) = self.field_of(&sty, field, e.span)?;
                    Ok((
                        Place {
                            base: PlaceBase::ValuePtr(bv),
                            elems: vec![PlaceElem::Field(idx)],
                        },
                        fty,
                    ))
                } else {
                    let (mut place, bty) = self.lower_lvalue(base)?;
                    let sname = match &bty {
                        CType::Struct(n) => n.clone(),
                        other => {
                            return Err(Diagnostic::new(
                                e.span,
                                format!("member access on non-struct type {other}"),
                            ))
                        }
                    };
                    let (idx, fty) = self.field_of(&sname, field, e.span)?;
                    place.elems.push(PlaceElem::Field(idx));
                    Ok((place, fty))
                }
            }
            ExprKind::Index(base, idx) => {
                let (iv, _) = self.lower_expr(idx)?;
                // Base may itself be a place (array variable) or a pointer
                // value.
                match self.try_lower_lvalue(base)? {
                    Some((mut place, bty)) => match bty {
                        CType::Array(elem, _) => {
                            place.elems.push(self.index_elem(iv));
                            Ok((place, *elem))
                        }
                        CType::Ptr(elem) => {
                            // Load the pointer then index through it.
                            let pv = self.new_value(CType::Ptr(elem.clone()));
                            self.emit(Instr::Load { dst: pv, place }, e.span);
                            Ok((
                                Place {
                                    base: PlaceBase::ValuePtr(pv),
                                    elems: vec![self.index_elem(iv)],
                                },
                                *elem,
                            ))
                        }
                        other => Err(Diagnostic::new(
                            e.span,
                            format!("cannot index into type {other}"),
                        )),
                    },
                    None => {
                        let (bv, bty) = self.lower_expr(base)?;
                        let elem = match bty {
                            CType::Ptr(elem) => *elem,
                            CType::Array(elem, _) => *elem,
                            other => {
                                return Err(Diagnostic::new(
                                    e.span,
                                    format!("cannot index into type {other}"),
                                ))
                            }
                        };
                        Ok((
                            Place {
                                base: PlaceBase::ValuePtr(bv),
                                elems: vec![self.index_elem(iv)],
                            },
                            elem,
                        ))
                    }
                }
            }
            ExprKind::Deref(inner) => {
                let (v, ty) = self.lower_expr(inner)?;
                let pointee = match ty {
                    CType::Ptr(p) => *p,
                    other => {
                        return Err(Diagnostic::new(
                            e.span,
                            format!("cannot dereference type {other}"),
                        ))
                    }
                };
                Ok((Place::deref_value(v), pointee))
            }
            _ => Err(Diagnostic::new(e.span, "expression is not an lvalue")),
        }
    }

    /// Lvalue lowering that returns `None` instead of erroring when the
    /// expression is not an lvalue (used to disambiguate `p[i]` bases).
    fn try_lower_lvalue(&mut self, e: &Expr) -> Result<Option<(Place, CType)>, Diagnostic> {
        match &e.kind {
            ExprKind::Ident(_)
            | ExprKind::Member { .. }
            | ExprKind::Index(..)
            | ExprKind::Deref(_) => self.lower_lvalue(e).map(Some),
            _ => Ok(None),
        }
    }

    fn index_elem(&mut self, iv: ValueId) -> PlaceElem {
        PlaceElem::IndexValue(iv)
    }

    fn pointee_struct(&self, ty: &CType, span: Span) -> Result<String, Diagnostic> {
        match ty {
            CType::Ptr(inner) => match &**inner {
                CType::Struct(name) => Ok(name.clone()),
                other => Err(Diagnostic::new(
                    span,
                    format!("`->` on pointer to non-struct type {other}"),
                )),
            },
            other => Err(Diagnostic::new(
                span,
                format!("`->` on non-pointer type {other}"),
            )),
        }
    }

    fn field_of(
        &self,
        struct_name: &str,
        field: &str,
        span: Span,
    ) -> Result<(u32, CType), Diagnostic> {
        let layout = self
            .module
            .struct_layout(struct_name)
            .ok_or_else(|| Diagnostic::new(span, format!("unknown struct `{struct_name}`")))?;
        let idx = layout.field_index(field).ok_or_else(|| {
            Diagnostic::new(
                span,
                format!("struct `{struct_name}` has no field `{field}`"),
            )
        })?;
        Ok((idx as u32, layout.fields[idx].1.clone()))
    }
}
