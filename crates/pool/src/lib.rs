//! `spex-pool` — the shared scoped-thread worker pool.
//!
//! One primitive, [`run_indexed`]: produce `n` results on up to `threads`
//! scoped workers, writing results back by index so output order is
//! deterministic regardless of scheduling. It sits below `spex-core` in
//! the crate graph (depending only on `spex-obs` for telemetry), so both
//! the inference passes and the checking layer fan work across the same
//! pool without a dependency cycle.
//!
//! # Determinism contract
//!
//! * **Results** come back in index order — `out[i] == make(i)` — however
//!   the jobs were scheduled.
//! * **Telemetry counts** are thread-count-independent: `pool.runs`,
//!   `pool.jobs` and one `pool.queue.depth` observation per job (depth
//!   `n - i` for job `i`, the same multiset of samples whether one worker
//!   or sixteen drain the queue). Only the per-worker gauges
//!   (`pool.worker.N.jobs`, `pool.worker.N.utilization_pct`) and the
//!   recorded timings are scheduling-dependent, and those are excluded
//!   from `counts_signature()` by design.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Produces `n` results with `make` on up to `threads` scoped workers,
/// sharing an atomic cursor and writing results back by index so output
/// order is deterministic regardless of scheduling.
///
/// When a `recorder` is given, each worker installs it for its lifetime
/// (thread-locals do not cross `spawn`, so the caller's install alone
/// would leave workers silent) and reports per-worker job counts and
/// utilization, per-job queue-depth samples, and pool-wide totals into
/// it. Spans opened inside `make` re-root at the worker's top level —
/// the per-job span tree is the same shape at every thread count.
pub fn run_indexed<T, F>(
    threads: usize,
    n: usize,
    recorder: Option<&Arc<spex_obs::Recorder>>,
    make: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.max(1).min(n.max(1));
    if let Some(rec) = recorder {
        let _telemetry = spex_obs::install(rec);
        spex_obs::counter("pool.runs", 1);
        spex_obs::counter("pool.jobs", n as u64);
        spex_obs::gauge("pool.workers", workers as i64);
    }
    if workers <= 1 {
        let _telemetry = recorder.map(spex_obs::install);
        return (0..n)
            .map(|i| {
                spex_obs::observe("pool.queue.depth", (n - i) as u64);
                make(i)
            })
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for w in 0..workers {
            scope.spawn({
                let cursor = &cursor;
                let slots = &slots;
                let make = &make;
                move || {
                    let _telemetry = recorder.map(spex_obs::install);
                    let started = spex_obs::clock();
                    let mut jobs = 0u64;
                    let mut busy_ns = 0u128;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        spex_obs::observe("pool.queue.depth", (n - i) as u64);
                        let job_start = spex_obs::clock();
                        let result = make(i);
                        *slots[i].lock().unwrap() = Some(result);
                        jobs += 1;
                        if let Some(t) = job_start {
                            busy_ns += t.elapsed().as_nanos();
                        }
                    }
                    if let Some(started) = started {
                        report_worker(w, jobs, busy_ns, started);
                    }
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("worker filled every slot"))
        .collect()
}

/// Publishes one worker's lifetime stats: how many jobs it took and what
/// fraction of its wall-clock it spent inside them.
fn report_worker(worker: usize, jobs: u64, busy_ns: u128, started: Instant) {
    let wall_ns = started.elapsed().as_nanos().max(1);
    let utilization = (busy_ns.min(wall_ns) * 100 / wall_ns) as i64;
    spex_obs::gauge(&format!("pool.worker.{worker}.jobs"), jobs as i64);
    spex_obs::gauge(
        &format!("pool.worker.{worker}.utilization_pct"),
        utilization,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_order_is_deterministic_across_thread_counts() {
        let serial = run_indexed(1, 64, None, |i| i * 7);
        for threads in [2, 4, 8] {
            assert_eq!(run_indexed(threads, 64, None, |i| i * 7), serial);
        }
    }

    #[test]
    fn zero_jobs_is_fine() {
        assert_eq!(run_indexed(4, 0, None, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn queue_depth_samples_once_per_job_at_any_thread_count() {
        let mut per_threads = Vec::new();
        for threads in [1, 3, 8] {
            let rec = Arc::new(spex_obs::Recorder::new());
            run_indexed(threads, 16, Some(&rec), |i| i);
            let snap = rec.snapshot();
            let h = snap
                .histograms
                .get("pool.queue.depth")
                .expect("depth recorded on every path");
            assert_eq!(h.count, 16, "one sample per job at {threads} thread(s)");
            assert_eq!(snap.counter("pool.jobs"), 16);
            per_threads.push((h.count, h.sum, h.buckets.clone()));
        }
        assert!(
            per_threads.windows(2).all(|w| w[0] == w[1]),
            "the depth histogram must be identical at every thread count"
        );
    }

    #[test]
    fn worker_gauges_report_only_under_a_recorder() {
        let rec = Arc::new(spex_obs::Recorder::new());
        run_indexed(4, 8, Some(&rec), |i| i);
        let snap = rec.snapshot();
        assert!(snap
            .gauges
            .keys()
            .any(|k| k.starts_with("pool.worker.") && k.ends_with(".jobs")));
        assert_eq!(snap.gauges.get("pool.workers"), Some(&4));
    }
}
