//! `spex daemon` — a warm [`Workspace`] behind a versioned JSON-Lines
//! protocol (see `docs/protocol.md`). One request per line; every reply
//! starts with a single header object, and `check`/`react` replies are
//! followed by the report's raw JSON-Lines body — byte-identical to the
//! one-shot `spex check --format jsonl` / `spex react --format jsonl`
//! output for the same database state and the same file labels.
//!
//! Transports: `--stdio` (EOF means shutdown) or `--socket PATH` (Unix
//! domain socket; connections are served sequentially against the same
//! warm workspace until a `shutdown` request arrives).

use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;

use crate::driver::{parse_dialect, value_of, CliError, CliResult};
use spex::check::json::{quote, Json};
use spex::check::{ConstraintDb, ReanalyzeReport};
use spex::conf::Dialect;
use spex::{JsonLinesRenderer, Workspace};

/// The daemon protocol version this binary speaks.
const PROTOCOL: u32 = 1;

/// The warm state a daemon serves from.
struct DaemonState {
    ws: Workspace,
    /// Names of modules fed through `analyze` requests (the workspace
    /// doesn't expose its module set).
    modules: BTreeSet<String>,
    /// Counters from the most recent `analyze` request.
    last: ReanalyzeReport,
    /// Field-wise sums over every `analyze` request.
    total: ReanalyzeReport,
    /// Number of `check` requests served.
    checks: usize,
}

/// Runs `spex daemon`.
pub fn run(mut args: std::vec::IntoIter<String>) -> CliResult {
    let mut system = String::from("spex");
    let mut dialect = Dialect::KeyValue;
    let mut threads = 0usize;
    let mut stdio = false;
    let mut socket: Option<PathBuf> = None;
    let mut db: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--stdio" => stdio = true,
            "--socket" => socket = Some(PathBuf::from(value_of("--socket", &mut args)?)),
            "--system" => system = value_of("--system", &mut args)?,
            "--dialect" => dialect = parse_dialect(&value_of("--dialect", &mut args)?)?,
            "--threads" => {
                let v = value_of("--threads", &mut args)?;
                threads = v
                    .parse()
                    .map_err(|_| CliError(format!("--threads: not a number: {v:?}")))?;
            }
            "--db" => db = Some(PathBuf::from(value_of("--db", &mut args)?)),
            other => return Err(CliError(format!("unknown option {other:?}"))),
        }
    }
    if stdio == socket.is_some() {
        return Err(CliError(
            "daemon needs exactly one of --stdio or --socket PATH".into(),
        ));
    }
    let mut ws = match &db {
        Some(path) => Workspace::from_db(ConstraintDb::load(path)?),
        None => Workspace::new(system, dialect),
    };
    if threads > 0 {
        ws = ws.with_threads(threads);
    }
    let mut state = DaemonState {
        ws,
        modules: BTreeSet::new(),
        last: ReanalyzeReport::default(),
        total: ReanalyzeReport::default(),
        checks: 0,
    };
    if stdio {
        eprintln!("spex daemon: ready (stdio, protocol v{PROTOCOL})");
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        serve(&mut state, stdin.lock(), &mut stdout.lock())?;
        return Ok(0);
    }
    serve_socket(&mut state, &socket.expect("checked above"))
}

/// Accept loop for `--socket`. Unix-only: domain sockets have no std
/// equivalent elsewhere.
#[cfg(unix)]
fn serve_socket(state: &mut DaemonState, path: &PathBuf) -> CliResult {
    let _ = std::fs::remove_file(path);
    let listener = std::os::unix::net::UnixListener::bind(path)
        .map_err(|e| CliError(format!("socket {}: {e}", path.display())))?;
    eprintln!(
        "spex daemon: listening on {} (protocol v{PROTOCOL})",
        path.display()
    );
    for conn in listener.incoming() {
        let conn = conn.map_err(|e| CliError(format!("accept: {e}")))?;
        let reader = BufReader::new(
            conn.try_clone()
                .map_err(|e| CliError(format!("socket clone: {e}")))?,
        );
        let mut writer = conn;
        if serve(state, reader, &mut writer)? {
            break;
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(0)
}

#[cfg(not(unix))]
fn serve_socket(_state: &mut DaemonState, _path: &PathBuf) -> CliResult {
    Err(CliError(
        "--socket requires a Unix platform; use --stdio".into(),
    ))
}

/// Serves one request stream. Returns `Ok(true)` when a `shutdown`
/// request ended the session (as opposed to EOF closing the transport).
fn serve(
    state: &mut DaemonState,
    reader: impl BufRead,
    writer: &mut impl Write,
) -> Result<bool, CliError> {
    for line in reader.lines() {
        let line = line.map_err(|e| CliError(format!("read: {e}")))?;
        if line.trim().is_empty() {
            continue;
        }
        let (reply, shutdown) = handle_line(state, &line);
        writer
            .write_all(reply.as_bytes())
            .and_then(|()| writer.flush())
            .map_err(|e| CliError(format!("write: {e}")))?;
        if shutdown {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Renders a request id for a reply header (`null` when the request never
/// carried a usable one).
fn id_json(id: Option<i64>) -> String {
    id.map_or_else(|| "null".into(), |v| v.to_string())
}

/// One protocol error reply.
fn error_reply(id: Option<i64>, msg: &str) -> String {
    format!(
        "{{\"v\":{PROTOCOL},\"id\":{},\"ok\":false,\"error\":{}}}\n",
        id_json(id),
        quote(msg)
    )
}

/// Parses and dispatches one request line; never panics on bad input.
/// Returns the full reply (header plus any body lines) and whether the
/// daemon should shut down.
fn handle_line(state: &mut DaemonState, line: &str) -> (String, bool) {
    let req = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => return (error_reply(None, &format!("malformed request: {e}")), false),
    };
    let id = req.get("id").and_then(Json::as_f64).map(|v| v as i64);
    match req.get("v").and_then(Json::as_f64) {
        Some(v) if v as u32 == PROTOCOL => {}
        Some(v) => {
            return (
                error_reply(id, &format!("unsupported protocol version {v}")),
                false,
            )
        }
        None => return (error_reply(id, "missing protocol version \"v\""), false),
    }
    let Some(op) = req.get("op").and_then(Json::as_str) else {
        return (error_reply(id, "missing \"op\""), false);
    };
    match op {
        "analyze" => (op_analyze(state, id, &req), false),
        "check" => (op_check(state, id, &req), false),
        "react" => (op_react(state, id), false),
        "status" => (op_status(state, id), false),
        "shutdown" => (
            format!(
                "{{\"v\":{PROTOCOL},\"id\":{},\"op\":\"shutdown\",\"ok\":true}}\n",
                id_json(id)
            ),
            true,
        ),
        other => (error_reply(id, &format!("unknown op {other:?}")), false),
    }
}

/// `analyze`: add or update the given modules, then re-infer whatever the
/// change dirtied. New modules are added; a module the daemon has seen
/// before is updated (fingerprint-diffed, so unchanged functions stay
/// warm), and its annotations are only replaced when the request carries
/// an `annotations` field.
fn op_analyze(state: &mut DaemonState, id: Option<i64>, req: &Json) -> String {
    let Some(modules) = req.get("modules").and_then(Json::as_array) else {
        return error_reply(id, "analyze: missing \"modules\" array");
    };
    for m in modules {
        let Some(name) = m.get("name").and_then(Json::as_str) else {
            return error_reply(id, "analyze: module without a \"name\"");
        };
        let Some(source) = m.get("source").and_then(Json::as_str) else {
            return error_reply(id, &format!("analyze: module {name:?} without \"source\""));
        };
        let annotations = m.get("annotations").and_then(Json::as_str);
        let result = if state.modules.contains(name) {
            state
                .ws
                .update_module(name, source)
                .map(|_| ())
                .and_then(|()| match annotations {
                    Some(a) => state.ws.update_annotations(name, a),
                    None => Ok(()),
                })
        } else {
            state
                .ws
                .add_module(name.to_string(), source, annotations.unwrap_or(""))
                .map(|()| {
                    state.modules.insert(name.to_string());
                })
        };
        if let Err(e) = result {
            return error_reply(id, &e.to_string());
        }
    }
    let r = state.ws.reanalyze();
    absorb(&mut state.total, &r);
    state.last = r.clone();
    format!(
        "{{\"v\":{PROTOCOL},\"id\":{},\"op\":\"analyze\",\"ok\":true,\
         \"modules_analyzed\":{},\"params_total\":{},\"params_reinferred\":{},\
         \"constraints_added\":{},\"constraints_removed\":{},\
         \"params\":{},\"constraints\":{}}}\n",
        id_json(id),
        r.modules_analyzed,
        r.params_total,
        r.params_reinferred,
        r.constraints_added,
        r.constraints_removed,
        state.ws.db().param_names().count(),
        state.ws.db().constraint_count(),
    )
}

/// `check`: validate in-memory config texts (`configs`) and/or config
/// trees on disk (`paths`) against the warm database. The body after the
/// header is the report's JSON-Lines rendering, verbatim.
fn op_check(state: &mut DaemonState, id: Option<i64>, req: &Json) -> String {
    let configs = req.get("configs").and_then(Json::as_array);
    let paths = req.get("paths").and_then(Json::as_array);
    let report = match (configs, paths) {
        (Some(configs), None) => {
            let mut texts: Vec<(String, String)> = Vec::with_capacity(configs.len());
            for c in configs {
                let (Some(name), Some(text)) = (
                    c.get("name").and_then(Json::as_str),
                    c.get("text").and_then(Json::as_str),
                ) else {
                    return error_reply(id, "check: each config needs \"name\" and \"text\"");
                };
                texts.push((name.to_string(), text.to_string()));
            }
            state.ws.check_texts(&texts)
        }
        (None, Some(paths)) => {
            let mut roots: Vec<PathBuf> = Vec::with_capacity(paths.len());
            for p in paths {
                let Some(p) = p.as_str() else {
                    return error_reply(id, "check: \"paths\" must be strings");
                };
                roots.push(PathBuf::from(p));
            }
            match state.ws.check_paths(&roots) {
                Ok(r) => r,
                Err(e) => return error_reply(id, &format!("check: {e}")),
            }
        }
        _ => {
            return error_reply(id, "check: need exactly one of \"configs\" or \"paths\"");
        }
    };
    state.checks += 1;
    let body = report.render(&JsonLinesRenderer);
    format!(
        "{{\"v\":{PROTOCOL},\"id\":{},\"op\":\"check\",\"ok\":true,\"exit_code\":{},\"lines\":{}}}\n{body}",
        id_json(id),
        report.exit_code(),
        body.lines().count(),
    )
}

/// `react`: the static reaction-analysis report, JSON-Lines body after
/// the header.
fn op_react(state: &mut DaemonState, id: Option<i64>) -> String {
    let report = state.ws.reaction_report();
    let body = report.render(&JsonLinesRenderer);
    format!(
        "{{\"v\":{PROTOCOL},\"id\":{},\"op\":\"react\",\"ok\":true,\"exit_code\":{},\"lines\":{}}}\n{body}",
        id_json(id),
        report.exit_code(),
        body.lines().count(),
    )
}

/// `status`: warm-state introspection — database shape, cache
/// effectiveness counters, and the pass accounting for the last and the
/// cumulative `analyze` requests.
fn op_status(state: &mut DaemonState, id: Option<i64>) -> String {
    let db = state.ws.db();
    format!(
        "{{\"v\":{PROTOCOL},\"id\":{},\"op\":\"status\",\"ok\":true,\
         \"system\":{},\"modules\":{},\"params\":{},\"constraints\":{},\
         \"checks\":{},\"session_rebuilds\":{},\"module_clones\":{},\"function_clones\":{},\
         \"last\":{},\"total\":{}}}\n",
        id_json(id),
        quote(state.ws.system()),
        state.modules.len(),
        db.param_names().count(),
        db.constraint_count(),
        state.checks,
        state.ws.session_rebuilds(),
        state.ws.module_clones(),
        state.ws.function_clones(),
        report_json(&state.last),
        report_json(&state.total),
    )
}

/// Serializes one [`ReanalyzeReport`] — inference work plus the
/// pass-cache counters the incremental acceptance tests assert on.
fn report_json(r: &ReanalyzeReport) -> String {
    format!(
        "{{\"modules_analyzed\":{},\"params_total\":{},\"params_reinferred\":{},\
         \"constraints_added\":{},\"constraints_removed\":{},\
         \"mapping_extractions\":{},\"mapping_cache_hits\":{},\
         \"summary_runs\":{},\"summary_cache_hits\":{},\
         \"taint_runs\":{},\"taint_cache_hits\":{},\
         \"react_runs\":{},\"react_cache_hits\":{}}}",
        r.modules_analyzed,
        r.params_total,
        r.params_reinferred,
        r.constraints_added,
        r.constraints_removed,
        r.passes.mapping_extractions,
        r.passes.mapping_cache_hits,
        r.passes.summary_runs,
        r.passes.summary_cache_hits,
        r.passes.taint_runs,
        r.passes.taint_cache_hits,
        r.passes.react_runs,
        r.passes.react_cache_hits,
    )
}

/// Field-wise accumulation for the `total` block of `status`.
fn absorb(total: &mut ReanalyzeReport, r: &ReanalyzeReport) {
    total.modules_analyzed += r.modules_analyzed;
    total.params_total += r.params_total;
    total.params_reinferred += r.params_reinferred;
    total.constraints_added += r.constraints_added;
    total.constraints_removed += r.constraints_removed;
    total.passes.basic_type += r.passes.basic_type;
    total.passes.semantic_type += r.passes.semantic_type;
    total.passes.range += r.passes.range;
    total.passes.control_dep += r.passes.control_dep;
    total.passes.value_rel += r.passes.value_rel;
    total.passes.mapping_extractions += r.passes.mapping_extractions;
    total.passes.mapping_cache_hits += r.passes.mapping_cache_hits;
    total.passes.summary_runs += r.passes.summary_runs;
    total.passes.summary_cache_hits += r.passes.summary_cache_hits;
    total.passes.taint_runs += r.passes.taint_runs;
    total.passes.taint_cache_hits += r.passes.taint_cache_hits;
    total.passes.react_runs += r.passes.react_runs;
    total.passes.react_cache_hits += r.passes.react_cache_hits;
}
