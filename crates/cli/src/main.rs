//! The `spex` command line — SPEX (SOSP 2013, "Do not blame users for
//! misconfigurations") as a tool operators actually run: one-shot
//! analysis and checking, sharded fleet ingestion, a warm check daemon,
//! and an incremental watch loop.
//!
//! Exit codes are part of the contract: `0` clean, `1` errors (invalid
//! values, unreadable or unvalidated files), `2` warnings only, `3`
//! usage or operational failure. `analyze`, `db merge`, `shard` and
//! `fleet-gen` return `0`/`3`; `check` and `react` surface the report's
//! verdict.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod analyze;
mod checkcmd;
mod daemon;
mod dbcmd;
mod driver;
mod fleetgen;
mod shard;
mod watch;

/// Top-level usage. Golden-tested: `spex --help` must print exactly this.
const HELP: &str = "\
spex — do not blame users for misconfigurations (SOSP 2013)

USAGE:
    spex <SUBCOMMAND> [OPTIONS] [PATHS...]

SUBCOMMANDS:
    analyze      Infer configuration constraints from source, persist a database
    check        Validate configuration files against a constraint database
    react        Predict how the system would react to invalid values
    db merge     Merge constraint databases, tightest constraint wins
    shard        Analyze modules across worker processes, merge the shards
    daemon       Warm workspace answering JSON-Lines requests (stdio/socket)
    watch        Re-analyze and re-check on file changes (mtime polling)
    fleet-gen    Materialize the synthetic fleet corpus as fixtures

OPTIONS:
    -h, --help       Print help (or `spex <SUBCOMMAND> --help`)
    -V, --version    Print version

EXIT CODES:
    0 clean · 1 errors · 2 warnings only · 3 usage/operational failure
";

/// Per-subcommand usage, printed by `spex <SUBCOMMAND> --help`.
fn sub_help(cmd: &str) -> Option<&'static str> {
    Some(match cmd {
        "analyze" => {
            "USAGE: spex analyze [OPTIONS] SRC...\n\
             Infer constraints from mini-C sources (files, or directories walked\n\
             for *.c; sibling *.spex files supply mapping annotations).\n\n\
             OPTIONS:\n\
             \x20   --db PATH        Persist the constraint database here\n\
             \x20   --system NAME    Subject-system name [default: spex]\n\
             \x20   --dialect D      key-value | directive | space [default: key-value]\n\
             \x20   --threads N      Parallel inference threads [default: workspace]\n\
             \x20   --telemetry      Print the telemetry span tree after analysis\n\
             \x20   --quiet          Suppress the analysis summary\n"
        }
        "check" => {
            "USAGE: spex check --db PATH [OPTIONS] CONFIGS...\n\
             Validate config files (or directories, walked recursively) against\n\
             a persisted constraint database.\n\n\
             OPTIONS:\n\
             \x20   --db PATH        Constraint database to check against (required)\n\
             \x20   --format F       human | jsonl | sarif [default: human]\n\
             \x20   --color M        auto | always | never [default: auto]\n"
        }
        "react" => {
            "USAGE: spex react [OPTIONS] SRC...\n\
             Analyze sources, then report each parameter's predicted reaction\n\
             to an invalid value (SPEX-V001..V004).\n\n\
             OPTIONS: as `spex analyze`, plus --format / --color as `spex check`.\n"
        }
        "db" => {
            "USAGE: spex db merge --out PATH IN1 IN2...\n\
             Merge constraint databases in argument order; on conflicting\n\
             constraints for one parameter the tightest wins. Prints the merge\n\
             report and persists the result.\n"
        }
        "shard" => {
            "USAGE: spex shard --db PATH [OPTIONS] SRC...\n\
             Partition the module set round-robin across worker processes (each\n\
             `spex analyze --quiet`), then merge the per-worker databases.\n\n\
             OPTIONS:\n\
             \x20   --db PATH        Merged database output (required)\n\
             \x20   --workers N      Worker process count [default: 4]\n\
             \x20   --jobs N         Inference threads per worker [default: all cores]\n\
             \x20   --system NAME    Subject-system name [default: spex]\n\
             \x20   --dialect D      key-value | directive | space [default: key-value]\n\
             \x20   --self-check     Also analyze single-process in-process and fail\n\
             \x20                    unless the merged database is byte-identical\n"
        }
        "daemon" => {
            "USAGE: spex daemon (--stdio | --socket PATH) [OPTIONS]\n\
             Hold a warm workspace and answer versioned JSON-Lines requests\n\
             (analyze / check / react / status / shutdown) — see docs/protocol.md.\n\n\
             OPTIONS:\n\
             \x20   --stdio          Serve requests on stdin/stdout (EOF shuts down)\n\
             \x20   --socket PATH    Serve a Unix domain socket (connections served\n\
             \x20                    sequentially against the same warm state)\n\
             \x20   --system NAME    Subject-system name [default: spex]\n\
             \x20   --dialect D      key-value | directive | space [default: key-value]\n\
             \x20   --threads N      Parallel inference threads\n\
             \x20   --db PATH        Seed the workspace from a persisted database\n"
        }
        "watch" => {
            "USAGE: spex watch --src PATH [--src PATH...] [OPTIONS]\n\
             Poll sources and configs for changes (mtime+size, std-only),\n\
             debounce, re-analyze only what the edit dirtied, re-check.\n\n\
             OPTIONS:\n\
             \x20   --src PATH         Source file/dir to watch (repeatable, required)\n\
             \x20   --conf PATH        Config file/dir to re-check (repeatable)\n\
             \x20   --system NAME      Subject-system name [default: spex]\n\
             \x20   --dialect D        key-value | directive | space [default: key-value]\n\
             \x20   --threads N        Parallel inference threads\n\
             \x20   --poll-ms N        Poll interval [default: 200]\n\
             \x20   --debounce-ms N    Quiet window before applying [default: 150]\n\
             \x20   --max-events N     Exit after N applied events (0 = forever)\n\
             \x20   --format F         human | jsonl | sarif [default: human]\n\
             \x20   --color M          auto | always | never [default: auto]\n"
        }
        "fleet-gen" => {
            "USAGE: spex fleet-gen --out DIR [OPTIONS]\n\
             Write the deterministic synthetic fleet (sources + annotations\n\
             under DIR/src, config corpus under DIR/configs).\n\n\
             OPTIONS:\n\
             \x20   --out DIR                 Output directory (required)\n\
             \x20   --modules N               Fleet size [default: 24]\n\
             \x20   --configs-per-module N    Config files per module [default: 7]\n\
             \x20   --seed N                  Generation seed [default: 989927]\n"
        }
        _ => return None,
    })
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        eprint!("{HELP}");
        std::process::exit(3);
    };
    match cmd.as_str() {
        "-h" | "--help" | "help" => {
            print!("{HELP}");
            return;
        }
        "-V" | "--version" => {
            println!("spex {}", env!("CARGO_PKG_VERSION"));
            return;
        }
        _ => {}
    }
    if args.iter().any(|a| a == "-h" || a == "--help") {
        match sub_help(&cmd) {
            Some(h) => {
                print!("{h}");
                return;
            }
            None => {
                eprintln!("spex: error: unknown subcommand {cmd:?}");
                eprint!("{HELP}");
                std::process::exit(3);
            }
        }
    }
    let rest: Vec<String> = args.split_off(1);
    install_pipe_quiet_hook();
    let result = std::panic::catch_unwind(move || match cmd.as_str() {
        "analyze" => analyze::run(rest.into_iter()),
        "check" => checkcmd::run(rest.into_iter()),
        "react" => analyze::run_react(rest.into_iter()),
        "db" => dbcmd::run(rest.into_iter()),
        "shard" => shard::run(rest.into_iter()),
        "daemon" => daemon::run(rest.into_iter()),
        "watch" => watch::run(rest.into_iter()),
        "fleet-gen" => fleetgen::run(rest.into_iter()),
        other => {
            eprintln!("spex: error: unknown subcommand {other:?}");
            eprint!("{HELP}");
            std::process::exit(3);
        }
    });
    match result {
        Ok(Ok(code)) => std::process::exit(code),
        Ok(Err(e)) => {
            eprintln!("spex: error: {e}");
            std::process::exit(3);
        }
        Err(payload) => {
            if is_broken_pipe(payload.as_ref()) {
                // Downstream closed the pipe (`spex ... | head`): a normal
                // early exit, reported the way a SIGPIPE death would be.
                std::process::exit(128 + 13);
            }
            std::panic::resume_unwind(payload);
        }
    }
}

/// `println!` panics on EPIPE; without this, `spex check | head` ends in a
/// backtrace. The hook silences that one panic class (the unwind is then
/// converted to exit 141 in [`main`]); everything else keeps the default
/// report.
fn install_pipe_quiet_hook() {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if !is_broken_pipe(info.payload()) {
            default(info);
        }
    }));
}

/// Whether a panic payload is std's "failed printing to stdout: Broken
/// pipe" (the payload is always the formatted `String`).
fn is_broken_pipe(payload: &dyn std::any::Any) -> bool {
    payload
        .downcast_ref::<String>()
        .is_some_and(|s| s.contains("Broken pipe"))
}
