//! The shared driver layer: operational errors, argument helpers, source
//! collection, workspace construction and report rendering — everything
//! more than one subcommand needs.

use std::path::{Path, PathBuf};

use spex::check::ReanalyzeReport;
use spex::conf::Dialect;
use spex::{ColorMode, HumanRenderer, JsonLinesRenderer, Report, SarifRenderer, Workspace};

/// A usage or operational failure. Rendered as `spex: error: {msg}` on
/// stderr and mapped to exit code 3, keeping 0/1/2 reserved for
/// validation verdicts ([`Report::exit_code`]).
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> CliError {
        CliError(e.to_string())
    }
}

impl From<String> for CliError {
    fn from(msg: String) -> CliError {
        CliError(msg)
    }
}

impl From<spex::WorkspaceError> for CliError {
    fn from(e: spex::WorkspaceError) -> CliError {
        CliError(e.to_string())
    }
}

/// Everything a subcommand returns: `Ok(exit_code)` or an operational
/// failure.
pub type CliResult = Result<i32, CliError>;

/// Pulls the value of option `flag` out of the argument stream, erroring
/// with the flag's name when the stream ends instead.
pub fn value_of(flag: &str, args: &mut std::vec::IntoIter<String>) -> Result<String, CliError> {
    args.next()
        .ok_or_else(|| CliError(format!("{flag} requires a value")))
}

/// Parses the `--dialect` spellings, which match the constraint-database
/// tags: `key-value`, `directive`, `space`.
pub fn parse_dialect(s: &str) -> Result<Dialect, CliError> {
    match s {
        "key-value" => Ok(Dialect::KeyValue),
        "directive" => Ok(Dialect::Directive),
        "space" => Ok(Dialect::SpaceSeparated),
        other => Err(CliError(format!(
            "unknown dialect {other:?} (expected key-value, directive or space)"
        ))),
    }
}

/// The persisted tag for a dialect — what `shard` forwards to its worker
/// processes.
pub fn dialect_tag(d: Dialect) -> &'static str {
    match d {
        Dialect::KeyValue => "key-value",
        Dialect::Directive => "directive",
        Dialect::SpaceSeparated => "space",
    }
}

/// Parses the `--color` spellings.
pub fn parse_color(s: &str) -> Result<ColorMode, CliError> {
    ColorMode::parse(s).ok_or_else(|| {
        CliError(format!(
            "unknown color mode {s:?} (expected auto, always, never)"
        ))
    })
}

/// The report output format selected by `--format`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutFormat {
    /// Human-readable text, optionally colored.
    #[default]
    Human,
    /// One JSON object per line, summary last.
    Jsonl,
    /// A SARIF-style document.
    Sarif,
}

/// Parses the `--format` spellings.
pub fn parse_format(s: &str) -> Result<OutFormat, CliError> {
    match s {
        "human" => Ok(OutFormat::Human),
        "jsonl" => Ok(OutFormat::Jsonl),
        "sarif" => Ok(OutFormat::Sarif),
        other => Err(CliError(format!(
            "unknown format {other:?} (expected human, jsonl or sarif)"
        ))),
    }
}

/// Renders a report in the selected format; `color` only affects
/// [`OutFormat::Human`].
pub fn render_report(report: &Report, format: OutFormat, color: ColorMode) -> String {
    match format {
        OutFormat::Human => report.render(&HumanRenderer::with_color(color)),
        OutFormat::Jsonl => report.render(&JsonLinesRenderer),
        OutFormat::Sarif => report.render(&SarifRenderer),
    }
}

/// One source module ready for [`Workspace::add_module`]: the module name
/// (its path as given), the mini-C text, and its sibling annotations.
pub struct SourceFile {
    /// Module name — the source path's display string, so constraint
    /// provenance matches across single-process and sharded runs fed the
    /// same paths.
    pub name: String,
    /// The module's mini-C source text.
    pub source: String,
    /// The sibling `.spex` annotation block, or empty when there is none.
    pub annotations: String,
}

/// Expands `--src` arguments into modules: files are taken as given,
/// directories are walked recursively for `*.c`. Each module's
/// annotations come from the sibling file with the `.spex` extension
/// (absent sibling = no annotations). The result is sorted by name so
/// every run — serial, threaded, sharded — feeds the workspace in one
/// canonical order.
pub fn collect_sources(paths: &[PathBuf]) -> Result<Vec<SourceFile>, CliError> {
    let mut files: Vec<PathBuf> = Vec::new();
    for p in paths {
        let meta =
            std::fs::metadata(p).map_err(|e| CliError(format!("source {}: {e}", p.display())))?;
        if meta.is_dir() {
            walk_c_files(p, &mut files)?;
        } else {
            files.push(p.clone());
        }
    }
    files.sort();
    files.dedup();
    let mut out = Vec::with_capacity(files.len());
    for path in files {
        let source = std::fs::read_to_string(&path)
            .map_err(|e| CliError(format!("source {}: {e}", path.display())))?;
        let sibling = path.with_extension("spex");
        let annotations = match std::fs::read_to_string(&sibling) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(CliError(format!("annotations {}: {e}", sibling.display()))),
        };
        out.push(SourceFile {
            name: path.display().to_string(),
            source,
            annotations,
        });
    }
    Ok(out)
}

fn walk_c_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), CliError> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| CliError(format!("source {}: {e}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(|e| CliError(format!("source {}: {e}", dir.display())))?;
        let path = entry.path();
        if path.is_dir() {
            walk_c_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "c") {
            out.push(path);
        }
    }
    Ok(())
}

/// Builds a workspace over collected sources and runs the first analysis.
pub fn analyze_sources(
    system: &str,
    dialect: Dialect,
    threads: usize,
    telemetry: bool,
    sources: &[SourceFile],
) -> Result<(Workspace, ReanalyzeReport), CliError> {
    let mut ws = Workspace::new(system, dialect);
    if threads > 0 {
        ws = ws.with_threads(threads);
    }
    if telemetry {
        ws.enable_telemetry();
    }
    for s in sources {
        ws.add_module(s.name.clone(), &s.source, &s.annotations)?;
    }
    let report = ws.reanalyze();
    Ok((ws, report))
}

/// The analysis summary `analyze`, `shard` and `watch` print: one line of
/// headline counts plus the pass/cache accounting.
pub fn render_reanalyze(ws: &Workspace, r: &ReanalyzeReport) -> String {
    let db = ws.db();
    let mut out = format!(
        "analyzed {} module(s): {} parameter(s), {} constraint(s)\n",
        r.modules_analyzed,
        db.param_names().count(),
        db.constraint_count(),
    );
    out.push_str(&format!(
        "re-inferred {}/{} parameter(s), constraints +{}/-{}\n",
        r.params_reinferred, r.params_total, r.constraints_added, r.constraints_removed,
    ));
    out.push_str(&format!(
        "passes: basic {}, semantic {}, range {}, control-dep {}, value-rel {}\n",
        r.passes.basic_type,
        r.passes.semantic_type,
        r.passes.range,
        r.passes.control_dep,
        r.passes.value_rel,
    ));
    out.push_str(&format!(
        "cache: mapping {} hit(s)/{} run(s), summary {} hit(s)/{} run(s), \
         taint {} hit(s)/{} run(s), react {} hit(s)/{} run(s)\n",
        r.passes.mapping_cache_hits,
        r.passes.mapping_extractions,
        r.passes.summary_cache_hits,
        r.passes.summary_runs,
        r.passes.taint_cache_hits,
        r.passes.taint_runs,
        r.passes.react_cache_hits,
        r.passes.react_runs,
    ));
    out
}
