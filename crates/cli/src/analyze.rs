//! `spex analyze` — infer constraints from source and persist a database —
//! and `spex react` — the static reaction-analysis report.

use std::path::PathBuf;

use crate::driver::{
    analyze_sources, collect_sources, parse_color, parse_dialect, parse_format, render_reanalyze,
    render_report, value_of, CliError, CliResult, OutFormat,
};
use spex::conf::Dialect;
use spex::ColorMode;

/// Options shared by `analyze` and `react`: the workspace shape plus the
/// source set.
pub struct AnalyzeOpts {
    /// Subject-system name recorded in the database header.
    pub system: String,
    /// Config-file dialect of the subject system.
    pub dialect: Dialect,
    /// Worker threads for inference (`0` = workspace default).
    pub threads: usize,
    /// Whether to record and print the telemetry span tree.
    pub telemetry: bool,
    /// Suppress the analysis summary (shard workers set this).
    pub quiet: bool,
    /// Database output path (`analyze` only; empty = don't persist).
    pub db: Option<PathBuf>,
    /// Report format (`react` only).
    pub format: OutFormat,
    /// Color mode for human output (`react` only).
    pub color: ColorMode,
    /// Source files and directories.
    pub src: Vec<PathBuf>,
}

/// Parses the option stream shared by `analyze` and `react`.
pub fn parse_opts(mut args: std::vec::IntoIter<String>) -> Result<AnalyzeOpts, CliError> {
    let mut opts = AnalyzeOpts {
        system: "spex".into(),
        dialect: Dialect::KeyValue,
        threads: 0,
        telemetry: false,
        quiet: false,
        db: None,
        format: OutFormat::Human,
        color: ColorMode::Auto,
        src: Vec::new(),
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--system" => opts.system = value_of("--system", &mut args)?,
            "--dialect" => opts.dialect = parse_dialect(&value_of("--dialect", &mut args)?)?,
            "--threads" => {
                let v = value_of("--threads", &mut args)?;
                let n: usize = v
                    .parse()
                    .map_err(|_| CliError(format!("--threads: not a number: {v:?}")))?;
                if n == 0 {
                    return Err(CliError(
                        "--threads: must be at least 1 \
                         (omit the flag to use the workspace default)"
                            .into(),
                    ));
                }
                opts.threads = n;
            }
            "--telemetry" => opts.telemetry = true,
            "--quiet" => opts.quiet = true,
            "--db" => opts.db = Some(PathBuf::from(value_of("--db", &mut args)?)),
            "--format" => opts.format = parse_format(&value_of("--format", &mut args)?)?,
            "--color" => opts.color = parse_color(&value_of("--color", &mut args)?)?,
            other if other.starts_with('-') => {
                return Err(CliError(format!("unknown option {other:?}")))
            }
            _ => opts.src.push(PathBuf::from(arg)),
        }
    }
    if opts.src.is_empty() {
        return Err(CliError("no source files or directories given".into()));
    }
    Ok(opts)
}

/// Runs `spex analyze`.
pub fn run(args: std::vec::IntoIter<String>) -> CliResult {
    let opts = parse_opts(args)?;
    let sources = collect_sources(&opts.src)?;
    let (ws, report) = analyze_sources(
        &opts.system,
        opts.dialect,
        opts.threads,
        opts.telemetry,
        &sources,
    )?;
    if !opts.quiet {
        print!("{}", render_reanalyze(&ws, &report));
    }
    if let Some(db) = &opts.db {
        ws.save_db(db)
            .map_err(|e| CliError(format!("db {}: {e}", db.display())))?;
        if !opts.quiet {
            println!("db: {}", db.display());
        }
    }
    if opts.telemetry {
        print!("{}", ws.telemetry().render_text());
    }
    Ok(0)
}

/// Runs `spex react`.
pub fn run_react(args: std::vec::IntoIter<String>) -> CliResult {
    let opts = parse_opts(args)?;
    let sources = collect_sources(&opts.src)?;
    let (ws, _) = analyze_sources(
        &opts.system,
        opts.dialect,
        opts.threads,
        opts.telemetry,
        &sources,
    )?;
    let report = ws.reaction_report();
    print!("{}", render_report(&report, opts.format, opts.color));
    if opts.telemetry {
        print!("{}", ws.telemetry().render_text());
    }
    Ok(report.exit_code())
}
