//! `spex db` — operations on persisted constraint databases. Today that
//! is `merge`: fold N databases into one, tightest constraint winning.

use std::path::PathBuf;

use crate::driver::{value_of, CliError, CliResult};
use spex::check::{ConstraintDb, MergeReport};

/// Runs `spex db <verb>`.
pub fn run(mut args: std::vec::IntoIter<String>) -> CliResult {
    match args.next().as_deref() {
        Some("merge") => merge(args),
        Some(other) => Err(CliError(format!(
            "unknown db verb {other:?} (expected merge)"
        ))),
        None => Err(CliError("db requires a verb (expected merge)".into())),
    }
}

/// `spex db merge --out OUT IN...` — loads every input, merges them in
/// argument order into the first, prints the rendered [`MergeReport`] and
/// persists the result.
fn merge(mut args: std::vec::IntoIter<String>) -> CliResult {
    let mut out: Option<PathBuf> = None;
    let mut inputs: Vec<PathBuf> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = Some(PathBuf::from(value_of("--out", &mut args)?)),
            other if other.starts_with('-') => {
                return Err(CliError(format!("unknown option {other:?}")))
            }
            _ => inputs.push(PathBuf::from(arg)),
        }
    }
    let out = out.ok_or_else(|| CliError("--out is required".into()))?;
    if inputs.len() < 2 {
        return Err(CliError(
            "db merge needs at least two input databases".into(),
        ));
    }
    let mut base = ConstraintDb::load(&inputs[0])?;
    let mut report = MergeReport::default();
    for path in &inputs[1..] {
        let next = ConstraintDb::load(path)?;
        let r = base
            .merge(&next)
            .map_err(|e| CliError(format!("merge {}: {e}", path.display())))?;
        report.absorb(r);
    }
    print!("{}", report.render());
    base.save(&out)
        .map_err(|e| CliError(format!("db {}: {e}", out.display())))?;
    println!("db: {}", out.display());
    Ok(0)
}
