//! `spex shard` — fleet-scale ingestion: split a module tree across N
//! worker *processes* (each running `spex analyze --quiet`), then merge
//! the per-worker databases tightest-wins into one. Optionally
//! self-checks the merged result byte-identical against an in-process
//! single-run over the same modules.

use std::path::{Path, PathBuf};
use std::process::Command;

use crate::driver::{
    analyze_sources, collect_sources, dialect_tag, parse_dialect, value_of, CliError, CliResult,
};
use spex::check::{ConstraintDb, MergeReport};
use spex::conf::Dialect;

/// Runs `spex shard`.
pub fn run(mut args: std::vec::IntoIter<String>) -> CliResult {
    let mut system = String::from("spex");
    let mut dialect = Dialect::KeyValue;
    let mut workers = 4usize;
    let mut jobs = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out: Option<PathBuf> = None;
    let mut self_check = false;
    let mut src: Vec<PathBuf> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--system" => system = value_of("--system", &mut args)?,
            "--dialect" => dialect = parse_dialect(&value_of("--dialect", &mut args)?)?,
            "--workers" => {
                let v = value_of("--workers", &mut args)?;
                workers = v
                    .parse()
                    .map_err(|_| CliError(format!("--workers: not a number: {v:?}")))?;
            }
            "--jobs" => {
                let v = value_of("--jobs", &mut args)?;
                jobs = v
                    .parse()
                    .map_err(|_| CliError(format!("--jobs: not a number: {v:?}")))?;
                if jobs == 0 {
                    return Err(CliError("--jobs must be at least 1".into()));
                }
            }
            "--db" => out = Some(PathBuf::from(value_of("--db", &mut args)?)),
            "--self-check" => self_check = true,
            other if other.starts_with('-') => {
                return Err(CliError(format!("unknown option {other:?}")))
            }
            _ => src.push(PathBuf::from(arg)),
        }
    }
    let out = out.ok_or_else(|| CliError("--db is required".into()))?;
    if src.is_empty() {
        return Err(CliError("no source files or directories given".into()));
    }
    if workers == 0 {
        return Err(CliError("--workers must be at least 1".into()));
    }
    let sources = collect_sources(&src)?;
    if sources.is_empty() {
        return Err(CliError(
            "no .c modules found under the given sources".into(),
        ));
    }
    let workers = workers.min(sources.len());

    // Round-robin partition of module *paths*; workers re-read the files
    // themselves so each process stays independent.
    let mut parts: Vec<Vec<String>> = vec![Vec::new(); workers];
    for (i, s) in sources.iter().enumerate() {
        parts[i % workers].push(s.name.clone());
    }

    let exe =
        std::env::current_exe().map_err(|e| CliError(format!("cannot locate own binary: {e}")))?;
    let tmp = std::env::temp_dir().join(format!("spex-shard-{}", std::process::id()));
    std::fs::create_dir_all(&tmp)
        .map_err(|e| CliError(format!("shard dir {}: {e}", tmp.display())))?;
    let result = drive(
        &exe, &tmp, &system, dialect, jobs, &parts, &out, self_check, &sources,
    );
    let _ = std::fs::remove_dir_all(&tmp);
    result
}

/// Spawns the workers, waits, merges, persists, self-checks.
#[allow(clippy::too_many_arguments)]
fn drive(
    exe: &Path,
    tmp: &Path,
    system: &str,
    dialect: Dialect,
    jobs: usize,
    parts: &[Vec<String>],
    out: &Path,
    self_check: bool,
    sources: &[crate::driver::SourceFile],
) -> CliResult {
    let mut children = Vec::with_capacity(parts.len());
    for (k, part) in parts.iter().enumerate() {
        let shard_db = tmp.join(format!("shard-{k}.spexdb"));
        let child = Command::new(exe)
            .arg("analyze")
            .arg("--quiet")
            .args(["--system", system])
            .args(["--dialect", dialect_tag(dialect)])
            .args(["--threads", &jobs.to_string()])
            .arg("--db")
            .arg(&shard_db)
            .args(part)
            .spawn()
            .map_err(|e| CliError(format!("worker {k}: spawn failed: {e}")))?;
        children.push((k, shard_db, child));
    }
    let mut shards = Vec::with_capacity(children.len());
    let mut failed = Vec::new();
    for (k, shard_db, mut child) in children {
        let status = child
            .wait()
            .map_err(|e| CliError(format!("worker {k}: wait failed: {e}")))?;
        if status.success() {
            shards.push(shard_db);
        } else {
            failed.push(format!("worker {k}: {status}"));
        }
    }
    if !failed.is_empty() {
        return Err(CliError(failed.join("; ")));
    }

    let mut merged = ConstraintDb::load(&shards[0])?;
    let mut report = MergeReport::default();
    for path in &shards[1..] {
        let next = ConstraintDb::load(path)?;
        let r = merged
            .merge(&next)
            .map_err(|e| CliError(format!("merge {}: {e}", path.display())))?;
        report.absorb(r);
    }
    let modules: usize = parts.iter().map(Vec::len).sum();
    println!(
        "shard: {} worker(s) over {} module(s): {} parameter(s), {} constraint(s)",
        parts.len(),
        modules,
        merged.param_names().count(),
        merged.constraint_count(),
    );
    print!("{}", report.render());
    merged
        .save(out)
        .map_err(|e| CliError(format!("db {}: {e}", out.display())))?;
    println!("db: {}", out.display());

    if self_check {
        let (ws, _) = analyze_sources(system, dialect, jobs, false, sources)?;
        let single = ws.db().save_to_string();
        let sharded = merged.save_to_string();
        if single == sharded {
            println!("self-check: byte-identical ({} bytes)", sharded.len());
        } else {
            return Err(CliError(format!(
                "self-check FAILED: sharded db ({} bytes) differs from single-process db ({} bytes)",
                sharded.len(),
                single.len()
            )));
        }
    }
    Ok(0)
}
