//! `spex check` — validate configuration files against a persisted
//! constraint database.

use std::path::PathBuf;

use crate::driver::{
    parse_color, parse_format, render_report, value_of, CliError, CliResult, OutFormat,
};
use spex::check::{CheckSession, ConstraintDb};
use spex::ColorMode;

/// Runs `spex check`.
pub fn run(mut args: std::vec::IntoIter<String>) -> CliResult {
    let mut db_path: Option<PathBuf> = None;
    let mut format = OutFormat::Human;
    let mut color = ColorMode::Auto;
    let mut paths: Vec<PathBuf> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--db" => db_path = Some(PathBuf::from(value_of("--db", &mut args)?)),
            "--format" => format = parse_format(&value_of("--format", &mut args)?)?,
            "--color" => color = parse_color(&value_of("--color", &mut args)?)?,
            other if other.starts_with('-') => {
                return Err(CliError(format!("unknown option {other:?}")))
            }
            _ => paths.push(PathBuf::from(arg)),
        }
    }
    let db_path = db_path.ok_or_else(|| CliError("--db is required".into()))?;
    if paths.is_empty() {
        return Err(CliError(
            "no configuration files or directories given".into(),
        ));
    }
    let db = ConstraintDb::load(&db_path)?;
    let report = CheckSession::new(&db).check_paths(&paths)?;
    print!("{}", render_report(&report, format, color));
    Ok(report.exit_code())
}
