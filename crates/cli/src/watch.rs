//! `spex watch` — the incremental story end-to-end: poll sources and
//! configs for mtime/size changes (std-only, no inotify), debounce bursts,
//! then re-analyze only what the edit dirtied and re-check the config set.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use crate::driver::{
    collect_sources, parse_color, parse_dialect, parse_format, render_reanalyze, render_report,
    value_of, CliError, CliResult, OutFormat,
};
use spex::conf::Dialect;
use spex::{ColorMode, Workspace};

/// A poll snapshot: every watched file's (mtime, length). Two equal
/// snapshots mean the tree is quiescent.
type Snapshot = BTreeMap<PathBuf, (u128, u64)>;

/// Runs `spex watch`.
pub fn run(mut args: std::vec::IntoIter<String>) -> CliResult {
    let mut system = String::from("spex");
    let mut dialect = Dialect::KeyValue;
    let mut threads = 0usize;
    let mut src: Vec<PathBuf> = Vec::new();
    let mut conf: Vec<PathBuf> = Vec::new();
    let mut poll_ms = 200u64;
    let mut debounce_ms = 150u64;
    let mut max_events = 0usize;
    let mut format = OutFormat::Human;
    let mut color = ColorMode::Auto;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--src" => src.push(PathBuf::from(value_of("--src", &mut args)?)),
            "--conf" => conf.push(PathBuf::from(value_of("--conf", &mut args)?)),
            "--system" => system = value_of("--system", &mut args)?,
            "--dialect" => dialect = parse_dialect(&value_of("--dialect", &mut args)?)?,
            "--threads" => {
                let v = value_of("--threads", &mut args)?;
                threads = v
                    .parse()
                    .map_err(|_| CliError(format!("--threads: not a number: {v:?}")))?;
            }
            "--poll-ms" => {
                let v = value_of("--poll-ms", &mut args)?;
                poll_ms = v
                    .parse()
                    .map_err(|_| CliError(format!("--poll-ms: not a number: {v:?}")))?;
            }
            "--debounce-ms" => {
                let v = value_of("--debounce-ms", &mut args)?;
                debounce_ms = v
                    .parse()
                    .map_err(|_| CliError(format!("--debounce-ms: not a number: {v:?}")))?;
            }
            "--max-events" => {
                let v = value_of("--max-events", &mut args)?;
                max_events = v
                    .parse()
                    .map_err(|_| CliError(format!("--max-events: not a number: {v:?}")))?;
            }
            "--format" => format = parse_format(&value_of("--format", &mut args)?)?,
            "--color" => color = parse_color(&value_of("--color", &mut args)?)?,
            other => return Err(CliError(format!("unknown option {other:?}"))),
        }
    }
    if src.is_empty() {
        return Err(CliError("watch needs at least one --src".into()));
    }

    let mut ws = Workspace::new(&system, dialect);
    if threads > 0 {
        ws = ws.with_threads(threads);
    }
    // Last-seen text per module, to decide update vs add and to avoid
    // needless full re-inference when only a source (not its
    // annotations) changed.
    let mut annotations: BTreeMap<String, String> = BTreeMap::new();
    apply(&mut ws, &mut annotations, &src, &conf, 0, format, color)?;

    let mut applied = take_snapshot(&src, &conf)?;
    let mut last = applied.clone();
    let mut last_change = Instant::now();
    let mut events = 0usize;
    loop {
        std::thread::sleep(Duration::from_millis(poll_ms));
        let cur = take_snapshot(&src, &conf)?;
        if cur != last {
            last = cur;
            last_change = Instant::now();
            continue;
        }
        if last != applied && last_change.elapsed() >= Duration::from_millis(debounce_ms) {
            events += 1;
            apply(
                &mut ws,
                &mut annotations,
                &src,
                &conf,
                events,
                format,
                color,
            )?;
            applied = last.clone();
            if max_events > 0 && events >= max_events {
                return Ok(0);
            }
        }
    }
}

/// Folds the current source tree into the workspace (add / update /
/// remove), re-analyzes, re-checks the config set, prints one event
/// block.
fn apply(
    ws: &mut Workspace,
    annotations: &mut BTreeMap<String, String>,
    src: &[PathBuf],
    conf: &[PathBuf],
    event: usize,
    format: OutFormat,
    color: ColorMode,
) -> Result<(), CliError> {
    let sources = collect_sources(src)?;
    let current: std::collections::BTreeSet<&str> =
        sources.iter().map(|s| s.name.as_str()).collect();
    let known: Vec<String> = annotations.keys().cloned().collect();
    for name in known {
        if !current.contains(name.as_str()) {
            ws.remove_module(&name)?;
            annotations.remove(&name);
        }
    }
    for s in &sources {
        match annotations.get(&s.name) {
            Some(prev) => {
                ws.update_module(&s.name, &s.source)?;
                if *prev != s.annotations {
                    ws.update_annotations(&s.name, &s.annotations)?;
                    annotations.insert(s.name.clone(), s.annotations.clone());
                }
            }
            None => {
                ws.add_module(s.name.clone(), &s.source, &s.annotations)?;
                annotations.insert(s.name.clone(), s.annotations.clone());
            }
        }
    }
    let report = ws.reanalyze();
    let mut stdout = std::io::stdout().lock();
    let mut block = format!("-- event {event}\n{}", render_reanalyze(ws, &report));
    if !conf.is_empty() {
        let check = ws.check_paths(conf)?;
        block.push_str(&render_report(&check, format, color));
        block.push_str(&format!("exit: {}\n", check.exit_code()));
    }
    stdout
        .write_all(block.as_bytes())
        .and_then(|()| stdout.flush())
        .map_err(|e| CliError(format!("write: {e}")))?;
    Ok(())
}

/// Stats every watched file: sources expand to `*.c` plus sibling
/// `*.spex` under each `--src`, configs to every regular file under each
/// `--conf`. Vanished files simply leave the snapshot — a removal is a
/// change like any other.
fn take_snapshot(src: &[PathBuf], conf: &[PathBuf]) -> Result<Snapshot, CliError> {
    let mut snap = Snapshot::new();
    for root in src {
        stat_tree(root, &mut snap, &|p| {
            p.extension().is_some_and(|e| e == "c" || e == "spex")
        })?;
    }
    for root in conf {
        stat_tree(root, &mut snap, &|_| true)?;
    }
    Ok(snap)
}

/// Walks `path` (file or directory) and records (mtime, len) for every
/// file `keep` accepts.
fn stat_tree(
    path: &Path,
    snap: &mut Snapshot,
    keep: &dyn Fn(&Path) -> bool,
) -> Result<(), CliError> {
    let Ok(meta) = std::fs::metadata(path) else {
        return Ok(()); // raced with a delete: picked up next poll
    };
    if meta.is_dir() {
        let entries = std::fs::read_dir(path)
            .map_err(|e| CliError(format!("watch {}: {e}", path.display())))?;
        for entry in entries {
            let entry = entry.map_err(|e| CliError(format!("watch {}: {e}", path.display())))?;
            stat_tree(&entry.path(), snap, keep)?;
        }
        return Ok(());
    }
    if keep(path) {
        let mtime = meta
            .modified()
            .ok()
            .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
            .map_or(0, |d| d.as_nanos());
        snap.insert(path.to_path_buf(), (mtime, meta.len()));
    }
    Ok(())
}
