//! `spex fleet-gen` — materialize the deterministic synthetic fleet
//! (`spex::systems::fleet`) on disk as a source tree plus a deployment
//! config corpus. This is the fixture generator the CI smoke tests and
//! the `shard` byte-identity checks run against.

use std::path::PathBuf;

use crate::driver::{value_of, CliError, CliResult};
use spex::systems::fleet::{config_corpus, generate_fleet, FleetSpec};

/// Runs `spex fleet-gen`.
pub fn run(mut args: std::vec::IntoIter<String>) -> CliResult {
    let mut out: Option<PathBuf> = None;
    let mut spec = FleetSpec {
        modules: 24,
        configs_per_module: 7,
        seed: 0xf1ee7,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = Some(PathBuf::from(value_of("--out", &mut args)?)),
            "--modules" => {
                let v = value_of("--modules", &mut args)?;
                spec.modules = v
                    .parse()
                    .map_err(|_| CliError(format!("--modules: not a number: {v:?}")))?;
            }
            "--configs-per-module" => {
                let v = value_of("--configs-per-module", &mut args)?;
                spec.configs_per_module = v
                    .parse()
                    .map_err(|_| CliError(format!("--configs-per-module: not a number: {v:?}")))?;
            }
            "--seed" => {
                let v = value_of("--seed", &mut args)?;
                spec.seed = v
                    .parse()
                    .map_err(|_| CliError(format!("--seed: not a number: {v:?}")))?;
            }
            other => return Err(CliError(format!("unknown option {other:?}"))),
        }
    }
    let out = out.ok_or_else(|| CliError("--out is required".into()))?;

    let fleet = generate_fleet(&spec);
    let src_dir = out.join("src");
    std::fs::create_dir_all(&src_dir)
        .map_err(|e| CliError(format!("{}: {e}", src_dir.display())))?;
    for m in &fleet {
        let c_path = src_dir.join(&m.name);
        std::fs::write(&c_path, &m.source)
            .map_err(|e| CliError(format!("{}: {e}", c_path.display())))?;
        let spex_path = c_path.with_extension("spex");
        std::fs::write(&spex_path, &m.annotations)
            .map_err(|e| CliError(format!("{}: {e}", spex_path.display())))?;
    }
    let corpus = config_corpus(&fleet, &spec);
    let conf_dir = out.join("configs");
    for (name, text) in &corpus {
        let path = conf_dir.join(name);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| CliError(format!("{}: {e}", parent.display())))?;
        }
        std::fs::write(&path, text).map_err(|e| CliError(format!("{}: {e}", path.display())))?;
    }
    println!(
        "fleet-gen: {} module(s), {} config file(s) -> {}",
        fleet.len(),
        corpus.len(),
        out.display()
    );
    Ok(0)
}
