//! End-to-end tests against the built `spex` binary
//! (`CARGO_BIN_EXE_spex`): golden help/version output, the 0/1/2/3 exit
//! code contract, color toggles, daemon round-trips (including the
//! byte-identity guarantee against one-shot `check --format jsonl` and
//! the incremental pass-cache counters), shard byte-identity, db merge,
//! load-error context, and the watch loop.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};

use spex::check::json::Json;

/// The control-dependency fixture: `commit_siblings` only matters while
/// `fsync` is on, so `fsync = 0` plus `commit_siblings = 5` draws exactly
/// one SPEX-R005 warning (exit 2) and an unknown key draws a SPEX-R007
/// error (exit 1).
const GUARDED_C: &str = r#"
int fsync_on = 1;
int commit_siblings = 5;
struct opt { char* name; int* var; };
struct opt options[] = { { "fsync", &fsync_on }, { "commit_siblings", &commit_siblings } };
void flush() { if (commit_siblings > 0) { sleep(commit_siblings); } }
void main_loop() { if (fsync_on) { flush(); } }
"#;

const GUARDED_SPEX: &str = "{ @STRUCT = options\n  @PAR = [opt, 1]\n  @VAR = [opt, 2] }";

/// A two-function module whose `fa` edit leaves `fb` (and so `beta`'s
/// taint slice) warm — the incremental daemon test's subject.
const TWO_FN_C_V1: &str = r#"
int alpha = 4;
int beta = 7;
struct bopt { char* name; int* var; };
struct bopt boptions[] = { { "alpha", &alpha }, { "beta", &beta } };
void fa() { if (alpha < 1) { alpha = 1; } }
void fb() { if (beta > 64) { beta = 64; } }
"#;

/// V1 with only `fa`'s body changed.
const TWO_FN_C_V2: &str = r#"
int alpha = 4;
int beta = 7;
struct bopt { char* name; int* var; };
struct bopt boptions[] = { { "alpha", &alpha }, { "beta", &beta } };
void fa() { if (alpha < 2) { alpha = 2; } }
void fb() { if (beta > 64) { beta = 64; } }
"#;

const TWO_FN_SPEX: &str = "{ @STRUCT = boptions\n  @PAR = [bopt, 1]\n  @VAR = [bopt, 2] }";

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_spex"))
}

/// A fresh scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "spex-cli-test-{}-{}-{tag}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn path(&self, rel: &str) -> PathBuf {
        self.0.join(rel)
    }

    fn write(&self, rel: &str, text: &str) -> PathBuf {
        let path = self.path(rel);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).unwrap();
        }
        std::fs::write(&path, text).unwrap();
        path
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn stdout_str(out: &Output) -> &str {
    std::str::from_utf8(&out.stdout).unwrap()
}

fn stderr_str(out: &Output) -> &str {
    std::str::from_utf8(&out.stderr).unwrap()
}

/// Writes the guarded fixture and analyzes it into `demo.spexdb`;
/// returns the database path.
fn analyzed_guarded_db(s: &Scratch) -> PathBuf {
    let src = s.write("guarded.c", GUARDED_C);
    s.write("guarded.spex", GUARDED_SPEX);
    let db = s.path("demo.spexdb");
    let out = bin()
        .args(["analyze", "--system", "demo", "--db"])
        .arg(&db)
        .arg(&src)
        .output()
        .unwrap();
    assert!(out.status.success(), "analyze failed: {}", stderr_str(&out));
    db
}

#[test]
fn help_and_version_are_golden() {
    let help = bin().arg("--help").output().unwrap();
    assert!(help.status.success());
    let text = stdout_str(&help);
    assert!(text.starts_with("spex — do not blame users for misconfigurations (SOSP 2013)\n"));
    for needle in [
        "USAGE:",
        "analyze",
        "check",
        "react",
        "db merge",
        "shard",
        "daemon",
        "watch",
        "fleet-gen",
        "0 clean · 1 errors · 2 warnings only · 3 usage/operational failure",
    ] {
        assert!(text.contains(needle), "--help misses {needle:?}:\n{text}");
    }
    // `-h`, `help` and `--help` agree byte-for-byte.
    for alias in ["-h", "help"] {
        let out = bin().arg(alias).output().unwrap();
        assert_eq!(stdout_str(&out), text, "{alias} diverged from --help");
    }

    let version = bin().arg("--version").output().unwrap();
    assert!(version.status.success());
    assert_eq!(
        stdout_str(&version),
        format!("spex {}\n", env!("CARGO_PKG_VERSION"))
    );

    // No arguments / unknown subcommands are usage failures: exit 3,
    // usage on stderr, nothing on stdout.
    for args in [&[][..], &["frobnicate"][..]] {
        let out = bin().args(args).output().unwrap();
        assert_eq!(out.status.code(), Some(3));
        assert!(stdout_str(&out).is_empty());
        assert!(stderr_str(&out).contains("USAGE:"));
    }

    // Every subcommand answers --help on stdout with exit 0.
    for cmd in [
        "analyze",
        "check",
        "react",
        "db",
        "shard",
        "daemon",
        "watch",
        "fleet-gen",
    ] {
        let out = bin().args([cmd, "--help"]).output().unwrap();
        assert!(out.status.success(), "{cmd} --help failed");
        assert!(
            stdout_str(&out).starts_with("USAGE: spex "),
            "{cmd} --help has no usage line"
        );
    }
    let daemon_help = bin().args(["daemon", "--help"]).output().unwrap();
    assert!(stdout_str(&daemon_help).contains("docs/protocol.md"));
}

#[test]
fn check_exit_codes_cover_clean_warn_error() {
    let s = Scratch::new("exit-codes");
    let db = analyzed_guarded_db(&s);
    let cases = [
        ("clean.conf", "fsync = 1\ncommit_siblings = 5\n", 0),
        ("warn.conf", "fsync = 0\ncommit_siblings = 5\n", 2),
        ("err.conf", "nonsense = 1\n", 1),
    ];
    for (name, text, code) in cases {
        let conf = s.write(name, text);
        let out = bin()
            .args(["check", "--db"])
            .arg(&db)
            .arg(&conf)
            .output()
            .unwrap();
        assert_eq!(
            out.status.code(),
            Some(code),
            "{name}: wrong exit\nstdout: {}\nstderr: {}",
            stdout_str(&out),
            stderr_str(&out)
        );
    }
    // The warning is the control-dependency code, and jsonl output is
    // structurally valid.
    let warn = s.path("warn.conf");
    let out = bin()
        .args(["check", "--format", "jsonl", "--db"])
        .arg(&db)
        .arg(&warn)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let text = stdout_str(&out);
    assert!(
        text.contains("\"code\":\"SPEX-R005\""),
        "no SPEX-R005 in: {text}"
    );
    for line in text.lines() {
        Json::parse(line).unwrap_or_else(|e| panic!("bad jsonl line {line:?}: {e}"));
    }
}

#[test]
fn color_flag_and_no_color_control_escapes() {
    let s = Scratch::new("color");
    let db = analyzed_guarded_db(&s);
    let conf = s.write("err.conf", "nonsense = 1\n");

    // Piped stdout is not a terminal: auto must stay plain.
    let auto = bin()
        .args(["check", "--db"])
        .arg(&db)
        .arg(&conf)
        .output()
        .unwrap();
    assert!(!stdout_str(&auto).contains('\x1b'), "auto colored a pipe");

    // An explicit --color always wins, even against NO_COLOR.
    let always = bin()
        .args(["check", "--color", "always", "--db"])
        .arg(&db)
        .arg(&conf)
        .env("NO_COLOR", "1")
        .output()
        .unwrap();
    let text = stdout_str(&always);
    assert!(
        text.contains("\x1b[31;1merror[SPEX-R007]\x1b[0m"),
        "--color always missing escapes: {text}"
    );

    let never = bin()
        .args(["check", "--color", "never", "--db"])
        .arg(&db)
        .arg(&conf)
        .output()
        .unwrap();
    assert_eq!(stdout_str(&auto), stdout_str(&never));

    let bad = bin()
        .args(["check", "--color", "sometimes", "--db"])
        .arg(&db)
        .arg(&conf)
        .output()
        .unwrap();
    assert_eq!(bad.status.code(), Some(3));
    assert!(stderr_str(&bad).contains("color"));
}

/// Runs a scripted `daemon --stdio` session: writes every request line,
/// closes stdin, returns full stdout.
fn daemon_session(extra_args: &[&str], requests: &[String]) -> String {
    let mut child = bin()
        .arg("daemon")
        .arg("--stdio")
        .args(extra_args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let mut stdin = child.stdin.take().unwrap();
    for line in requests {
        writeln!(stdin, "{line}").unwrap();
    }
    drop(stdin);
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "daemon exited with {}", out.status);
    String::from_utf8(out.stdout).unwrap()
}

/// Splits a daemon reply stream into (header, body) pairs using each
/// header's `lines` count.
fn split_replies(stream: &str) -> Vec<(Json, String)> {
    let mut lines = stream.lines();
    let mut replies = Vec::new();
    while let Some(header) = lines.next() {
        let parsed = Json::parse(header).unwrap_or_else(|e| panic!("bad header {header:?}: {e}"));
        let count = parsed.get("lines").and_then(Json::as_f64).unwrap_or(0.0) as usize;
        let mut body = String::new();
        for _ in 0..count {
            body.push_str(lines.next().expect("body shorter than header's lines"));
            body.push('\n');
        }
        replies.push((parsed, body));
    }
    replies
}

#[test]
fn daemon_check_is_byte_identical_to_one_shot() {
    let s = Scratch::new("daemon-identity");
    let fleet = s.path("fleet");
    let out = bin()
        .args(["fleet-gen", "--modules", "4", "--out"])
        .arg(&fleet)
        .output()
        .unwrap();
    assert!(out.status.success(), "fleet-gen: {}", stderr_str(&out));
    let db = s.path("fleet.spexdb");
    let out = bin()
        .args(["analyze", "--quiet", "--system", "fleet", "--db"])
        .arg(&db)
        .arg(fleet.join("src"))
        .output()
        .unwrap();
    assert!(out.status.success(), "analyze: {}", stderr_str(&out));

    let configs = fleet.join("configs").join("m0000");
    let one_shot = bin()
        .args(["check", "--format", "jsonl", "--db"])
        .arg(&db)
        .arg(&configs)
        .output()
        .unwrap();
    assert_eq!(one_shot.status.code(), Some(1), "corpus has a bogus key");

    let stream = daemon_session(
        &["--db", db.to_str().unwrap()],
        &[
            format!(
                "{{\"v\":1,\"id\":1,\"op\":\"check\",\"paths\":[{}]}}",
                spex::check::json::quote(configs.to_str().unwrap())
            ),
            "{\"v\":1,\"id\":2,\"op\":\"shutdown\"}".into(),
        ],
    );
    let replies = split_replies(&stream);
    assert_eq!(replies.len(), 2);
    let (header, body) = &replies[0];
    assert_eq!(header.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(header.get("exit_code").and_then(Json::as_f64), Some(1.0));
    assert_eq!(
        body.as_bytes(),
        one_shot.stdout.as_slice(),
        "daemon check body diverged from one-shot jsonl output"
    );
    assert_eq!(
        replies[1].0.get("op").and_then(Json::as_str),
        Some("shutdown")
    );
}

#[test]
fn daemon_rejects_malformed_and_unversioned_requests() {
    let stream = daemon_session(
        &["--system", "demo"],
        &[
            "this is not json".into(),
            "{\"id\":7,\"op\":\"status\"}".into(),
            "{\"v\":99,\"id\":8,\"op\":\"status\"}".into(),
            "{\"v\":1,\"id\":9,\"op\":\"frobnicate\"}".into(),
            "{\"v\":1,\"id\":10,\"op\":\"shutdown\"}".into(),
        ],
    );
    let replies = split_replies(&stream);
    assert_eq!(replies.len(), 5);
    let (malformed, _) = &replies[0];
    assert_eq!(malformed.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(malformed.get("id"), Some(&Json::Null));
    assert!(malformed
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("malformed request"));
    // A parseable request still gets its id echoed on the error path.
    assert_eq!(replies[1].0.get("id").and_then(Json::as_f64), Some(7.0));
    assert!(replies[1]
        .0
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("version"));
    assert!(replies[2]
        .0
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("version"));
    assert!(replies[3]
        .0
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("frobnicate"));
    assert_eq!(replies[4].0.get("ok"), Some(&Json::Bool(true)));
}

#[test]
fn daemon_second_analyze_reinfers_only_dirty_parameters() {
    fn jmod(name: &str, source: &str, annotations: Option<&str>) -> String {
        let mut obj = format!(
            "{{\"name\":{},\"source\":{}",
            spex::check::json::quote(name),
            spex::check::json::quote(source)
        );
        if let Some(a) = annotations {
            obj.push_str(&format!(",\"annotations\":{}", spex::check::json::quote(a)));
        }
        obj.push('}');
        obj
    }
    let stream = daemon_session(
        &["--system", "demo"],
        &[
            format!(
                "{{\"v\":1,\"id\":1,\"op\":\"analyze\",\"modules\":[{}]}}",
                jmod("b.c", TWO_FN_C_V1, Some(TWO_FN_SPEX))
            ),
            "{\"v\":1,\"id\":2,\"op\":\"check\",\"configs\":[{\"name\":\"a.conf\",\"text\":\"alpha = 5\\nbeta = 8\\n\"}]}".into(),
            format!(
                "{{\"v\":1,\"id\":3,\"op\":\"analyze\",\"modules\":[{}]}}",
                jmod("b.c", TWO_FN_C_V2, None)
            ),
            "{\"v\":1,\"id\":4,\"op\":\"check\",\"configs\":[{\"name\":\"a.conf\",\"text\":\"alpha = 5\\nbeta = 8\\n\"}]}".into(),
            "{\"v\":1,\"id\":5,\"op\":\"status\"}".into(),
            "{\"v\":1,\"id\":6,\"op\":\"shutdown\"}".into(),
        ],
    );
    let replies = split_replies(&stream);
    assert_eq!(replies.len(), 6);
    let first = &replies[0].0;
    assert_eq!(
        first.get("params_reinferred").and_then(Json::as_f64),
        Some(2.0)
    );
    assert_eq!(
        replies[1].0.get("exit_code").and_then(Json::as_f64),
        Some(0.0)
    );

    // The edit touched only `fa`, so only `alpha` re-infers...
    let second = &replies[2].0;
    assert_eq!(
        second.get("modules_analyzed").and_then(Json::as_f64),
        Some(1.0)
    );
    assert_eq!(second.get("params_total").and_then(Json::as_f64), Some(2.0));
    assert_eq!(
        second.get("params_reinferred").and_then(Json::as_f64),
        Some(1.0)
    );
    assert_eq!(
        replies[3].0.get("exit_code").and_then(Json::as_f64),
        Some(0.0)
    );

    // ...and status shows the pass caches carrying the untouched half.
    let status = &replies[4].0;
    let last = status.get("last").expect("status.last");
    assert_eq!(
        last.get("params_reinferred").and_then(Json::as_f64),
        Some(1.0)
    );
    assert_eq!(
        last.get("mapping_cache_hits").and_then(Json::as_f64),
        Some(1.0)
    );
    assert_eq!(
        last.get("taint_cache_hits").and_then(Json::as_f64),
        Some(1.0)
    );
    assert_eq!(
        last.get("react_cache_hits").and_then(Json::as_f64),
        Some(1.0)
    );
    assert_eq!(status.get("checks").and_then(Json::as_f64), Some(2.0));
    assert_eq!(status.get("modules").and_then(Json::as_f64), Some(1.0));
    let total = status.get("total").expect("status.total");
    assert_eq!(
        total.get("params_reinferred").and_then(Json::as_f64),
        Some(3.0)
    );
}

#[test]
fn shard_matches_single_process_byte_for_byte() {
    let s = Scratch::new("shard");
    let fleet = s.path("fleet");
    let out = bin()
        .args(["fleet-gen", "--modules", "6", "--out"])
        .arg(&fleet)
        .output()
        .unwrap();
    assert!(out.status.success(), "fleet-gen: {}", stderr_str(&out));

    let single = s.path("single.spexdb");
    let out = bin()
        .args(["analyze", "--quiet", "--system", "fleet", "--db"])
        .arg(&single)
        .arg(fleet.join("src"))
        .output()
        .unwrap();
    assert!(out.status.success(), "analyze: {}", stderr_str(&out));

    let sharded = s.path("sharded.spexdb");
    let out = bin()
        .args([
            "shard",
            "--workers",
            "3",
            "--system",
            "fleet",
            "--self-check",
            "--db",
        ])
        .arg(&sharded)
        .arg(fleet.join("src"))
        .output()
        .unwrap();
    assert!(out.status.success(), "shard: {}", stderr_str(&out));
    assert!(
        stdout_str(&out).contains("self-check: byte-identical"),
        "no self-check line: {}",
        stdout_str(&out)
    );
    assert_eq!(
        std::fs::read(&single).unwrap(),
        std::fs::read(&sharded).unwrap(),
        "sharded db differs from single-process db"
    );
}

#[test]
fn db_merge_halves_reproduces_the_whole() {
    let s = Scratch::new("merge");
    let fleet = s.path("fleet");
    bin()
        .args(["fleet-gen", "--modules", "4", "--out"])
        .arg(&fleet)
        .output()
        .unwrap();
    let whole = s.path("whole.spexdb");
    let out = bin()
        .args(["analyze", "--quiet", "--system", "fleet", "--db"])
        .arg(&whole)
        .arg(fleet.join("src"))
        .output()
        .unwrap();
    assert!(out.status.success(), "analyze: {}", stderr_str(&out));

    // Analyze each half separately (same module paths, so provenance
    // matches the whole-run database).
    for (half, range) in [("a", 0..2), ("b", 2..4)] {
        let db = s.path(&format!("{half}.spexdb"));
        let mut cmd = bin();
        cmd.args(["analyze", "--quiet", "--system", "fleet", "--db"])
            .arg(&db);
        for i in range {
            cmd.arg(fleet.join("src").join(format!("m{i:04}.c")));
        }
        let out = cmd.output().unwrap();
        assert!(out.status.success(), "half {half}: {}", stderr_str(&out));
    }

    let merged = s.path("merged.spexdb");
    let out = bin()
        .args(["db", "merge", "--out"])
        .arg(&merged)
        .arg(s.path("a.spexdb"))
        .arg(s.path("b.spexdb"))
        .output()
        .unwrap();
    assert!(out.status.success(), "merge: {}", stderr_str(&out));
    assert!(
        stdout_str(&out).contains("new parameter(s)"),
        "no merge report: {}",
        stdout_str(&out)
    );
    assert_eq!(
        std::fs::read(&whole).unwrap(),
        std::fs::read(&merged).unwrap(),
        "merged halves differ from the whole-run db"
    );
}

#[test]
fn operational_failures_name_the_problem_and_exit_3() {
    let s = Scratch::new("op-errors");
    let conf = s.write("x.conf", "a = 1\n");

    // Missing database file: the path appears in the error.
    let missing = s.path("missing.spexdb");
    let out = bin()
        .args(["check", "--db"])
        .arg(&missing)
        .arg(&conf)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));
    assert!(
        stderr_str(&out).contains("missing.spexdb"),
        "{}",
        stderr_str(&out)
    );

    // Corrupt database: path and 1-based line number appear.
    let corrupt = s.write(
        "corrupt.spexdb",
        "spex-constraint-db v2\nsystem X\ndialect key-value\nc basic bool | f 1 1\n",
    );
    let out = bin()
        .args(["check", "--db"])
        .arg(&corrupt)
        .arg(&conf)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));
    let err = stderr_str(&out);
    assert!(err.contains("corrupt.spexdb"), "no path in: {err}");
    assert!(err.contains("line 4"), "no line number in: {err}");

    // Unknown options and missing required options are usage failures.
    let out = bin().args(["check", "--frobnicate"]).output().unwrap();
    assert_eq!(out.status.code(), Some(3));
    let out = bin().args(["check", "x.conf"]).output().unwrap();
    assert_eq!(out.status.code(), Some(3));
    assert!(stderr_str(&out).contains("--db"));
    let out = bin()
        .args(["analyze", "--dialect", "yaml", "x.c"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));
    assert!(stderr_str(&out).contains("dialect"));
}

#[test]
fn react_reports_reaction_findings() {
    let s = Scratch::new("react");
    let src = s.write("guarded.c", GUARDED_C);
    s.write("guarded.spex", GUARDED_SPEX);
    let out = bin()
        .args(["react", "--system", "demo", "--format", "jsonl"])
        .arg(&src)
        .output()
        .unwrap();
    // The unchecked sleep(commit_siblings) is an error-grade reaction.
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr_str(&out));
    let text = stdout_str(&out);
    assert!(
        text.contains("\"code\":\"SPEX-V003\""),
        "no SPEX-V003: {text}"
    );
    assert!(text.contains("sleep-duration sink"), "{text}");
}

#[test]
fn watch_applies_a_debounced_edit_and_exits_at_max_events() {
    let s = Scratch::new("watch");
    let src_dir = s.path("src");
    std::fs::create_dir_all(&src_dir).unwrap();
    s.write("src/guarded.c", GUARDED_C);
    s.write("src/guarded.spex", GUARDED_SPEX);
    let conf = s.write("conf/warn.conf", "fsync = 0\ncommit_siblings = 5\n");

    let mut child = bin()
        .arg("watch")
        .arg("--src")
        .arg(&src_dir)
        .arg("--conf")
        .arg(conf.parent().unwrap())
        .args([
            "--system",
            "demo",
            "--poll-ms",
            "50",
            "--debounce-ms",
            "100",
            "--max-events",
            "1",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();

    // Let the initial analyze+check land, then make one edit.
    std::thread::sleep(std::time::Duration::from_millis(1500));
    s.write(
        "src/guarded.c",
        &GUARDED_C.replace("commit_siblings > 0", "commit_siblings > 1"),
    );

    // --max-events 1 exits after applying that edit.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    loop {
        match child.try_wait().unwrap() {
            Some(_) => break,
            None if std::time::Instant::now() > deadline => {
                let _ = child.kill();
                panic!("watch did not exit after the edit");
            }
            None => std::thread::sleep(std::time::Duration::from_millis(100)),
        }
    }
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "watch: {}", stderr_str(&out));
    let text = stdout_str(&out);
    assert!(text.contains("-- event 0\n"), "no initial event: {text}");
    assert!(text.contains("-- event 1\n"), "no applied event: {text}");
    assert!(
        text.contains("SPEX-R005"),
        "re-check lost the warning: {text}"
    );
    assert!(text.contains("exit: 2"), "no exit line: {text}");
}

#[cfg(unix)]
#[test]
fn daemon_socket_survives_reconnects_until_shutdown() {
    use std::io::{BufRead, BufReader};
    use std::os::unix::net::UnixStream;

    let s = Scratch::new("socket");
    let sock = s.path("d.sock");
    let mut child = bin()
        .args(["daemon", "--socket"])
        .arg(&sock)
        .args(["--system", "demo"])
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while !sock.exists() {
        assert!(
            std::time::Instant::now() < deadline,
            "socket never appeared"
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
    }

    // First connection: a status round-trip, then plain EOF.
    let mut conn = UnixStream::connect(&sock).unwrap();
    writeln!(conn, "{{\"v\":1,\"id\":1,\"op\":\"status\"}}").unwrap();
    let mut line = String::new();
    BufReader::new(conn.try_clone().unwrap())
        .read_line(&mut line)
        .unwrap();
    let reply = Json::parse(line.trim_end()).unwrap();
    assert_eq!(reply.get("op").and_then(Json::as_str), Some("status"));
    drop(conn);

    // The daemon outlives the connection: a second one can shut it down.
    let mut conn = UnixStream::connect(&sock).unwrap();
    writeln!(conn, "{{\"v\":1,\"id\":2,\"op\":\"shutdown\"}}").unwrap();
    let mut line = String::new();
    BufReader::new(conn.try_clone().unwrap())
        .read_line(&mut line)
        .unwrap();
    assert!(line.contains("\"op\":\"shutdown\""), "{line}");
    drop(conn);

    loop {
        match child.try_wait().unwrap() {
            Some(status) => {
                assert!(status.success());
                break;
            }
            None if std::time::Instant::now() > deadline => {
                let _ = child.kill();
                panic!("daemon did not exit after shutdown");
            }
            None => std::thread::sleep(std::time::Duration::from_millis(50)),
        }
    }
    assert!(!sock.exists(), "socket file not cleaned up");
}

#[test]
fn analyze_telemetry_prints_span_tree() {
    let s = Scratch::new("telemetry");
    let src = s.write("guarded.c", GUARDED_C);
    s.write("guarded.spex", GUARDED_SPEX);
    let out = bin()
        .args(["analyze", "--system", "demo", "--telemetry"])
        .arg(&src)
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", stderr_str(&out));
    let text = stdout_str(&out);
    assert!(text.contains("spans:"), "no span tree: {text}");
    assert!(
        text.contains("workspace.reanalyze"),
        "no reanalyze span: {text}"
    );
}
