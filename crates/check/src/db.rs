//! The constraint database: inferred constraints persisted for reuse.
//!
//! Inference (`Spex::analyze`) walks the whole program and is by far the
//! most expensive stage of the pipeline. Validation, in contrast, runs once
//! per configuration file — often thousands of times per system across a
//! fleet. The [`ConstraintDb`] decouples the two: it is built once per
//! system from an analysis, saved in a compact std-only text format, and
//! loaded by every checker run without touching source code again
//! (infer → persist → check).
//!
//! # Format versions
//!
//! * `v1` — `c <kind> | <func> <line> <col>` constraint lines, no
//!   inference provenance;
//! * `v2` (current) — each constraint line carries a trailing
//!   `| <module>` provenance token naming the workspace module the
//!   constraint was inferred from (empty for hand-built databases).
//!
//! [`ConstraintDb::load_from_str`] reads both and migrates `v1` databases
//! in place (provenance becomes empty); [`ConstraintDb::save_to_string`]
//! always writes `v2`. Databases from incremental or sharded analysis runs
//! combine with [`ConstraintDb::merge`], which resolves conflicts
//! deterministically (tightest constraint wins) and records every decision
//! in a [`MergeReport`].

use spex_conf::Dialect;
use spex_core::constraint::{
    BasicType, CmpOp, Constraint, ConstraintKind, ControlDep, EnumAlternative, EnumRange,
    EnumValue, NumericRange, RangeSegment, SemType, SizeUnit, TimeUnit, ValueRel,
};
use spex_lang::diag::Span;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Magic line of the legacy `v1` format (still loadable).
const MAGIC_V1: &str = "spex-constraint-db v1";
/// Magic line of the current `v2` format.
const MAGIC_V2: &str = "spex-constraint-db v2";

/// All constraints of one parameter.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParamEntry {
    /// The parameter's name as written in config files.
    pub name: String,
    /// Constraints attributed to the parameter (multi-parameter
    /// constraints are stored under the same parameter the inference
    /// passes attribute them to: the dependent for control dependencies,
    /// the left-hand side for value relationships).
    pub constraints: Vec<Constraint>,
    /// Inference provenance, parallel to `constraints`: the workspace
    /// module each constraint was inferred from, or empty for hand-built
    /// and migrated-`v1` constraints. Maintained by the
    /// [`ConstraintDb::add`]-family methods; keep the two vectors the same
    /// length if constructing entries by hand.
    pub provenance: Vec<String>,
}

impl ParamEntry {
    /// Iterates `(constraint, provenance-module)` pairs. A hand-built
    /// entry whose `provenance` is shorter than `constraints` reports the
    /// missing tail as empty provenance.
    pub fn with_provenance(&self) -> impl Iterator<Item = (&Constraint, &str)> {
        self.constraints
            .iter()
            .enumerate()
            .map(|(i, c)| (c, self.provenance.get(i).map(String::as_str).unwrap_or("")))
    }

    /// Restores the `provenance.len() == constraints.len()` invariant for
    /// entries built by hand (missing slots become empty provenance).
    fn sync_provenance(&mut self) {
        self.provenance
            .resize(self.constraints.len(), String::new());
    }
}

/// The per-system constraint database.
#[derive(Debug)]
pub struct ConstraintDb {
    /// The subject system's name.
    pub system: String,
    /// The system's config-file dialect.
    pub dialect: Dialect,
    /// Per-parameter entries, in first-seen order.
    pub params: Vec<ParamEntry>,
    /// How many times this database lineage has been cloned (shared by
    /// every clone; see [`ConstraintDb::clone_count`]).
    clones: Arc<AtomicUsize>,
}

/// Cloning a database is an O(db) copy of every constraint — exactly the
/// cost the borrowed [`CheckSession`](crate::CheckSession) exists to
/// avoid — so each clone ticks a lineage-shared counter that regression
/// tests and benchmarks assert against.
impl Clone for ConstraintDb {
    fn clone(&self) -> ConstraintDb {
        self.clones.fetch_add(1, Ordering::Relaxed);
        ConstraintDb {
            system: self.system.clone(),
            dialect: self.dialect,
            params: self.params.clone(),
            clones: Arc::clone(&self.clones),
        }
    }
}

/// Equality is over content (system, dialect, entries in order); the
/// clone counter is instrumentation, not state.
impl PartialEq for ConstraintDb {
    fn eq(&self, other: &ConstraintDb) -> bool {
        self.system == other.system && self.dialect == other.dialect && self.params == other.params
    }
}

/// A malformed database file.
#[derive(Debug, Clone, PartialEq)]
pub struct DbError {
    /// 1-based line of the offence.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "constraint db line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DbError {}

impl ConstraintDb {
    /// An empty database for a system.
    pub fn new(system: impl Into<String>, dialect: Dialect) -> ConstraintDb {
        ConstraintDb {
            system: system.into(),
            dialect,
            params: Vec::new(),
            clones: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// How many times this database — or any database in its clone
    /// lineage — has been cloned. Each clone copies every constraint
    /// (O(db)), so hot paths are expected to keep this flat; the
    /// workspace regression tests assert exactly that.
    pub fn clone_count(&self) -> usize {
        self.clones.load(Ordering::Relaxed)
    }

    /// Builds a database from a finished analysis. Every analyzed
    /// parameter becomes an entry, even when no constraints were inferred
    /// for it (so the checker knows the name is legal).
    pub fn from_analysis(
        system: impl Into<String>,
        dialect: Dialect,
        analysis: &spex_core::SpexAnalysis,
    ) -> ConstraintDb {
        let mut db = ConstraintDb::new(system, dialect);
        for report in &analysis.reports {
            db.note_param(&report.param.name);
            for c in &report.constraints {
                db.add(c.clone());
            }
        }
        db
    }

    /// Builds a database from a flat constraint list.
    pub fn from_constraints(
        system: impl Into<String>,
        dialect: Dialect,
        constraints: &[Constraint],
    ) -> ConstraintDb {
        let mut db = ConstraintDb::new(system, dialect);
        for c in constraints {
            db.add(c.clone());
        }
        db
    }

    /// Registers a parameter name without constraints (a legal key).
    pub fn note_param(&mut self, name: &str) -> &mut ParamEntry {
        if let Some(i) = self.params.iter().position(|p| p.name == name) {
            return &mut self.params[i];
        }
        self.params.push(ParamEntry {
            name: name.to_string(),
            constraints: Vec::new(),
            provenance: Vec::new(),
        });
        self.params.last_mut().unwrap()
    }

    /// Registers many legal parameter names.
    pub fn note_params<I: IntoIterator<Item = S>, S: AsRef<str>>(&mut self, names: I) {
        for n in names {
            self.note_param(n.as_ref());
        }
    }

    /// Adds one constraint under its parameter, with empty provenance.
    pub fn add(&mut self, c: Constraint) {
        self.add_from(c, "");
    }

    /// Adds one constraint under its parameter, recording the workspace
    /// module it was inferred from.
    pub fn add_from(&mut self, c: Constraint, module: &str) {
        let name = c.param.clone();
        let entry = self.note_param(&name);
        entry.constraints.push(c);
        entry.provenance.push(module.to_string());
    }

    /// Removes every constraint of `param` that was inferred from
    /// `module`, returning how many were dropped. The parameter entry
    /// itself stays (the name remains a legal key).
    pub fn remove_source_param(&mut self, module: &str, param: &str) -> usize {
        let Some(entry) = self.params.iter_mut().find(|p| p.name == param) else {
            return 0;
        };
        entry.sync_provenance();
        let before = entry.constraints.len();
        let mut keep = entry.provenance.iter().map(|m| m != module);
        entry.constraints.retain(|_| keep.next().unwrap_or(true));
        entry.provenance.retain(|m| m != module);
        before - entry.constraints.len()
    }

    /// Replaces `param`'s constraints from `module` with a fresh list
    /// (removing the old ones, appending the new ones under that
    /// provenance). Returns `(removed, added)` counts. Used by incremental
    /// re-analysis to swap in one module's re-inferred constraints without
    /// touching what other modules contributed.
    pub fn replace_source_param(
        &mut self,
        module: &str,
        param: &str,
        fresh: Vec<Constraint>,
    ) -> (usize, usize) {
        let removed = self.remove_source_param(module, param);
        let added = fresh.len();
        let entry = self.note_param(param);
        for c in fresh {
            entry.constraints.push(c);
            entry.provenance.push(module.to_string());
        }
        (removed, added)
    }

    /// Names of parameters holding at least one constraint inferred from
    /// `module` (used to garbage-collect a module's stale contribution,
    /// e.g. after a workspace resumes from a persisted database).
    pub fn params_from_source(&self, module: &str) -> Vec<String> {
        self.params
            .iter()
            .filter(|p| p.with_provenance().any(|(_, m)| m == module))
            .map(|p| p.name.clone())
            .collect()
    }

    /// Drops a parameter entry entirely (name and constraints). Returns
    /// whether it existed.
    pub fn remove_param(&mut self, name: &str) -> bool {
        let before = self.params.len();
        self.params.retain(|p| p.name != name);
        self.params.len() != before
    }

    /// Entry lookup by exact name.
    pub fn param(&self, name: &str) -> Option<&ParamEntry> {
        self.params.iter().find(|p| p.name == name)
    }

    /// Entry lookup ignoring ASCII case (for "wrong case" suggestions).
    pub fn param_ignore_case(&self, name: &str) -> Option<&ParamEntry> {
        self.params
            .iter()
            .find(|p| p.name.eq_ignore_ascii_case(name))
    }

    /// All known parameter names, in entry order.
    pub fn param_names(&self) -> impl Iterator<Item = &str> {
        self.params.iter().map(|p| p.name.as_str())
    }

    /// Total constraint count.
    pub fn constraint_count(&self) -> usize {
        self.params.iter().map(|p| p.constraints.len()).sum()
    }

    // -- Serialization --------------------------------------------------

    /// Detects the on-disk format version of a database text, if any.
    pub fn detect_version(text: &str) -> Option<u32> {
        match text.lines().next() {
            Some(l) if l == MAGIC_V1 => Some(1),
            Some(l) if l == MAGIC_V2 => Some(2),
            _ => None,
        }
    }

    /// Serializes the database to the current (`v2`) text format, in
    /// **canonical order**: parameters sorted by name, each parameter's
    /// constraints sorted by serialized kind, origin and provenance.
    ///
    /// Canonical ordering makes the byte-equality guarantee hold across
    /// build histories: an incrementally maintained multi-module
    /// workspace appends re-inferred constraints at the end of an entry,
    /// so its in-memory order can differ from a from-scratch analysis of
    /// the same sources — but both serialize to the same bytes, which is
    /// what fleet config-distribution and content-addressed caching key
    /// on. Loading preserves file order, so `load(save(db))` yields a
    /// canonically ordered database (see
    /// [`canonicalize`](ConstraintDb::canonicalize)).
    pub fn save_to_string(&self) -> String {
        let mut out = String::new();
        out.push_str(MAGIC_V2);
        out.push('\n');
        out.push_str(&format!("system {}\n", esc(&self.system)));
        out.push_str(&format!("dialect {}\n", dialect_tag(self.dialect)));
        let mut order: Vec<usize> = (0..self.params.len()).collect();
        order.sort_by(|&a, &b| self.params[a].name.cmp(&self.params[b].name));
        for pi in order {
            let p = &self.params[pi];
            out.push_str(&format!("param {}\n", esc(&p.name)));
            let mut rows: Vec<(&Constraint, &str)> = p.with_provenance().collect();
            rows.sort_by_cached_key(|(c, m)| canonical_key(c, m));
            for (c, module) in rows {
                out.push_str(&format!(
                    "c {} | {} {} {} | {}\n",
                    kind_to_tokens(&c.kind),
                    esc(&c.in_function),
                    c.span.line,
                    c.span.col,
                    esc(module),
                ));
            }
        }
        out
    }

    /// Reorders the database in place into the canonical order
    /// [`save_to_string`](ConstraintDb::save_to_string) serializes:
    /// parameters by name, constraints by (kind, origin, provenance).
    /// After this, the in-memory database equals what `load(save(self))`
    /// returns.
    pub fn canonicalize(&mut self) {
        self.params.sort_by(|a, b| a.name.cmp(&b.name));
        for p in &mut self.params {
            p.sync_provenance();
            let mut rows: Vec<(Constraint, String)> = p
                .constraints
                .drain(..)
                .zip(p.provenance.drain(..))
                .collect();
            rows.sort_by_cached_key(|(c, m)| canonical_key(c, m));
            for (c, m) in rows {
                p.constraints.push(c);
                p.provenance.push(m);
            }
        }
    }

    /// Parses the text format back into a database. Both `v1` and `v2`
    /// inputs are accepted; `v1` constraints migrate with empty
    /// provenance, so `load → save` rewrites a legacy database as `v2`
    /// without losing anything.
    pub fn load_from_str(text: &str) -> Result<ConstraintDb, DbError> {
        let mut lines = text.lines().enumerate();
        let expect = |lineno: usize, msg: &str| DbError {
            line: lineno + 1,
            message: msg.to_string(),
        };
        let (n0, magic) = lines.next().ok_or_else(|| expect(0, "empty file"))?;
        let version = match magic {
            m if m == MAGIC_V1 => 1,
            m if m == MAGIC_V2 => 2,
            _ => return Err(expect(n0, "bad magic line")),
        };
        let (n1, sys) = lines
            .next()
            .ok_or_else(|| expect(1, "missing system line"))?;
        let system = sys
            .strip_prefix("system ")
            .ok_or_else(|| expect(n1, "expected `system <name>`"))
            .map(unesc)?;
        let (n2, dia) = lines
            .next()
            .ok_or_else(|| expect(2, "missing dialect line"))?;
        let dialect = dia
            .strip_prefix("dialect ")
            .and_then(dialect_from_tag)
            .ok_or_else(|| expect(n2, "expected `dialect key-value|directive|space`"))?;

        let mut db = ConstraintDb::new(system, dialect);
        let mut current: Option<String> = None;
        for (n, line) in lines {
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("param ") {
                let name = unesc(rest);
                db.note_param(&name);
                current = Some(name);
            } else if let Some(rest) = line.strip_prefix("c ") {
                let param = current
                    .clone()
                    .ok_or_else(|| expect(n, "constraint before any `param`"))?;
                let mut fields = rest.split(" | ");
                let kind_part = fields.next().expect("split yields at least one field");
                let origin_part = fields
                    .next()
                    .ok_or_else(|| expect(n, "constraint missing ` | ` origin separator"))?;
                let module = match (version, fields.next()) {
                    (1, None) => String::new(),
                    (2, Some(m)) => unesc(m),
                    (1, Some(_)) => {
                        return Err(expect(n, "v1 constraint carries a v2 provenance field"))
                    }
                    (_, None) => {
                        return Err(expect(n, "v2 constraint missing ` | <module>` provenance"))
                    }
                    _ => unreachable!("version is 1 or 2"),
                };
                if fields.next().is_some() {
                    return Err(expect(n, "constraint has too many ` | ` fields"));
                }
                let kind = kind_from_tokens(kind_part).map_err(|m| DbError {
                    line: n + 1,
                    message: m,
                })?;
                let toks: Vec<&str> = origin_part.split(' ').collect();
                if toks.len() != 3 {
                    return Err(expect(n, "origin must be `<func> <line> <col>`"));
                }
                let span = Span::new(
                    toks[1].parse().map_err(|_| expect(n, "bad origin line"))?,
                    toks[2].parse().map_err(|_| expect(n, "bad origin col"))?,
                );
                db.add_from(
                    Constraint {
                        param,
                        kind,
                        in_function: unesc(toks[0]),
                        span,
                    },
                    &module,
                );
            } else {
                return Err(expect(n, "unrecognised line"));
            }
        }
        Ok(db)
    }

    /// Writes the database to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.save_to_string())
    }

    /// Reads a database from a file. Every failure — unreadable file or
    /// malformed record — names the file; parse failures also carry the
    /// 1-based line of the offending record (`<path>: constraint db line
    /// <n>: <why>`), so a fleet job churning through hundreds of databases
    /// pinpoints the bad one without re-running anything.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<ConstraintDb> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| std::io::Error::new(e.kind(), format!("{}: {e}", path.display())))?;
        ConstraintDb::load_from_str(&text).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{}: {e}", path.display()),
            )
        })
    }

    // -- Merging --------------------------------------------------------

    /// Merges another database for the *same system* into this one, so
    /// incremental re-analysis shards and per-module runs can combine.
    ///
    /// Resolution is deterministic:
    ///
    /// * a constraint identical in kind to one already present is dropped
    ///   as a duplicate (the incumbent's origin and provenance win);
    /// * two numeric ranges conflict → the **tightest** valid interval
    ///   wins (finite beats infinite, narrower beats wider, ties keep the
    ///   incumbent), and the losing side is recorded in the report;
    /// * two integer basic types conflict → the narrower width wins;
    /// * two enumerative ranges with *overlapping* alternative sets
    ///   conflict → their alternatives are unioned, with *invalid*
    ///   winning when the sides disagree about a value,
    ///   `unmatched_is_error` ORed, and `case_insensitive` ANDed (each
    ///   rule keeps the tighter behaviour); enums over disjoint domains
    ///   (a word enum and a switch-arm integer enum) simply coexist;
    /// * everything else coexists and is simply appended.
    ///
    /// Winning challengers carry their own provenance into the merged
    /// database; every conflict decision is recorded in the returned
    /// [`MergeReport`].
    pub fn merge(&mut self, other: &ConstraintDb) -> Result<MergeReport, MergeError> {
        if other.system != self.system {
            return Err(MergeError::SystemMismatch {
                ours: self.system.clone(),
                theirs: other.system.clone(),
            });
        }
        if other.dialect != self.dialect {
            return Err(MergeError::DialectMismatch {
                ours: self.dialect,
                theirs: other.dialect,
            });
        }
        let mut report = MergeReport::default();
        for theirs in &other.params {
            if self.param(&theirs.name).is_none() {
                report.params_added += 1;
            }
            for (c, module) in theirs.with_provenance() {
                self.merge_one(c, module, &mut report);
            }
            self.note_param(&theirs.name);
        }
        Ok(report)
    }

    fn merge_one(&mut self, c: &Constraint, module: &str, report: &mut MergeReport) {
        let entry = self.note_param(&c.param);
        entry.sync_provenance();
        // Exact duplicate: the incumbent wins outright.
        if entry.constraints.iter().any(|have| have.kind == c.kind) {
            report.deduped += 1;
            return;
        }
        // A same-class incumbent to resolve against, if any. Two
        // enumerative ranges conflict only when their alternative sets
        // overlap — a parameter legitimately carries disjoint word and
        // integer enums (strcmp chain vs. switch), and blending a
        // challenger into an unrelated domain would both corrupt it and
        // make the merge order-dependent.
        let rival = entry
            .constraints
            .iter()
            .position(|have| match (&have.kind, &c.kind) {
                (ConstraintKind::Range(_), ConstraintKind::Range(_))
                | (ConstraintKind::BasicType(_), ConstraintKind::BasicType(_)) => true,
                (ConstraintKind::EnumRange(a), ConstraintKind::EnumRange(b)) => a
                    .alternatives
                    .iter()
                    .any(|x| b.alternatives.iter().any(|y| x.value == y.value)),
                _ => false,
            });
        let Some(i) = rival else {
            entry.constraints.push(c.clone());
            entry.provenance.push(module.to_string());
            report.added += 1;
            return;
        };
        let incumbent = entry.constraints[i].clone();
        let incumbent_module = entry.provenance[i].clone();
        let resolved = resolve_conflict(&incumbent.kind, &c.kind);
        report.conflicts.push(MergeConflict {
            param: c.param.clone(),
            category: c.kind.category(),
            kept: match resolved {
                ConflictWinner::Incumbent => incumbent.to_string(),
                ConflictWinner::Challenger => c.to_string(),
                ConflictWinner::Blend(_) => String::new(),
            },
            dropped: match resolved {
                ConflictWinner::Incumbent => c.to_string(),
                ConflictWinner::Challenger => incumbent.to_string(),
                ConflictWinner::Blend(_) => String::new(),
            },
            kept_from: match resolved {
                ConflictWinner::Challenger => module.to_string(),
                _ => incumbent_module.clone(),
            },
            dropped_from: match resolved {
                ConflictWinner::Challenger => incumbent_module.clone(),
                _ => module.to_string(),
            },
        });
        match resolved {
            ConflictWinner::Incumbent => {}
            ConflictWinner::Challenger => {
                entry.constraints[i] = c.clone();
                entry.provenance[i] = module.to_string();
            }
            ConflictWinner::Blend(kind) => {
                let blended = report.conflicts.last_mut().expect("just pushed");
                blended.kept = Constraint {
                    param: c.param.clone(),
                    kind: kind.clone(),
                    in_function: incumbent.in_function.clone(),
                    span: incumbent.span,
                }
                .to_string();
                blended.dropped = c.to_string();
                entry.constraints[i].kind = kind;
            }
        }
    }
}

/// Who wins a merge conflict between two same-class constraints.
enum ConflictWinner {
    /// Keep the constraint already in the database.
    Incumbent,
    /// Replace it with the merged-in one (tighter).
    Challenger,
    /// Neither as-is: store this combined kind under the incumbent's slot.
    Blend(ConstraintKind),
}

/// Resolves a same-class conflict per the tightest-wins rules of
/// [`ConstraintDb::merge`].
fn resolve_conflict(incumbent: &ConstraintKind, challenger: &ConstraintKind) -> ConflictWinner {
    match (incumbent, challenger) {
        (ConstraintKind::Range(a), ConstraintKind::Range(b)) => {
            // Tightest wins: finite beats unbounded, narrower beats wider,
            // ties keep the incumbent. (Careful: `Option`'s derived order
            // puts `None` first, which would invert the rule.)
            let challenger_tighter = match (interval_width(a), interval_width(b)) {
                (None, Some(_)) => true,
                (Some(wa), Some(wb)) => wb < wa,
                (_, None) => false,
            };
            if challenger_tighter {
                ConflictWinner::Challenger
            } else {
                ConflictWinner::Incumbent
            }
        }
        (ConstraintKind::BasicType(a), ConstraintKind::BasicType(b)) => match (a, b) {
            (
                BasicType::Int { bits: wa, .. },
                BasicType::Int {
                    bits: wb,
                    signed: sb,
                },
            ) if wb < wa || (wa == wb && !sb) => ConflictWinner::Challenger,
            _ => ConflictWinner::Incumbent,
        },
        (ConstraintKind::EnumRange(a), ConstraintKind::EnumRange(b)) => {
            let mut merged = a.clone();
            for alt in &b.alternatives {
                match merged
                    .alternatives
                    .iter_mut()
                    .find(|m| m.value == alt.value)
                {
                    // Disagreeing validity: invalid (tighter) wins.
                    Some(m) => m.valid = m.valid && alt.valid,
                    None => merged.alternatives.push(alt.clone()),
                }
            }
            merged.unmatched_is_error = a.unmatched_is_error || b.unmatched_is_error;
            merged.unmatched_overwrites = a.unmatched_overwrites || b.unmatched_overwrites;
            merged.case_insensitive = a.case_insensitive && b.case_insensitive;
            if merged == *a {
                ConflictWinner::Incumbent
            } else {
                ConflictWinner::Blend(ConstraintKind::EnumRange(merged))
            }
        }
        _ => ConflictWinner::Incumbent,
    }
}

/// Width of a range's valid interval, for tightest-wins comparison.
/// `None` means unbounded on at least one side (always looser than any
/// finite interval); a range with no valid interval at all is treated as
/// maximally loose.
fn interval_width(r: &NumericRange) -> Option<u128> {
    let (lo, hi) = r.valid_interval()?;
    match (lo, hi) {
        (Some(lo), Some(hi)) => Some(hi.abs_diff(lo) as u128),
        _ => None,
    }
}

/// Why two databases cannot merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// The databases describe different systems.
    SystemMismatch {
        /// The receiving database's system.
        ours: String,
        /// The merged-in database's system.
        theirs: String,
    },
    /// The databases use different config dialects.
    DialectMismatch {
        /// The receiving database's dialect.
        ours: Dialect,
        /// The merged-in database's dialect.
        theirs: Dialect,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::SystemMismatch { ours, theirs } => {
                write!(f, "cannot merge db for system {theirs:?} into {ours:?}")
            }
            MergeError::DialectMismatch { ours, theirs } => {
                write!(f, "cannot merge db with dialect {theirs:?} into {ours:?}")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// One resolved merge conflict, for auditability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeConflict {
    /// The parameter both constraints describe.
    pub param: String,
    /// The conflicting constraints' category.
    pub category: &'static str,
    /// Rendering of the constraint that survived (possibly a blend).
    pub kept: String,
    /// Rendering of the constraint that lost.
    pub dropped: String,
    /// Provenance module of the surviving constraint.
    pub kept_from: String,
    /// Provenance module of the losing constraint.
    pub dropped_from: String,
}

/// What a [`ConstraintDb::merge`] did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MergeReport {
    /// Parameters that did not exist in the receiving database.
    pub params_added: usize,
    /// Constraints appended without conflict.
    pub added: usize,
    /// Constraints dropped as exact duplicates.
    pub deduped: usize,
    /// Same-class conflicts and how each was resolved.
    pub conflicts: Vec<MergeConflict>,
}

impl MergeReport {
    /// Folds another merge's outcome into this one (a coordinator merging
    /// several shard databases reports one combined tally).
    pub fn absorb(&mut self, other: MergeReport) {
        self.params_added += other.params_added;
        self.added += other.added;
        self.deduped += other.deduped;
        self.conflicts.extend(other.conflicts);
    }

    /// Renders the merge outcome as human text: the headline counts, then
    /// one audit line per resolved conflict saying which constraint
    /// survived and where both sides came from.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} new parameter(s), {} constraint(s) added, {} duplicate(s) dropped, \
             {} conflict(s) resolved\n",
            self.params_added,
            self.added,
            self.deduped,
            self.conflicts.len(),
        );
        let from = |m: &str| {
            if m.is_empty() {
                "<hand-built>".to_string()
            } else {
                m.to_string()
            }
        };
        for c in &self.conflicts {
            out.push_str(&format!(
                "  \"{}\" ({}): kept {} (from {}), dropped {} (from {})\n",
                c.param,
                c.category,
                c.kept,
                from(&c.kept_from),
                c.dropped,
                from(&c.dropped_from),
            ));
        }
        out
    }
}

/// The canonical sort key of one constraint row: the serialized kind
/// first (total, content-derived order), then origin and provenance as
/// tie-breakers. Derived from the exact tokens [`ConstraintDb::save_to_string`]
/// writes, so sorting by it and sorting the output lines agree.
fn canonical_key(c: &Constraint, module: &str) -> (String, String, u32, u32, String) {
    (
        kind_to_tokens(&c.kind),
        c.in_function.clone(),
        c.span.line,
        c.span.col,
        module.to_string(),
    )
}

// -- Token helpers ------------------------------------------------------

/// Escapes a string into a single space-free token.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 1);
    if s.is_empty() {
        return "%_".to_string();
    }
    for ch in s.chars() {
        match ch {
            '%' => out.push_str("%%"),
            ' ' => out.push_str("%s"),
            '\t' => out.push_str("%t"),
            '\n' => out.push_str("%n"),
            '\r' => out.push_str("%r"),
            '|' => out.push_str("%p"),
            ',' => out.push_str("%c"),
            ':' => out.push_str("%d"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`esc`].
fn unesc(s: &str) -> String {
    if s == "%_" {
        return String::new();
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(ch) = chars.next() {
        if ch != '%' {
            out.push(ch);
            continue;
        }
        match chars.next() {
            Some('%') => out.push('%'),
            Some('s') => out.push(' '),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('p') => out.push('|'),
            Some('c') => out.push(','),
            Some('d') => out.push(':'),
            Some('_') => {}
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

fn dialect_tag(d: Dialect) -> &'static str {
    match d {
        Dialect::KeyValue => "key-value",
        Dialect::Directive => "directive",
        Dialect::SpaceSeparated => "space",
    }
}

fn dialect_from_tag(t: &str) -> Option<Dialect> {
    match t {
        "key-value" => Some(Dialect::KeyValue),
        "directive" => Some(Dialect::Directive),
        "space" => Some(Dialect::SpaceSeparated),
        _ => None,
    }
}

fn time_unit_tag(u: TimeUnit) -> &'static str {
    match u {
        TimeUnit::Micro => "us",
        TimeUnit::Milli => "ms",
        TimeUnit::Sec => "s",
        TimeUnit::Min => "m",
        TimeUnit::Hour => "h",
    }
}

fn time_unit_from_tag(t: &str) -> Option<TimeUnit> {
    match t {
        "us" => Some(TimeUnit::Micro),
        "ms" => Some(TimeUnit::Milli),
        "s" => Some(TimeUnit::Sec),
        "m" => Some(TimeUnit::Min),
        "h" => Some(TimeUnit::Hour),
        _ => None,
    }
}

fn size_unit_tag(u: SizeUnit) -> &'static str {
    match u {
        SizeUnit::B => "b",
        SizeUnit::KB => "kb",
        SizeUnit::MB => "mb",
        SizeUnit::GB => "gb",
    }
}

fn size_unit_from_tag(t: &str) -> Option<SizeUnit> {
    match t {
        "b" => Some(SizeUnit::B),
        "kb" => Some(SizeUnit::KB),
        "mb" => Some(SizeUnit::MB),
        "gb" => Some(SizeUnit::GB),
        _ => None,
    }
}

fn cmp_tag(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Lt => "<",
        CmpOp::Gt => ">",
        CmpOp::Le => "<=",
        CmpOp::Ge => ">=",
        CmpOp::Eq => "==",
        CmpOp::Ne => "!=",
    }
}

fn cmp_from_tag(t: &str) -> Option<CmpOp> {
    match t {
        "<" => Some(CmpOp::Lt),
        ">" => Some(CmpOp::Gt),
        "<=" => Some(CmpOp::Le),
        ">=" => Some(CmpOp::Ge),
        "==" => Some(CmpOp::Eq),
        "!=" => Some(CmpOp::Ne),
        _ => None,
    }
}

fn opt_i64(v: Option<i64>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "*".to_string(),
    }
}

fn opt_i64_from(t: &str) -> Result<Option<i64>, String> {
    if t == "*" {
        return Ok(None);
    }
    t.parse().map(Some).map_err(|_| format!("bad bound `{t}`"))
}

fn kind_to_tokens(kind: &ConstraintKind) -> String {
    match kind {
        ConstraintKind::BasicType(bt) => match bt {
            BasicType::Bool => "basic bool".to_string(),
            BasicType::Int { bits, signed } => {
                format!("basic int {bits} {}", u8::from(*signed))
            }
            BasicType::Float { bits } => format!("basic float {bits}"),
            BasicType::Str => "basic str".to_string(),
            BasicType::Enum => "basic enum".to_string(),
        },
        ConstraintKind::SemanticType(st) => match st {
            SemType::FilePath => "sem file".to_string(),
            SemType::DirPath => "sem dir".to_string(),
            SemType::Port => "sem port".to_string(),
            SemType::IpAddr => "sem ip".to_string(),
            SemType::Hostname => "sem host".to_string(),
            SemType::UserName => "sem user".to_string(),
            SemType::GroupName => "sem group".to_string(),
            SemType::Time(u) => format!("sem time {}", time_unit_tag(*u)),
            SemType::Size(u) => format!("sem size {}", size_unit_tag(*u)),
            SemType::Permission => "sem perm".to_string(),
        },
        ConstraintKind::Range(r) => {
            let cuts = if r.cutpoints.is_empty() {
                ".".to_string()
            } else {
                r.cutpoints
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            };
            let segs = if r.segments.is_empty() {
                ".".to_string()
            } else {
                r.segments
                    .iter()
                    .map(|s| format!("{}:{}:{}", opt_i64(s.lo), opt_i64(s.hi), u8::from(s.valid)))
                    .collect::<Vec<_>>()
                    .join(",")
            };
            format!("range {cuts} {segs}")
        }
        ConstraintKind::EnumRange(e) => {
            let alts = if e.alternatives.is_empty() {
                ".".to_string()
            } else {
                e.alternatives
                    .iter()
                    .map(|a| {
                        let (tag, v) = match &a.value {
                            EnumValue::Int(v) => ('i', v.to_string()),
                            EnumValue::Str(s) => ('s', esc(s)),
                        };
                        format!("{tag}:{v}:{}", u8::from(a.valid))
                    })
                    .collect::<Vec<_>>()
                    .join(",")
            };
            format!(
                "enum {} {} {} {alts}",
                u8::from(e.unmatched_is_error),
                u8::from(e.unmatched_overwrites),
                u8::from(e.case_insensitive),
            )
        }
        ConstraintKind::ControlDep(d) => format!(
            "dep {} {} {} {} {}",
            esc(&d.controller),
            cmp_tag(d.op),
            d.value,
            esc(&d.dependent),
            d.confidence,
        ),
        ConstraintKind::ValueRel(r) => {
            format!("rel {} {} {}", esc(&r.lhs), cmp_tag(r.op), esc(&r.rhs))
        }
    }
}

fn kind_from_tokens(s: &str) -> Result<ConstraintKind, String> {
    let toks: Vec<&str> = s.split(' ').collect();
    let bad = || format!("malformed constraint `{s}`");
    match toks.first().copied() {
        Some("basic") => {
            let bt = match toks.get(1).copied() {
                Some("bool") => BasicType::Bool,
                Some("str") => BasicType::Str,
                Some("enum") => BasicType::Enum,
                Some("int") => {
                    let bits: u8 = toks.get(2).and_then(|t| t.parse().ok()).ok_or_else(bad)?;
                    if ![8, 16, 32, 64].contains(&bits) {
                        return Err(format!("unsupported integer width {bits} in `{s}`"));
                    }
                    BasicType::Int {
                        bits,
                        signed: toks.get(3).map(|t| *t == "1").ok_or_else(bad)?,
                    }
                }
                Some("float") => BasicType::Float {
                    bits: toks.get(2).and_then(|t| t.parse().ok()).ok_or_else(bad)?,
                },
                _ => return Err(bad()),
            };
            Ok(ConstraintKind::BasicType(bt))
        }
        Some("sem") => {
            let st = match toks.get(1).copied() {
                Some("file") => SemType::FilePath,
                Some("dir") => SemType::DirPath,
                Some("port") => SemType::Port,
                Some("ip") => SemType::IpAddr,
                Some("host") => SemType::Hostname,
                Some("user") => SemType::UserName,
                Some("group") => SemType::GroupName,
                Some("perm") => SemType::Permission,
                Some("time") => SemType::Time(
                    toks.get(2)
                        .copied()
                        .and_then(time_unit_from_tag)
                        .ok_or_else(bad)?,
                ),
                Some("size") => SemType::Size(
                    toks.get(2)
                        .copied()
                        .and_then(size_unit_from_tag)
                        .ok_or_else(bad)?,
                ),
                _ => return Err(bad()),
            };
            Ok(ConstraintKind::SemanticType(st))
        }
        Some("range") => {
            if toks.len() != 3 {
                return Err(bad());
            }
            let cutpoints = if toks[1] == "." {
                Vec::new()
            } else {
                toks[1]
                    .split(',')
                    .map(|t| t.parse().map_err(|_| bad()))
                    .collect::<Result<Vec<i64>, _>>()?
            };
            let segments = if toks[2] == "." {
                Vec::new()
            } else {
                toks[2]
                    .split(',')
                    .map(|t| {
                        let parts: Vec<&str> = t.split(':').collect();
                        if parts.len() != 3 {
                            return Err(bad());
                        }
                        Ok(RangeSegment {
                            lo: opt_i64_from(parts[0])?,
                            hi: opt_i64_from(parts[1])?,
                            valid: parts[2] == "1",
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?
            };
            Ok(ConstraintKind::Range(NumericRange {
                cutpoints,
                segments,
            }))
        }
        Some("enum") => {
            if toks.len() != 5 {
                return Err(bad());
            }
            let alternatives = if toks[4] == "." {
                Vec::new()
            } else {
                toks[4]
                    .split(',')
                    .map(|t| {
                        let parts: Vec<&str> = t.split(':').collect();
                        if parts.len() != 3 {
                            return Err(bad());
                        }
                        let value = match parts[0] {
                            "i" => EnumValue::Int(parts[1].parse().map_err(|_| bad())?),
                            "s" => EnumValue::Str(unesc(parts[1])),
                            _ => return Err(bad()),
                        };
                        Ok(EnumAlternative {
                            value,
                            valid: parts[2] == "1",
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?
            };
            Ok(ConstraintKind::EnumRange(EnumRange {
                alternatives,
                unmatched_is_error: toks[1] == "1",
                unmatched_overwrites: toks[2] == "1",
                case_insensitive: toks[3] == "1",
            }))
        }
        Some("dep") => {
            if toks.len() != 6 {
                return Err(bad());
            }
            Ok(ConstraintKind::ControlDep(ControlDep {
                controller: unesc(toks[1]),
                op: cmp_from_tag(toks[2]).ok_or_else(bad)?,
                value: toks[3].parse().map_err(|_| bad())?,
                dependent: unesc(toks[4]),
                confidence: toks[5].parse().map_err(|_| bad())?,
            }))
        }
        Some("rel") => {
            if toks.len() != 4 {
                return Err(bad());
            }
            Ok(ConstraintKind::ValueRel(ValueRel {
                lhs: unesc(toks[1]),
                op: cmp_from_tag(toks[2]).ok_or_else(bad)?,
                rhs: unesc(toks[3]),
            }))
        }
        _ => Err(bad()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> ConstraintDb {
        let mut db = ConstraintDb::new("Test", Dialect::KeyValue);
        db.add(Constraint {
            param: "threads".into(),
            kind: ConstraintKind::BasicType(BasicType::Int {
                bits: 32,
                signed: true,
            }),
            in_function: "startup".into(),
            span: Span::new(10, 5),
        });
        db.add(Constraint {
            param: "threads".into(),
            kind: ConstraintKind::Range(NumericRange {
                cutpoints: vec![1, 16],
                segments: vec![
                    RangeSegment {
                        lo: None,
                        hi: Some(0),
                        valid: false,
                    },
                    RangeSegment {
                        lo: Some(1),
                        hi: Some(16),
                        valid: true,
                    },
                    RangeSegment {
                        lo: Some(17),
                        hi: None,
                        valid: false,
                    },
                ],
            }),
            in_function: "startup".into(),
            span: Span::new(11, 9),
        });
        db.add(Constraint {
            param: "log mode".into(), // space: exercises token escaping
            kind: ConstraintKind::EnumRange(EnumRange {
                alternatives: vec![
                    EnumAlternative {
                        value: EnumValue::Str("a b".into()),
                        valid: true,
                    },
                    EnumAlternative {
                        value: EnumValue::Int(3),
                        valid: false,
                    },
                ],
                unmatched_is_error: true,
                unmatched_overwrites: false,
                case_insensitive: true,
            }),
            in_function: String::new(),
            span: Span::unknown(),
        });
        db.add(Constraint {
            param: "commit_siblings".into(),
            kind: ConstraintKind::ControlDep(ControlDep {
                controller: "fsync".into(),
                value: 0,
                op: CmpOp::Ne,
                dependent: "commit_siblings".into(),
                confidence: 0.875,
            }),
            in_function: "commit".into(),
            span: Span::new(3, 1),
        });
        db.add(Constraint {
            param: "min_len".into(),
            kind: ConstraintKind::ValueRel(ValueRel {
                lhs: "min_len".into(),
                op: CmpOp::Lt,
                rhs: "max_len".into(),
            }),
            in_function: "ft_get_word".into(),
            span: Span::new(7, 2),
        });
        db.add(Constraint {
            param: "nap".into(),
            kind: ConstraintKind::SemanticType(SemType::Time(TimeUnit::Min)),
            in_function: "napper".into(),
            span: Span::new(9, 9),
        });
        db.note_param("unconstrained_key");
        db
    }

    #[test]
    fn round_trips_losslessly() {
        let db = sample_db();
        let text = db.save_to_string();
        let back = ConstraintDb::load_from_str(&text).unwrap();
        // Loading yields the canonical order `save` writes.
        let mut want = db.clone();
        want.canonicalize();
        assert_eq!(want, back);
        // And the re-serialization is byte-identical.
        assert_eq!(text, back.save_to_string());
    }

    #[test]
    fn save_order_is_canonical_regardless_of_insertion_history() {
        // Two databases with the same content, built in different orders
        // (the incremental-vs-from-scratch situation), must serialize to
        // identical bytes.
        let forward = sample_db();
        let mut reversed = ConstraintDb::new("Test", Dialect::KeyValue);
        let mut rows: Vec<(Constraint, String)> = Vec::new();
        for p in &forward.params {
            for (c, m) in p.with_provenance() {
                rows.push((c.clone(), m.to_string()));
            }
        }
        for (c, m) in rows.into_iter().rev() {
            reversed.add_from(c, &m);
        }
        reversed.note_param("unconstrained_key");
        assert_ne!(
            forward.params.iter().map(|p| &p.name).collect::<Vec<_>>(),
            reversed.params.iter().map(|p| &p.name).collect::<Vec<_>>(),
            "the histories really differ in memory"
        );
        assert_eq!(forward.save_to_string(), reversed.save_to_string());
        // `canonicalize` brings the in-memory form to the saved order.
        let mut canon_fwd = forward.clone();
        let mut canon_rev = reversed.clone();
        canon_fwd.canonicalize();
        canon_rev.canonicalize();
        assert_eq!(canon_fwd, canon_rev);
    }

    #[test]
    fn round_trips_all_dialects() {
        for d in [
            Dialect::KeyValue,
            Dialect::Directive,
            Dialect::SpaceSeparated,
        ] {
            let db = ConstraintDb::new("X", d);
            let back = ConstraintDb::load_from_str(&db.save_to_string()).unwrap();
            assert_eq!(back.dialect, d);
        }
    }

    #[test]
    fn escape_round_trips_hostile_strings() {
        for s in ["", "a b", "x%y", "p|q", "a,b:c", "line\nbreak", "%_", "  "] {
            assert_eq!(unesc(&esc(s)), s, "escape failed for {s:?}");
            assert!(!esc(s).contains(' '), "escaped token has a space for {s:?}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(ConstraintDb::load_from_str("").is_err());
        assert!(ConstraintDb::load_from_str("not a db\n").is_err());
        let mut text = sample_db().save_to_string();
        text.push_str("c bogus tokens | f 1 1 | %_\n");
        let err = ConstraintDb::load_from_str(&text).unwrap_err();
        assert!(err.message.contains("malformed"), "{err}");
        // A v2 constraint line without its provenance field is malformed.
        let mut text = sample_db().save_to_string();
        text.push_str("c basic bool | f 1 1\n");
        let err = ConstraintDb::load_from_str(&text).unwrap_err();
        assert!(err.message.contains("provenance"), "{err}");
    }

    #[test]
    fn every_load_error_class_carries_its_one_based_line() {
        // One probe per error class `load_from_str` can produce; each
        // asserts both the complaint and the exact 1-based line of the
        // malformed record, which is what operators grep for when a fleet
        // job rejects one database out of hundreds.
        const HEADER: &str = "spex-constraint-db v2\nsystem X\ndialect key-value\n";
        let cases: &[(&str, usize, &str)] = &[
            ("", 1, "empty file"),
            ("not a db\n", 1, "bad magic"),
            ("spex-constraint-db v2", 2, "missing system line"),
            ("spex-constraint-db v2\nsys X\n", 2, "expected `system"),
            ("spex-constraint-db v2\nsystem X", 3, "missing dialect line"),
            (
                "spex-constraint-db v2\nsystem X\ndialect toml\n",
                3,
                "expected `dialect",
            ),
            // Body records: the header occupies lines 1–3, so every
            // offence below sits on line 4.
            (
                "c basic bool | f 1 1 | %_\n",
                4,
                "constraint before any `param`",
            ),
            (
                "param p\nc basic bool\n",
                5,
                "missing ` | ` origin separator",
            ),
            (
                "param p\nc basic bool | f 1 1\n",
                5,
                "missing ` | <module>` provenance",
            ),
            (
                "param p\nc basic bool | f 1 1 | m | extra\n",
                5,
                "too many ` | ` fields",
            ),
            (
                "param p\nc bogus tokens | f 1 1 | %_\n",
                5,
                "malformed constraint",
            ),
            (
                "param p\nc basic bool | f 1 | %_\n",
                5,
                "origin must be `<func> <line> <col>`",
            ),
            ("param p\nc basic bool | f x 1 | %_\n", 5, "bad origin line"),
            ("param p\nc basic bool | f 1 x | %_\n", 5, "bad origin col"),
            ("what is this\n", 4, "unrecognised line"),
        ];
        for (body, line, needle) in cases {
            // Header-level probes (offence on lines 1–3) are complete
            // texts; body probes get the valid three-line header prefixed.
            let text = if *line <= 3 {
                body.to_string()
            } else {
                format!("{HEADER}{body}")
            };
            let err = ConstraintDb::load_from_str(&text).unwrap_err();
            assert_eq!(err.line, *line, "{needle}: wrong line in {err}");
            assert!(err.message.contains(needle), "{needle}: got {err}");
            // And the Display form carries the line for free.
            assert!(err.to_string().contains(&format!("line {line}")), "{err}");
        }
    }

    #[test]
    fn load_errors_name_the_file_and_the_line() {
        let dir = std::env::temp_dir().join(format!("spex-db-err-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("broken.spexdb");
        std::fs::write(
            &path,
            "spex-constraint-db v2\nsystem X\ndialect key-value\nparam p\nc basic bool | f 1 1\n",
        )
        .unwrap();
        let err = ConstraintDb::load(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(msg.contains("broken.spexdb"), "path missing: {msg}");
        assert!(msg.contains("line 5"), "line missing: {msg}");
        // A file that cannot be read at all also names itself.
        let gone = dir.join("nonexistent.spexdb");
        let err = ConstraintDb::load(&gone).unwrap_err();
        assert!(err.to_string().contains("nonexistent.spexdb"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merge_report_renders_counts_and_conflicts() {
        let mut ours = sample_db();
        let mut theirs = ConstraintDb::new("Test", Dialect::KeyValue);
        // A tighter range for an existing parameter (conflict) plus a
        // brand-new parameter (clean addition).
        theirs.add_from(
            Constraint {
                param: "threads".into(),
                kind: ConstraintKind::Range(NumericRange {
                    cutpoints: vec![1, 8],
                    segments: vec![
                        RangeSegment {
                            lo: None,
                            hi: Some(0),
                            valid: false,
                        },
                        RangeSegment {
                            lo: Some(1),
                            hi: Some(8),
                            valid: true,
                        },
                        RangeSegment {
                            lo: Some(9),
                            hi: None,
                            valid: false,
                        },
                    ],
                }),
                in_function: "startup".into(),
                span: Span::new(7, 1),
            },
            "shard1.c",
        );
        theirs.add_from(
            Constraint {
                param: "fresh".into(),
                kind: ConstraintKind::BasicType(BasicType::Bool),
                in_function: "init".into(),
                span: Span::new(2, 1),
            },
            "shard1.c",
        );
        let report = ours.merge(&theirs).unwrap();
        let text = report.render();
        assert!(
            text.starts_with("1 new parameter(s), 1 constraint(s) added,"),
            "{text}"
        );
        assert!(text.contains("conflict(s) resolved"), "{text}");
        for needle in ["\"threads\" (data-range): kept", "from shard1.c"] {
            assert!(text.contains(needle), "{needle} missing in {text}");
        }
        // Absorbing two reports sums the tallies.
        let mut combined = MergeReport::default();
        combined.absorb(report.clone());
        combined.absorb(report.clone());
        assert_eq!(combined.params_added, 2 * report.params_added);
        assert_eq!(combined.conflicts.len(), 2 * report.conflicts.len());
    }

    #[test]
    fn rejects_unsupported_integer_widths() {
        // A hand-edited width must be caught at load time, not crash the
        // checker's bounds computation later.
        for bits in [0, 7, 63, 255] {
            let mut text = sample_db().save_to_string();
            text.push_str(&format!(
                "param hacked\nc basic int {bits} 1 | f 1 1 | %_\n"
            ));
            let err = ConstraintDb::load_from_str(&text).unwrap_err();
            assert!(
                err.message.contains("unsupported integer width"),
                "bits={bits}: {err}"
            );
        }
    }

    /// Renders a database in the legacy v1 format (what a pre-workspace
    /// deployment would have on disk).
    fn save_as_v1(db: &ConstraintDb) -> String {
        let v2 = db.save_to_string();
        let mut out = String::new();
        for (i, line) in v2.lines().enumerate() {
            if i == 0 {
                out.push_str("spex-constraint-db v1\n");
                continue;
            }
            if line.starts_with("c ") {
                let (head, _module) = line.rsplit_once(" | ").unwrap();
                out.push_str(head);
                out.push('\n');
            } else {
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }

    #[test]
    fn v1_database_loads_and_migrates_losslessly() {
        let mut db = sample_db();
        db.canonicalize();
        let v1_text = save_as_v1(&db);
        assert_eq!(ConstraintDb::detect_version(&v1_text), Some(1));
        let migrated = ConstraintDb::load_from_str(&v1_text).unwrap();
        // Everything v1 could express survives the migration…
        assert_eq!(migrated, db);
        // …and the rewrite is the current version.
        let rewritten = migrated.save_to_string();
        assert_eq!(ConstraintDb::detect_version(&rewritten), Some(2));
        assert_eq!(ConstraintDb::load_from_str(&rewritten).unwrap(), migrated);
    }

    #[test]
    fn v1_lines_must_not_carry_provenance() {
        let mut text = String::from("spex-constraint-db v1\nsystem X\ndialect key-value\n");
        text.push_str("param p\nc basic bool | f 1 1 | mod\n");
        let err = ConstraintDb::load_from_str(&text).unwrap_err();
        assert!(err.message.contains("v1"), "{err}");
    }

    #[test]
    fn provenance_round_trips() {
        let mut db = ConstraintDb::new("X", Dialect::KeyValue);
        db.add_from(
            Constraint {
                param: "a".into(),
                kind: ConstraintKind::BasicType(BasicType::Bool),
                in_function: "f".into(),
                span: Span::new(1, 1),
            },
            "mod one", // space: exercises provenance escaping
        );
        let back = ConstraintDb::load_from_str(&db.save_to_string()).unwrap();
        assert_eq!(back, db);
        assert_eq!(back.param("a").unwrap().provenance, vec!["mod one"]);
    }

    fn range_c(param: &str, lo: i64, hi: i64, module: &str) -> (Constraint, String) {
        (
            Constraint {
                param: param.into(),
                kind: ConstraintKind::Range(NumericRange {
                    cutpoints: vec![lo, hi],
                    segments: vec![
                        RangeSegment {
                            lo: None,
                            hi: Some(lo - 1),
                            valid: false,
                        },
                        RangeSegment {
                            lo: Some(lo),
                            hi: Some(hi),
                            valid: true,
                        },
                        RangeSegment {
                            lo: Some(hi + 1),
                            hi: None,
                            valid: false,
                        },
                    ],
                }),
                in_function: "f".into(),
                span: Span::new(1, 1),
            },
            module.to_string(),
        )
    }

    #[test]
    fn merge_requires_same_system_and_dialect() {
        let mut a = ConstraintDb::new("A", Dialect::KeyValue);
        let b = ConstraintDb::new("B", Dialect::KeyValue);
        assert!(matches!(
            a.merge(&b),
            Err(MergeError::SystemMismatch { .. })
        ));
        let c = ConstraintDb::new("A", Dialect::Directive);
        assert!(matches!(
            a.merge(&c),
            Err(MergeError::DialectMismatch { .. })
        ));
    }

    #[test]
    fn merge_dedupes_identical_and_appends_new() {
        let mut a = ConstraintDb::new("S", Dialect::KeyValue);
        let (c1, m1) = range_c("threads", 1, 16, "shard-a");
        a.add_from(c1.clone(), &m1);
        let mut b = ConstraintDb::new("S", Dialect::KeyValue);
        b.add_from(c1.clone(), "shard-b");
        b.add_from(
            Constraint {
                param: "mode".into(),
                kind: ConstraintKind::BasicType(BasicType::Str),
                in_function: "g".into(),
                span: Span::new(2, 2),
            },
            "shard-b",
        );
        let report = a.merge(&b).unwrap();
        assert_eq!(report.deduped, 1);
        assert_eq!(report.added, 1);
        assert_eq!(report.params_added, 1);
        assert!(report.conflicts.is_empty());
        // The duplicate kept shard-a's provenance; the new one is shard-b's.
        assert_eq!(a.param("threads").unwrap().provenance, vec!["shard-a"]);
        assert_eq!(a.param("mode").unwrap().provenance, vec!["shard-b"]);
    }

    #[test]
    fn merge_overlapping_ranges_tightest_wins() {
        // Challenger tighter: replaces the incumbent and takes provenance.
        let mut a = ConstraintDb::new("S", Dialect::KeyValue);
        let (wide, m) = range_c("threads", 1, 1000, "shard-a");
        a.add_from(wide, &m);
        let mut b = ConstraintDb::new("S", Dialect::KeyValue);
        let (tight, m) = range_c("threads", 1, 16, "shard-b");
        b.add_from(tight.clone(), &m);
        let report = a.merge(&b).unwrap();
        assert_eq!(report.conflicts.len(), 1);
        let conflict = &report.conflicts[0];
        assert_eq!(conflict.kept_from, "shard-b");
        assert_eq!(conflict.dropped_from, "shard-a");
        assert!(conflict.kept.contains("[1, 16]"), "{}", conflict.kept);
        let entry = a.param("threads").unwrap();
        assert_eq!(entry.constraints, vec![tight.clone()]);
        assert_eq!(entry.provenance, vec!["shard-b"]);

        // Incumbent tighter: merging the wide shard back changes nothing.
        let mut c = ConstraintDb::new("S", Dialect::KeyValue);
        let (wide, m) = range_c("threads", 1, 1000, "shard-a");
        c.add_from(wide, &m);
        let report = a.merge(&c).unwrap();
        assert_eq!(report.conflicts.len(), 1);
        assert_eq!(report.conflicts[0].kept_from, "shard-b");
        assert_eq!(a.param("threads").unwrap().constraints, vec![tight]);
    }

    #[test]
    fn merge_disagreeing_enums_blend_invalid_wins() {
        let enum_kind = |alts: Vec<(&str, bool)>| {
            ConstraintKind::EnumRange(EnumRange {
                alternatives: alts
                    .into_iter()
                    .map(|(s, valid)| EnumAlternative {
                        value: EnumValue::Str(s.into()),
                        valid,
                    })
                    .collect(),
                unmatched_is_error: false,
                unmatched_overwrites: false,
                case_insensitive: true,
            })
        };
        let mut a = ConstraintDb::new("S", Dialect::KeyValue);
        a.add_from(
            Constraint {
                param: "mode".into(),
                kind: enum_kind(vec![("fast", true), ("safe", true)]),
                in_function: "f".into(),
                span: Span::new(1, 1),
            },
            "shard-a",
        );
        let mut b = ConstraintDb::new("S", Dialect::KeyValue);
        b.add_from(
            Constraint {
                param: "mode".into(),
                kind: enum_kind(vec![("safe", false), ("paranoid", true)]),
                in_function: "g".into(),
                span: Span::new(2, 2),
            },
            "shard-b",
        );
        let report = a.merge(&b).unwrap();
        assert_eq!(report.conflicts.len(), 1);
        let ConstraintKind::EnumRange(merged) = &a.param("mode").unwrap().constraints[0].kind
        else {
            panic!("enum survived as enum");
        };
        let validity: Vec<(String, bool)> = merged
            .alternatives
            .iter()
            .map(|alt| (alt.value.to_string(), alt.valid))
            .collect();
        assert_eq!(
            validity,
            vec![
                ("\"fast\"".to_string(), true),
                ("\"safe\"".to_string(), false), // disagreement → invalid wins
                ("\"paranoid\"".to_string(), true),
            ]
        );
        // Blends keep the incumbent's provenance slot.
        assert_eq!(a.param("mode").unwrap().provenance, vec!["shard-a"]);
    }

    #[test]
    fn merge_unbounded_range_never_beats_finite() {
        // A one-sided range has no finite valid interval: it is maximally
        // loose and must lose to any finite incumbent — and vice versa.
        let half_open = |param: &str| Constraint {
            param: param.into(),
            kind: ConstraintKind::Range(NumericRange {
                cutpoints: vec![1],
                segments: vec![
                    RangeSegment {
                        lo: None,
                        hi: Some(0),
                        valid: false,
                    },
                    RangeSegment {
                        lo: Some(1),
                        hi: None,
                        valid: true,
                    },
                ],
            }),
            in_function: "f".into(),
            span: Span::new(1, 1),
        };
        // Unbounded challenger loses.
        let mut a = ConstraintDb::new("S", Dialect::KeyValue);
        let (tight, m) = range_c("threads", 1, 16, "shard-a");
        a.add_from(tight.clone(), &m);
        let mut b = ConstraintDb::new("S", Dialect::KeyValue);
        b.add_from(half_open("threads"), "shard-b");
        a.merge(&b).unwrap();
        assert_eq!(a.param("threads").unwrap().constraints, vec![tight.clone()]);
        assert_eq!(a.param("threads").unwrap().provenance, vec!["shard-a"]);
        // Unbounded incumbent loses.
        let mut c = ConstraintDb::new("S", Dialect::KeyValue);
        c.add_from(half_open("threads"), "shard-b");
        let mut d = ConstraintDb::new("S", Dialect::KeyValue);
        let (tight2, m) = range_c("threads", 1, 16, "shard-a");
        d.add_from(tight2.clone(), &m);
        c.merge(&d).unwrap();
        assert_eq!(c.param("threads").unwrap().constraints, vec![tight2]);
        assert_eq!(c.param("threads").unwrap().provenance, vec!["shard-a"]);
    }

    #[test]
    fn merge_disjoint_enums_coexist_instead_of_blending() {
        // A param can hold a word enum (strcmp chain) and an integer enum
        // (switch); a shard's word enum must pair with the word incumbent,
        // not blend into the unrelated integer domain.
        let word_enum = |alts: Vec<(&str, bool)>| {
            ConstraintKind::EnumRange(EnumRange {
                alternatives: alts
                    .into_iter()
                    .map(|(s, valid)| EnumAlternative {
                        value: EnumValue::Str(s.into()),
                        valid,
                    })
                    .collect(),
                unmatched_is_error: true,
                unmatched_overwrites: false,
                case_insensitive: false,
            })
        };
        let int_enum = ConstraintKind::EnumRange(EnumRange {
            alternatives: vec![
                EnumAlternative {
                    value: EnumValue::Int(0),
                    valid: true,
                },
                EnumAlternative {
                    value: EnumValue::Int(1),
                    valid: true,
                },
            ],
            unmatched_is_error: true,
            unmatched_overwrites: false,
            case_insensitive: false,
        });
        let c = |kind: ConstraintKind| Constraint {
            param: "mode".into(),
            kind,
            in_function: "f".into(),
            span: Span::new(1, 1),
        };
        let mut a = ConstraintDb::new("S", Dialect::KeyValue);
        a.add_from(c(int_enum.clone()), "shard-a");
        a.add_from(c(word_enum(vec![("fast", true)])), "shard-a");
        let mut b = ConstraintDb::new("S", Dialect::KeyValue);
        b.add_from(
            c(word_enum(vec![("fast", true), ("safe", false)])),
            "shard-b",
        );
        let report = a.merge(&b).unwrap();
        // Paired with the overlapping word incumbent (second), not the
        // first same-class constraint; the integer enum is untouched.
        assert_eq!(report.conflicts.len(), 1);
        let entry = a.param("mode").unwrap();
        assert_eq!(entry.constraints.len(), 2);
        assert_eq!(entry.constraints[0].kind, int_enum);
        let ConstraintKind::EnumRange(merged) = &entry.constraints[1].kind else {
            panic!("word enum stayed an enum");
        };
        assert_eq!(merged.alternatives.len(), 2);

        // A fully disjoint enum is not a conflict at all: it coexists.
        let mut d = ConstraintDb::new("S", Dialect::KeyValue);
        d.add_from(c(word_enum(vec![("paranoid", true)])), "shard-d");
        let report = a.merge(&d).unwrap();
        assert!(report.conflicts.is_empty());
        assert_eq!(report.added, 1);
        assert_eq!(a.param("mode").unwrap().constraints.len(), 3);
    }

    #[test]
    fn merge_tolerates_hand_built_entries_without_provenance() {
        // Entries built by struct literal may have an empty provenance
        // vec; merging into them must neither panic nor misalign.
        let (c1, _) = range_c("threads", 1, 1000, "");
        let mut a = ConstraintDb::new("S", Dialect::KeyValue);
        a.params.push(ParamEntry {
            name: "threads".into(),
            constraints: vec![c1],
            provenance: Vec::new(), // deliberately out of sync
        });
        let mut b = ConstraintDb::new("S", Dialect::KeyValue);
        let (tight, m) = range_c("threads", 1, 16, "shard-b");
        b.add_from(tight.clone(), &m);
        let report = a.merge(&b).unwrap();
        assert_eq!(report.conflicts.len(), 1);
        let entry = a.param("threads").unwrap();
        assert_eq!(entry.constraints, vec![tight]);
        assert_eq!(entry.provenance, vec!["shard-b"]);
    }

    #[test]
    fn merge_int_widths_narrower_wins() {
        let int_c = |bits, signed| Constraint {
            param: "n".into(),
            kind: ConstraintKind::BasicType(BasicType::Int { bits, signed }),
            in_function: "f".into(),
            span: Span::new(1, 1),
        };
        let mut a = ConstraintDb::new("S", Dialect::KeyValue);
        a.add_from(int_c(64, true), "shard-a");
        let mut b = ConstraintDb::new("S", Dialect::KeyValue);
        b.add_from(int_c(16, true), "shard-b");
        a.merge(&b).unwrap();
        assert_eq!(
            a.param("n").unwrap().constraints[0].kind,
            ConstraintKind::BasicType(BasicType::Int {
                bits: 16,
                signed: true
            })
        );
        assert_eq!(a.param("n").unwrap().provenance, vec!["shard-b"]);
    }

    #[test]
    fn file_round_trip() {
        let mut db = sample_db();
        db.canonicalize();
        let dir = std::env::temp_dir().join("spex_check_db_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.spexdb");
        db.save(&path).unwrap();
        let back = ConstraintDb::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(db, back);
    }

    #[test]
    fn clone_counter_ticks_per_lineage() {
        let db = sample_db();
        assert_eq!(db.clone_count(), 0);
        let copy = db.clone();
        assert_eq!(db.clone_count(), 1, "the original sees the clone");
        let _again = copy.clone();
        assert_eq!(db.clone_count(), 2, "lineage-wide, not per-instance");
        let other = sample_db();
        assert_eq!(other.clone_count(), 0, "fresh lineages start at zero");
        // Equality ignores the instrumentation.
        assert_eq!(db, copy);
    }

    #[test]
    fn note_param_is_idempotent_and_ordered() {
        let mut db = ConstraintDb::new("X", Dialect::KeyValue);
        db.note_params(["b", "a", "b"]);
        let names: Vec<&str> = db.param_names().collect();
        assert_eq!(names, vec!["b", "a"]);
    }
}
