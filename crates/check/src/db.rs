//! The constraint database: inferred constraints persisted for reuse.
//!
//! Inference (`Spex::analyze`) walks the whole program and is by far the
//! most expensive stage of the pipeline. Validation, in contrast, runs once
//! per configuration file — often thousands of times per system across a
//! fleet. The [`ConstraintDb`] decouples the two: it is built once per
//! system from an analysis, saved in a compact std-only text format, and
//! loaded by every checker run without touching source code again
//! (infer → persist → check).

use spex_conf::Dialect;
use spex_core::constraint::{
    BasicType, CmpOp, Constraint, ConstraintKind, ControlDep, EnumAlternative, EnumRange,
    EnumValue, NumericRange, RangeSegment, SemType, SizeUnit, TimeUnit, ValueRel,
};
use spex_lang::diag::Span;
use std::fmt;
use std::path::Path;

/// Format magic line; bump the version when the format changes.
const MAGIC: &str = "spex-constraint-db v1";

/// All constraints of one parameter.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParamEntry {
    /// The parameter's name as written in config files.
    pub name: String,
    /// Constraints attributed to the parameter (multi-parameter
    /// constraints are stored under the same parameter the inference
    /// passes attribute them to: the dependent for control dependencies,
    /// the left-hand side for value relationships).
    pub constraints: Vec<Constraint>,
}

/// The per-system constraint database.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstraintDb {
    /// The subject system's name.
    pub system: String,
    /// The system's config-file dialect.
    pub dialect: Dialect,
    /// Per-parameter entries, in first-seen order.
    pub params: Vec<ParamEntry>,
}

/// A malformed database file.
#[derive(Debug, Clone, PartialEq)]
pub struct DbError {
    /// 1-based line of the offence.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "constraint db line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DbError {}

impl ConstraintDb {
    /// An empty database for a system.
    pub fn new(system: impl Into<String>, dialect: Dialect) -> ConstraintDb {
        ConstraintDb {
            system: system.into(),
            dialect,
            params: Vec::new(),
        }
    }

    /// Builds a database from a finished analysis. Every analyzed
    /// parameter becomes an entry, even when no constraints were inferred
    /// for it (so the checker knows the name is legal).
    pub fn from_analysis(
        system: impl Into<String>,
        dialect: Dialect,
        analysis: &spex_core::SpexAnalysis,
    ) -> ConstraintDb {
        let mut db = ConstraintDb::new(system, dialect);
        for report in &analysis.reports {
            db.note_param(&report.param.name);
            for c in &report.constraints {
                db.add(c.clone());
            }
        }
        db
    }

    /// Builds a database from a flat constraint list.
    pub fn from_constraints(
        system: impl Into<String>,
        dialect: Dialect,
        constraints: &[Constraint],
    ) -> ConstraintDb {
        let mut db = ConstraintDb::new(system, dialect);
        for c in constraints {
            db.add(c.clone());
        }
        db
    }

    /// Registers a parameter name without constraints (a legal key).
    pub fn note_param(&mut self, name: &str) -> &mut ParamEntry {
        if let Some(i) = self.params.iter().position(|p| p.name == name) {
            return &mut self.params[i];
        }
        self.params.push(ParamEntry {
            name: name.to_string(),
            constraints: Vec::new(),
        });
        self.params.last_mut().unwrap()
    }

    /// Registers many legal parameter names.
    pub fn note_params<I: IntoIterator<Item = S>, S: AsRef<str>>(&mut self, names: I) {
        for n in names {
            self.note_param(n.as_ref());
        }
    }

    /// Adds one constraint under its parameter.
    pub fn add(&mut self, c: Constraint) {
        let name = c.param.clone();
        self.note_param(&name).constraints.push(c);
    }

    /// Entry lookup by exact name.
    pub fn param(&self, name: &str) -> Option<&ParamEntry> {
        self.params.iter().find(|p| p.name == name)
    }

    /// Entry lookup ignoring ASCII case (for "wrong case" suggestions).
    pub fn param_ignore_case(&self, name: &str) -> Option<&ParamEntry> {
        self.params
            .iter()
            .find(|p| p.name.eq_ignore_ascii_case(name))
    }

    /// All known parameter names, in entry order.
    pub fn param_names(&self) -> impl Iterator<Item = &str> {
        self.params.iter().map(|p| p.name.as_str())
    }

    /// Total constraint count.
    pub fn constraint_count(&self) -> usize {
        self.params.iter().map(|p| p.constraints.len()).sum()
    }

    // -- Serialization --------------------------------------------------

    /// Serializes the database to its text format.
    pub fn save_to_string(&self) -> String {
        let mut out = String::new();
        out.push_str(MAGIC);
        out.push('\n');
        out.push_str(&format!("system {}\n", esc(&self.system)));
        out.push_str(&format!("dialect {}\n", dialect_tag(self.dialect)));
        for p in &self.params {
            out.push_str(&format!("param {}\n", esc(&p.name)));
            for c in &p.constraints {
                out.push_str(&format!(
                    "c {} | {} {} {}\n",
                    kind_to_tokens(&c.kind),
                    esc(&c.in_function),
                    c.span.line,
                    c.span.col
                ));
            }
        }
        out
    }

    /// Parses the text format back into a database.
    pub fn load_from_str(text: &str) -> Result<ConstraintDb, DbError> {
        let mut lines = text.lines().enumerate();
        let expect = |lineno: usize, msg: &str| DbError {
            line: lineno + 1,
            message: msg.to_string(),
        };
        let (n0, magic) = lines.next().ok_or_else(|| expect(0, "empty file"))?;
        if magic != MAGIC {
            return Err(expect(n0, "bad magic line"));
        }
        let (n1, sys) = lines
            .next()
            .ok_or_else(|| expect(1, "missing system line"))?;
        let system = sys
            .strip_prefix("system ")
            .ok_or_else(|| expect(n1, "expected `system <name>`"))
            .map(unesc)?;
        let (n2, dia) = lines
            .next()
            .ok_or_else(|| expect(2, "missing dialect line"))?;
        let dialect = dia
            .strip_prefix("dialect ")
            .and_then(dialect_from_tag)
            .ok_or_else(|| expect(n2, "expected `dialect key-value|directive|space`"))?;

        let mut db = ConstraintDb::new(system, dialect);
        let mut current: Option<String> = None;
        for (n, line) in lines {
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("param ") {
                let name = unesc(rest);
                db.note_param(&name);
                current = Some(name);
            } else if let Some(rest) = line.strip_prefix("c ") {
                let param = current
                    .clone()
                    .ok_or_else(|| expect(n, "constraint before any `param`"))?;
                let (kind_part, origin_part) = rest
                    .split_once(" | ")
                    .ok_or_else(|| expect(n, "constraint missing ` | ` origin separator"))?;
                let kind = kind_from_tokens(kind_part).map_err(|m| DbError {
                    line: n + 1,
                    message: m,
                })?;
                let toks: Vec<&str> = origin_part.split(' ').collect();
                if toks.len() != 3 {
                    return Err(expect(n, "origin must be `<func> <line> <col>`"));
                }
                let span = Span::new(
                    toks[1].parse().map_err(|_| expect(n, "bad origin line"))?,
                    toks[2].parse().map_err(|_| expect(n, "bad origin col"))?,
                );
                db.add(Constraint {
                    param,
                    kind,
                    in_function: unesc(toks[0]),
                    span,
                });
            } else {
                return Err(expect(n, "unrecognised line"));
            }
        }
        Ok(db)
    }

    /// Writes the database to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.save_to_string())
    }

    /// Reads a database from a file.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<ConstraintDb> {
        let text = std::fs::read_to_string(path)?;
        ConstraintDb::load_from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

// -- Token helpers ------------------------------------------------------

/// Escapes a string into a single space-free token.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 1);
    if s.is_empty() {
        return "%_".to_string();
    }
    for ch in s.chars() {
        match ch {
            '%' => out.push_str("%%"),
            ' ' => out.push_str("%s"),
            '\t' => out.push_str("%t"),
            '\n' => out.push_str("%n"),
            '\r' => out.push_str("%r"),
            '|' => out.push_str("%p"),
            ',' => out.push_str("%c"),
            ':' => out.push_str("%d"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`esc`].
fn unesc(s: &str) -> String {
    if s == "%_" {
        return String::new();
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(ch) = chars.next() {
        if ch != '%' {
            out.push(ch);
            continue;
        }
        match chars.next() {
            Some('%') => out.push('%'),
            Some('s') => out.push(' '),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('p') => out.push('|'),
            Some('c') => out.push(','),
            Some('d') => out.push(':'),
            Some('_') => {}
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

fn dialect_tag(d: Dialect) -> &'static str {
    match d {
        Dialect::KeyValue => "key-value",
        Dialect::Directive => "directive",
        Dialect::SpaceSeparated => "space",
    }
}

fn dialect_from_tag(t: &str) -> Option<Dialect> {
    match t {
        "key-value" => Some(Dialect::KeyValue),
        "directive" => Some(Dialect::Directive),
        "space" => Some(Dialect::SpaceSeparated),
        _ => None,
    }
}

fn time_unit_tag(u: TimeUnit) -> &'static str {
    match u {
        TimeUnit::Micro => "us",
        TimeUnit::Milli => "ms",
        TimeUnit::Sec => "s",
        TimeUnit::Min => "m",
        TimeUnit::Hour => "h",
    }
}

fn time_unit_from_tag(t: &str) -> Option<TimeUnit> {
    match t {
        "us" => Some(TimeUnit::Micro),
        "ms" => Some(TimeUnit::Milli),
        "s" => Some(TimeUnit::Sec),
        "m" => Some(TimeUnit::Min),
        "h" => Some(TimeUnit::Hour),
        _ => None,
    }
}

fn size_unit_tag(u: SizeUnit) -> &'static str {
    match u {
        SizeUnit::B => "b",
        SizeUnit::KB => "kb",
        SizeUnit::MB => "mb",
        SizeUnit::GB => "gb",
    }
}

fn size_unit_from_tag(t: &str) -> Option<SizeUnit> {
    match t {
        "b" => Some(SizeUnit::B),
        "kb" => Some(SizeUnit::KB),
        "mb" => Some(SizeUnit::MB),
        "gb" => Some(SizeUnit::GB),
        _ => None,
    }
}

fn cmp_tag(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Lt => "<",
        CmpOp::Gt => ">",
        CmpOp::Le => "<=",
        CmpOp::Ge => ">=",
        CmpOp::Eq => "==",
        CmpOp::Ne => "!=",
    }
}

fn cmp_from_tag(t: &str) -> Option<CmpOp> {
    match t {
        "<" => Some(CmpOp::Lt),
        ">" => Some(CmpOp::Gt),
        "<=" => Some(CmpOp::Le),
        ">=" => Some(CmpOp::Ge),
        "==" => Some(CmpOp::Eq),
        "!=" => Some(CmpOp::Ne),
        _ => None,
    }
}

fn opt_i64(v: Option<i64>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "*".to_string(),
    }
}

fn opt_i64_from(t: &str) -> Result<Option<i64>, String> {
    if t == "*" {
        return Ok(None);
    }
    t.parse().map(Some).map_err(|_| format!("bad bound `{t}`"))
}

fn kind_to_tokens(kind: &ConstraintKind) -> String {
    match kind {
        ConstraintKind::BasicType(bt) => match bt {
            BasicType::Bool => "basic bool".to_string(),
            BasicType::Int { bits, signed } => {
                format!("basic int {bits} {}", u8::from(*signed))
            }
            BasicType::Float { bits } => format!("basic float {bits}"),
            BasicType::Str => "basic str".to_string(),
            BasicType::Enum => "basic enum".to_string(),
        },
        ConstraintKind::SemanticType(st) => match st {
            SemType::FilePath => "sem file".to_string(),
            SemType::DirPath => "sem dir".to_string(),
            SemType::Port => "sem port".to_string(),
            SemType::IpAddr => "sem ip".to_string(),
            SemType::Hostname => "sem host".to_string(),
            SemType::UserName => "sem user".to_string(),
            SemType::GroupName => "sem group".to_string(),
            SemType::Time(u) => format!("sem time {}", time_unit_tag(*u)),
            SemType::Size(u) => format!("sem size {}", size_unit_tag(*u)),
            SemType::Permission => "sem perm".to_string(),
        },
        ConstraintKind::Range(r) => {
            let cuts = if r.cutpoints.is_empty() {
                ".".to_string()
            } else {
                r.cutpoints
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            };
            let segs = if r.segments.is_empty() {
                ".".to_string()
            } else {
                r.segments
                    .iter()
                    .map(|s| format!("{}:{}:{}", opt_i64(s.lo), opt_i64(s.hi), u8::from(s.valid)))
                    .collect::<Vec<_>>()
                    .join(",")
            };
            format!("range {cuts} {segs}")
        }
        ConstraintKind::EnumRange(e) => {
            let alts = if e.alternatives.is_empty() {
                ".".to_string()
            } else {
                e.alternatives
                    .iter()
                    .map(|a| {
                        let (tag, v) = match &a.value {
                            EnumValue::Int(v) => ('i', v.to_string()),
                            EnumValue::Str(s) => ('s', esc(s)),
                        };
                        format!("{tag}:{v}:{}", u8::from(a.valid))
                    })
                    .collect::<Vec<_>>()
                    .join(",")
            };
            format!(
                "enum {} {} {} {alts}",
                u8::from(e.unmatched_is_error),
                u8::from(e.unmatched_overwrites),
                u8::from(e.case_insensitive),
            )
        }
        ConstraintKind::ControlDep(d) => format!(
            "dep {} {} {} {} {}",
            esc(&d.controller),
            cmp_tag(d.op),
            d.value,
            esc(&d.dependent),
            d.confidence,
        ),
        ConstraintKind::ValueRel(r) => {
            format!("rel {} {} {}", esc(&r.lhs), cmp_tag(r.op), esc(&r.rhs))
        }
    }
}

fn kind_from_tokens(s: &str) -> Result<ConstraintKind, String> {
    let toks: Vec<&str> = s.split(' ').collect();
    let bad = || format!("malformed constraint `{s}`");
    match toks.first().copied() {
        Some("basic") => {
            let bt = match toks.get(1).copied() {
                Some("bool") => BasicType::Bool,
                Some("str") => BasicType::Str,
                Some("enum") => BasicType::Enum,
                Some("int") => {
                    let bits: u8 = toks.get(2).and_then(|t| t.parse().ok()).ok_or_else(bad)?;
                    if ![8, 16, 32, 64].contains(&bits) {
                        return Err(format!("unsupported integer width {bits} in `{s}`"));
                    }
                    BasicType::Int {
                        bits,
                        signed: toks.get(3).map(|t| *t == "1").ok_or_else(bad)?,
                    }
                }
                Some("float") => BasicType::Float {
                    bits: toks.get(2).and_then(|t| t.parse().ok()).ok_or_else(bad)?,
                },
                _ => return Err(bad()),
            };
            Ok(ConstraintKind::BasicType(bt))
        }
        Some("sem") => {
            let st = match toks.get(1).copied() {
                Some("file") => SemType::FilePath,
                Some("dir") => SemType::DirPath,
                Some("port") => SemType::Port,
                Some("ip") => SemType::IpAddr,
                Some("host") => SemType::Hostname,
                Some("user") => SemType::UserName,
                Some("group") => SemType::GroupName,
                Some("perm") => SemType::Permission,
                Some("time") => SemType::Time(
                    toks.get(2)
                        .copied()
                        .and_then(time_unit_from_tag)
                        .ok_or_else(bad)?,
                ),
                Some("size") => SemType::Size(
                    toks.get(2)
                        .copied()
                        .and_then(size_unit_from_tag)
                        .ok_or_else(bad)?,
                ),
                _ => return Err(bad()),
            };
            Ok(ConstraintKind::SemanticType(st))
        }
        Some("range") => {
            if toks.len() != 3 {
                return Err(bad());
            }
            let cutpoints = if toks[1] == "." {
                Vec::new()
            } else {
                toks[1]
                    .split(',')
                    .map(|t| t.parse().map_err(|_| bad()))
                    .collect::<Result<Vec<i64>, _>>()?
            };
            let segments = if toks[2] == "." {
                Vec::new()
            } else {
                toks[2]
                    .split(',')
                    .map(|t| {
                        let parts: Vec<&str> = t.split(':').collect();
                        if parts.len() != 3 {
                            return Err(bad());
                        }
                        Ok(RangeSegment {
                            lo: opt_i64_from(parts[0])?,
                            hi: opt_i64_from(parts[1])?,
                            valid: parts[2] == "1",
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?
            };
            Ok(ConstraintKind::Range(NumericRange {
                cutpoints,
                segments,
            }))
        }
        Some("enum") => {
            if toks.len() != 5 {
                return Err(bad());
            }
            let alternatives = if toks[4] == "." {
                Vec::new()
            } else {
                toks[4]
                    .split(',')
                    .map(|t| {
                        let parts: Vec<&str> = t.split(':').collect();
                        if parts.len() != 3 {
                            return Err(bad());
                        }
                        let value = match parts[0] {
                            "i" => EnumValue::Int(parts[1].parse().map_err(|_| bad())?),
                            "s" => EnumValue::Str(unesc(parts[1])),
                            _ => return Err(bad()),
                        };
                        Ok(EnumAlternative {
                            value,
                            valid: parts[2] == "1",
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?
            };
            Ok(ConstraintKind::EnumRange(EnumRange {
                alternatives,
                unmatched_is_error: toks[1] == "1",
                unmatched_overwrites: toks[2] == "1",
                case_insensitive: toks[3] == "1",
            }))
        }
        Some("dep") => {
            if toks.len() != 6 {
                return Err(bad());
            }
            Ok(ConstraintKind::ControlDep(ControlDep {
                controller: unesc(toks[1]),
                op: cmp_from_tag(toks[2]).ok_or_else(bad)?,
                value: toks[3].parse().map_err(|_| bad())?,
                dependent: unesc(toks[4]),
                confidence: toks[5].parse().map_err(|_| bad())?,
            }))
        }
        Some("rel") => {
            if toks.len() != 4 {
                return Err(bad());
            }
            Ok(ConstraintKind::ValueRel(ValueRel {
                lhs: unesc(toks[1]),
                op: cmp_from_tag(toks[2]).ok_or_else(bad)?,
                rhs: unesc(toks[3]),
            }))
        }
        _ => Err(bad()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> ConstraintDb {
        let mut db = ConstraintDb::new("Test", Dialect::KeyValue);
        db.add(Constraint {
            param: "threads".into(),
            kind: ConstraintKind::BasicType(BasicType::Int {
                bits: 32,
                signed: true,
            }),
            in_function: "startup".into(),
            span: Span::new(10, 5),
        });
        db.add(Constraint {
            param: "threads".into(),
            kind: ConstraintKind::Range(NumericRange {
                cutpoints: vec![1, 16],
                segments: vec![
                    RangeSegment {
                        lo: None,
                        hi: Some(0),
                        valid: false,
                    },
                    RangeSegment {
                        lo: Some(1),
                        hi: Some(16),
                        valid: true,
                    },
                    RangeSegment {
                        lo: Some(17),
                        hi: None,
                        valid: false,
                    },
                ],
            }),
            in_function: "startup".into(),
            span: Span::new(11, 9),
        });
        db.add(Constraint {
            param: "log mode".into(), // space: exercises token escaping
            kind: ConstraintKind::EnumRange(EnumRange {
                alternatives: vec![
                    EnumAlternative {
                        value: EnumValue::Str("a b".into()),
                        valid: true,
                    },
                    EnumAlternative {
                        value: EnumValue::Int(3),
                        valid: false,
                    },
                ],
                unmatched_is_error: true,
                unmatched_overwrites: false,
                case_insensitive: true,
            }),
            in_function: String::new(),
            span: Span::unknown(),
        });
        db.add(Constraint {
            param: "commit_siblings".into(),
            kind: ConstraintKind::ControlDep(ControlDep {
                controller: "fsync".into(),
                value: 0,
                op: CmpOp::Ne,
                dependent: "commit_siblings".into(),
                confidence: 0.875,
            }),
            in_function: "commit".into(),
            span: Span::new(3, 1),
        });
        db.add(Constraint {
            param: "min_len".into(),
            kind: ConstraintKind::ValueRel(ValueRel {
                lhs: "min_len".into(),
                op: CmpOp::Lt,
                rhs: "max_len".into(),
            }),
            in_function: "ft_get_word".into(),
            span: Span::new(7, 2),
        });
        db.add(Constraint {
            param: "nap".into(),
            kind: ConstraintKind::SemanticType(SemType::Time(TimeUnit::Min)),
            in_function: "napper".into(),
            span: Span::new(9, 9),
        });
        db.note_param("unconstrained_key");
        db
    }

    #[test]
    fn round_trips_losslessly() {
        let db = sample_db();
        let text = db.save_to_string();
        let back = ConstraintDb::load_from_str(&text).unwrap();
        assert_eq!(db, back);
        // And the re-serialization is byte-identical.
        assert_eq!(text, back.save_to_string());
    }

    #[test]
    fn round_trips_all_dialects() {
        for d in [
            Dialect::KeyValue,
            Dialect::Directive,
            Dialect::SpaceSeparated,
        ] {
            let db = ConstraintDb::new("X", d);
            let back = ConstraintDb::load_from_str(&db.save_to_string()).unwrap();
            assert_eq!(back.dialect, d);
        }
    }

    #[test]
    fn escape_round_trips_hostile_strings() {
        for s in ["", "a b", "x%y", "p|q", "a,b:c", "line\nbreak", "%_", "  "] {
            assert_eq!(unesc(&esc(s)), s, "escape failed for {s:?}");
            assert!(!esc(s).contains(' '), "escaped token has a space for {s:?}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(ConstraintDb::load_from_str("").is_err());
        assert!(ConstraintDb::load_from_str("not a db\n").is_err());
        let mut text = sample_db().save_to_string();
        text.push_str("c bogus tokens | f 1 1\n");
        let err = ConstraintDb::load_from_str(&text).unwrap_err();
        assert!(err.message.contains("malformed"), "{err}");
    }

    #[test]
    fn rejects_unsupported_integer_widths() {
        // A hand-edited width must be caught at load time, not crash the
        // checker's bounds computation later.
        for bits in [0, 7, 63, 255] {
            let mut text = sample_db().save_to_string();
            text.push_str(&format!("param hacked\nc basic int {bits} 1 | f 1 1\n"));
            let err = ConstraintDb::load_from_str(&text).unwrap_err();
            assert!(
                err.message.contains("unsupported integer width"),
                "bits={bits}: {err}"
            );
        }
    }

    #[test]
    fn file_round_trip() {
        let db = sample_db();
        let dir = std::env::temp_dir().join("spex_check_db_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.spexdb");
        db.save(&path).unwrap();
        let back = ConstraintDb::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(db, back);
    }

    #[test]
    fn note_param_is_idempotent_and_ordered() {
        let mut db = ConstraintDb::new("X", Dialect::KeyValue);
        db.note_params(["b", "a", "b"]);
        let names: Vec<&str> = db.param_names().collect();
        assert_eq!(names, vec!["b", "a"]);
    }
}
