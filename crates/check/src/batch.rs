//! The legacy batch front-end: an *owning* engine over many systems'
//! databases.
//!
//! Since the 0.3 API redesign the checking engine is the borrowed
//! [`CheckSession`] — it never copies a database, and
//! [`Workspace`](crate::Workspace) caches one across calls. `BatchEngine`
//! remains as a thin owning wrapper for callers that genuinely hold
//! databases for **multiple systems** and route per-job: it builds one
//! session per registered database *once per run* (not per file, as the
//! pre-0.3 engine did) and fans the jobs out on the shared pool.
//!
//! Migration (see the README's "Migrating to 0.3" notes):
//!
//! * one system, in-memory texts → [`CheckSession::check_texts`];
//! * one system, files on disk → [`CheckSession::check_paths`] or
//!   [`Workspace::check_paths`](crate::Workspace::check_paths);
//! * many systems → keep `BatchEngine`, or hold one `CheckSession` per
//!   database yourself.

#![allow(deprecated)]

use crate::db::ConstraintDb;
use crate::env::{Environment, StaticEnv};
use crate::pool;
use crate::report::{BatchStats, FileReport};
use crate::session::CheckSession;
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// One file to validate.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// Which system's constraint database applies.
    pub system: String,
    /// A label for the file (path, host name, tenant id, ...).
    pub file: String,
    /// The raw config-file text.
    pub text: String,
}

/// The multi-system batch engine (legacy owning wrapper; see the module
/// docs for the migration paths).
#[deprecated(
    since = "0.3.0",
    note = "prefer the borrowed `CheckSession` (`check_texts`/`check_paths`) \
            or `Workspace::check_paths`; `BatchEngine` remains only for \
            multi-system job routing"
)]
pub struct BatchEngine {
    dbs: HashMap<String, ConstraintDb>,
    envs: HashMap<String, Arc<dyn Environment + Send + Sync>>,
    threads: usize,
}

impl Default for BatchEngine {
    fn default() -> Self {
        BatchEngine::new()
    }
}

impl BatchEngine {
    /// An engine with no databases, sized to the machine.
    pub fn new() -> BatchEngine {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        BatchEngine {
            dbs: HashMap::new(),
            envs: HashMap::new(),
            threads,
        }
    }

    /// Overrides the worker-thread count (clamped to at least 1).
    pub fn with_threads(mut self, threads: usize) -> BatchEngine {
        self.threads = threads.max(1);
        self
    }

    /// Registers a system's constraint database (keyed by its `system`).
    pub fn add_db(&mut self, db: ConstraintDb) -> &mut Self {
        self.dbs.insert(db.system.clone(), db);
        self
    }

    /// Registers a declarative environment model for one system's checks.
    pub fn add_env(&mut self, system: &str, env: StaticEnv) -> &mut Self {
        self.add_shared_env(system, Arc::new(env))
    }

    /// Registers any shared [`Environment`] (e.g. [`crate::FsEnv`]) for
    /// one system's checks.
    pub fn add_shared_env(
        &mut self,
        system: &str,
        env: Arc<dyn Environment + Send + Sync>,
    ) -> &mut Self {
        self.envs.insert(system.to_string(), env);
        self
    }

    /// Registered system names, sorted.
    pub fn systems(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.dbs.keys().map(|s| s.as_str()).collect();
        names.sort_unstable();
        names
    }

    /// One borrowed session per registered database — built once per run,
    /// shared read-only by every worker.
    fn sessions(&self) -> HashMap<&str, CheckSession<'_>> {
        self.dbs
            .iter()
            .map(|(name, db)| {
                let mut session = CheckSession::new(db);
                if let Some(env) = self.envs.get(name) {
                    session = session.with_env(env.as_ref());
                }
                (name.as_str(), session)
            })
            .collect()
    }

    fn check_text(
        sessions: &HashMap<&str, CheckSession<'_>>,
        system: &str,
        file: &str,
        text: &str,
    ) -> FileReport {
        match sessions.get(system) {
            None => FileReport {
                system: system.to_string(),
                file: file.to_string(),
                diagnostics: Vec::new(),
                unknown_system: true,
                read_error: None,
            },
            Some(session) => FileReport {
                system: system.to_string(),
                file: file.to_string(),
                diagnostics: session.check_text(text),
                unknown_system: false,
                read_error: None,
            },
        }
    }

    /// Validates every job, returning per-file reports in job order plus
    /// aggregate statistics.
    pub fn run(&self, jobs: &[BatchJob]) -> (Vec<FileReport>, BatchStats) {
        let sessions = self.sessions();
        let reports = pool::run_indexed(self.threads, jobs.len(), None, |i| {
            let job = &jobs[i];
            Self::check_text(&sessions, &job.system, &job.file, &job.text)
        });
        let stats = BatchStats::tally(&reports);
        (reports, stats)
    }

    /// Streaming batch validation of `roots` against `system`'s database
    /// (see [`CheckSession::check_paths`] for the walking, memory and
    /// ordering guarantees — this wrapper only adds the unknown-system
    /// report when no database is registered).
    pub fn run_paths<P: AsRef<Path>>(
        &self,
        system: &str,
        roots: &[P],
    ) -> std::io::Result<(Vec<FileReport>, BatchStats)> {
        let Some(db) = self.dbs.get(system) else {
            // No database: mirror the pre-0.3 behaviour exactly — a file
            // the walk or the read fails on is still an *unreadable*
            // report (the I/O message matters to monitoring); only files
            // that could have been checked become unknown-system.
            let files = pool::walk_roots(roots)?;
            let reports: Vec<FileReport> = files
                .iter()
                .map(|entry| {
                    let mut report = FileReport {
                        system: system.to_string(),
                        file: entry.path.display().to_string(),
                        diagnostics: Vec::new(),
                        unknown_system: false,
                        read_error: None,
                    };
                    if let Some(e) = &entry.walk_error {
                        report.read_error = Some(e.clone());
                    } else if !std::fs::metadata(&entry.path)
                        .map(|m| m.is_file())
                        .unwrap_or(false)
                    {
                        report.read_error = Some("not a regular file".to_string());
                    } else if let Err(e) = std::fs::read_to_string(&entry.path) {
                        report.read_error = Some(e.to_string());
                    } else {
                        report.unknown_system = true;
                    }
                    report
                })
                .collect();
            let stats = BatchStats::tally(&reports);
            return Ok((reports, stats));
        };
        let mut session = CheckSession::new(db).with_threads(self.threads);
        if let Some(env) = self.envs.get(system) {
            session = session.with_env(env.as_ref());
        }
        let report = session.check_paths(roots)?;
        Ok((report.files, report.stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spex_conf::Dialect;
    use spex_core::constraint::{
        BasicType, Constraint, ConstraintKind, NumericRange, RangeSegment,
    };
    use spex_lang::diag::Span;

    fn db(system: &str) -> ConstraintDb {
        let mut db = ConstraintDb::new(system, Dialect::KeyValue);
        db.add(Constraint {
            param: "threads".into(),
            kind: ConstraintKind::BasicType(BasicType::Int {
                bits: 32,
                signed: true,
            }),
            in_function: "f".into(),
            span: Span::unknown(),
        });
        db.add(Constraint {
            param: "threads".into(),
            kind: ConstraintKind::Range(NumericRange {
                cutpoints: vec![1, 16],
                segments: vec![
                    RangeSegment {
                        lo: None,
                        hi: Some(0),
                        valid: false,
                    },
                    RangeSegment {
                        lo: Some(1),
                        hi: Some(16),
                        valid: true,
                    },
                    RangeSegment {
                        lo: Some(17),
                        hi: None,
                        valid: false,
                    },
                ],
            }),
            in_function: "f".into(),
            span: Span::unknown(),
        });
        db
    }

    fn jobs(n: usize) -> Vec<BatchJob> {
        (0..n)
            .map(|i| BatchJob {
                system: if i % 5 == 0 { "S2" } else { "S" }.into(),
                file: format!("conf_{i}"),
                // Every third file is corrupt.
                text: if i % 3 == 0 {
                    "threads = 999\n".to_string()
                } else {
                    "threads = 8\n".to_string()
                },
            })
            .collect()
    }

    fn engine(threads: usize) -> BatchEngine {
        let mut e = BatchEngine::new().with_threads(threads);
        e.add_db(db("S"));
        e.add_db(db("S2"));
        e
    }

    #[test]
    fn output_order_is_deterministic_across_thread_counts() {
        let js = jobs(37);
        let (seq, seq_stats) = engine(1).run(&js);
        let (par, par_stats) = engine(8).run(&js);
        assert_eq!(seq, par);
        assert_eq!(seq_stats, par_stats);
        assert_eq!(seq.len(), 37);
        assert!(seq
            .iter()
            .map(|r| r.file.as_str())
            .eq(js.iter().map(|j| j.file.as_str())));
    }

    #[test]
    fn multi_system_jobs_route_to_their_own_database() {
        let js = jobs(30);
        let (reports, stats) = engine(4).run(&js);
        assert_eq!(stats.files, 30);
        assert_eq!(stats.flagged_files, 10);
        assert_eq!(stats.clean_files, 20);
        assert_eq!(stats.errors, 10);
        assert_eq!(stats.by_category.get("data-range"), Some(&10));
        assert_eq!(stats.by_code.get("SPEX-R003"), Some(&10));
        assert!(stats.render().contains("30 file(s)"));
        assert!(reports.iter().any(|r| r.system == "S2"));
        assert_eq!(stats.unknown_system_files, 0);
    }

    #[test]
    fn unknown_systems_are_counted_not_crashed() {
        let js = vec![BatchJob {
            system: "NoSuch".into(),
            file: "x".into(),
            text: "a = 1\n".into(),
        }];
        let (reports, stats) = engine(2).run(&js);
        assert!(reports[0].unknown_system);
        assert!(
            reports[0].has_errors(),
            "an unvalidated file must gate deploys"
        );
        assert!(!reports[0].is_clean());
        assert_eq!(stats.unknown_system_files, 1);
        assert_eq!(stats.flagged_files, 0);
    }

    #[test]
    fn empty_batch_is_fine() {
        let (reports, stats) = engine(4).run(&[]);
        assert!(reports.is_empty());
        assert_eq!(stats.files, 0);
    }

    #[test]
    fn run_paths_delegates_to_the_borrowed_session() {
        let root = std::env::temp_dir().join("spex_batch_delegate");
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        std::fs::write(root.join("a.conf"), "threads = 8\n").unwrap();
        std::fs::write(root.join("z.conf"), "threads = 999\n").unwrap();
        let (reports, stats) = engine(2)
            .run_paths("S", std::slice::from_ref(&root))
            .unwrap();
        assert_eq!(stats.files, 2);
        assert_eq!(stats.flagged_files, 1);
        assert!(reports[0].file.ends_with("a.conf"));
        // An unregistered system degrades every file to unknown-system.
        let (reports, stats) = engine(2)
            .run_paths("NoSuch", std::slice::from_ref(&root))
            .unwrap();
        assert_eq!(stats.unknown_system_files, 2);
        assert!(reports.iter().all(|r| r.unknown_system));
        std::fs::remove_dir_all(&root).ok();
    }

    /// Even without a database, a file that could not have been read is
    /// reported unreadable (with its I/O message), not unknown-system —
    /// the pre-0.3 classification.
    #[cfg(unix)]
    #[test]
    fn run_paths_unknown_system_still_reports_unreadable_files() {
        let root = std::env::temp_dir().join("spex_batch_nosys_fifo");
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        std::fs::write(root.join("a.conf"), "threads = 8\n").unwrap();
        let status = std::process::Command::new("mkfifo")
            .arg(root.join("ctl"))
            .status()
            .expect("mkfifo runs");
        assert!(status.success());
        let (reports, stats) = engine(1)
            .run_paths("NoSuch", std::slice::from_ref(&root))
            .unwrap();
        assert_eq!(stats.files, 2);
        assert_eq!(stats.unknown_system_files, 1);
        assert_eq!(stats.unreadable_files, 1);
        let fifo = reports.iter().find(|r| r.file.ends_with("ctl")).unwrap();
        assert_eq!(fifo.read_error.as_deref(), Some("not a regular file"));
        assert!(!fifo.unknown_system);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn run_paths_shared_env_reaches_sessions() {
        use spex_core::constraint::SemType;
        let root = std::env::temp_dir().join("spex_batch_env");
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        std::fs::write(root.join("a.conf"), "pidfile = /no/such/file\n").unwrap();
        let mut db = db("S");
        db.add(Constraint {
            param: "pidfile".into(),
            kind: ConstraintKind::SemanticType(SemType::FilePath),
            in_function: "f".into(),
            span: Span::unknown(),
        });
        let mut e = BatchEngine::new().with_threads(2);
        e.add_db(db);
        e.add_shared_env("S", std::sync::Arc::new(crate::FsEnv::new()));
        let (reports, stats) = e.run_paths("S", std::slice::from_ref(&root)).unwrap();
        assert_eq!(stats.flagged_files, 1);
        assert!(reports[0]
            .diagnostics
            .iter()
            .any(|d| d.message.contains("does not exist")));
        std::fs::remove_dir_all(&root).ok();
    }
}
