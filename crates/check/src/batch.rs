//! The batch validation engine: many config files, many systems, all
//! cores.
//!
//! Fleet-scale validation is embarrassingly parallel — every file is
//! independent — so the engine fans jobs out over scoped threads with a
//! shared atomic cursor and writes results back by job index, keeping the
//! output order deterministic regardless of scheduling.
//!
//! Two front-ends share the pool:
//!
//! * [`BatchEngine::run`] — in-memory jobs, for callers that already hold
//!   the texts;
//! * [`BatchEngine::run_paths`] — a streaming walk over files and
//!   directory trees: each worker reads one file, checks it, and drops the
//!   text before taking the next, so peak memory is bounded by the worker
//!   count (plus one small report per file) rather than the corpus size.

use crate::checker::{Checker, Environment, StaticEnv};
use crate::db::ConstraintDb;
use crate::diag::{Diagnostic, Severity};
use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// One file to validate.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// Which system's constraint database applies.
    pub system: String,
    /// A label for the file (path, host name, tenant id, ...).
    pub file: String,
    /// The raw config-file text.
    pub text: String,
}

/// Validation result for one job, in job order.
#[derive(Debug, Clone, PartialEq)]
pub struct FileReport {
    /// The job's system.
    pub system: String,
    /// The job's file label.
    pub file: String,
    /// Diagnostics in file order; empty means the file is clean.
    pub diagnostics: Vec<Diagnostic>,
    /// Set when the job named a system the engine has no database for.
    pub unknown_system: bool,
    /// Set when a streaming run could not read the file (the job is
    /// counted, not dropped, so report order still mirrors the walk).
    pub read_error: Option<String>,
}

impl FileReport {
    /// Whether the file passed with no findings at all.
    pub fn is_clean(&self) -> bool {
        !self.unknown_system && self.read_error.is_none() && self.diagnostics.is_empty()
    }

    /// Whether the file must block a deployment: any error-severity
    /// finding, or a file that was never actually validated (unreadable,
    /// or no database registered for its system).
    pub fn has_errors(&self) -> bool {
        self.unknown_system
            || self.read_error.is_some()
            || self
                .diagnostics
                .iter()
                .any(|d| d.severity == Severity::Error)
    }
}

/// Aggregate statistics over one batch run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchStats {
    /// Total files validated.
    pub files: usize,
    /// Files with no findings.
    pub clean_files: usize,
    /// Files with at least one finding.
    pub flagged_files: usize,
    /// Jobs naming a system without a database.
    pub unknown_system_files: usize,
    /// Files a streaming run failed to read.
    pub unreadable_files: usize,
    /// Total error-severity diagnostics.
    pub errors: usize,
    /// Total warning-severity diagnostics.
    pub warnings: usize,
    /// Diagnostics per violated-constraint category.
    pub by_category: BTreeMap<&'static str, usize>,
}

impl BatchStats {
    /// Renders a one-screen summary table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "checked {} file(s): {} clean, {} flagged ({} error(s), {} warning(s))\n",
            self.files, self.clean_files, self.flagged_files, self.errors, self.warnings,
        );
        for (cat, n) in &self.by_category {
            out.push_str(&format!("  {cat:<14} {n}\n"));
        }
        if self.unknown_system_files > 0 {
            out.push_str(&format!(
                "  (skipped {} file(s) with no constraint database)\n",
                self.unknown_system_files
            ));
        }
        if self.unreadable_files > 0 {
            out.push_str(&format!(
                "  ({} file(s) could not be read)\n",
                self.unreadable_files
            ));
        }
        out
    }
}

/// The multi-system batch engine.
pub struct BatchEngine {
    dbs: HashMap<String, ConstraintDb>,
    envs: HashMap<String, Arc<dyn Environment + Send + Sync>>,
    threads: usize,
}

impl Default for BatchEngine {
    fn default() -> Self {
        BatchEngine::new()
    }
}

impl BatchEngine {
    /// An engine with no databases, sized to the machine.
    pub fn new() -> BatchEngine {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        BatchEngine {
            dbs: HashMap::new(),
            envs: HashMap::new(),
            threads,
        }
    }

    /// Overrides the worker-thread count (clamped to at least 1).
    pub fn with_threads(mut self, threads: usize) -> BatchEngine {
        self.threads = threads.max(1);
        self
    }

    /// Registers a system's constraint database (keyed by its `system`).
    pub fn add_db(&mut self, db: ConstraintDb) -> &mut Self {
        self.dbs.insert(db.system.clone(), db);
        self
    }

    /// Registers a declarative environment model for one system's checks.
    pub fn add_env(&mut self, system: &str, env: StaticEnv) -> &mut Self {
        self.add_shared_env(system, Arc::new(env))
    }

    /// Registers any shared [`Environment`] (e.g. [`crate::FsEnv`]) for
    /// one system's checks.
    pub fn add_shared_env(
        &mut self,
        system: &str,
        env: Arc<dyn Environment + Send + Sync>,
    ) -> &mut Self {
        self.envs.insert(system.to_string(), env);
        self
    }

    /// Registered system names, sorted.
    pub fn systems(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.dbs.keys().map(|s| s.as_str()).collect();
        names.sort_unstable();
        names
    }

    fn check_one(&self, job: &BatchJob) -> FileReport {
        self.check_text(&job.system, &job.file, &job.text)
    }

    fn check_text(&self, system: &str, file: &str, text: &str) -> FileReport {
        match self.dbs.get(system) {
            None => FileReport {
                system: system.to_string(),
                file: file.to_string(),
                diagnostics: Vec::new(),
                unknown_system: true,
                read_error: None,
            },
            Some(db) => {
                let mut checker = Checker::new(db);
                if let Some(env) = self.envs.get(system) {
                    checker = checker.with_env(env.as_ref());
                }
                FileReport {
                    system: system.to_string(),
                    file: file.to_string(),
                    diagnostics: checker.check_text(text),
                    unknown_system: false,
                    read_error: None,
                }
            }
        }
    }

    /// The scoped worker pool: produces `n` reports with `make`, sharing
    /// an atomic cursor and writing results back by index so output order
    /// is deterministic regardless of scheduling.
    fn run_indexed<F>(&self, n: usize, make: F) -> Vec<FileReport>
    where
        F: Fn(usize) -> FileReport + Sync,
    {
        let workers = self.threads.min(n.max(1));
        if workers <= 1 {
            return (0..n).map(make).collect();
        }
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<FileReport>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let report = make(i);
                    *slots[i].lock().unwrap() = Some(report);
                });
            }
        });
        slots
            .into_iter()
            .map(|s| s.into_inner().unwrap().expect("worker filled every slot"))
            .collect()
    }

    fn tally(reports: &[FileReport]) -> BatchStats {
        let mut stats = BatchStats {
            files: reports.len(),
            ..BatchStats::default()
        };
        for r in reports {
            if r.unknown_system {
                stats.unknown_system_files += 1;
                continue;
            }
            if r.read_error.is_some() {
                stats.unreadable_files += 1;
                continue;
            }
            if r.diagnostics.is_empty() {
                stats.clean_files += 1;
            } else {
                stats.flagged_files += 1;
            }
            for d in &r.diagnostics {
                match d.severity {
                    Severity::Error => stats.errors += 1,
                    Severity::Warning => stats.warnings += 1,
                }
                *stats.by_category.entry(d.category).or_insert(0) += 1;
            }
        }
        stats
    }

    /// Validates every job, returning per-file reports in job order plus
    /// aggregate statistics.
    pub fn run(&self, jobs: &[BatchJob]) -> (Vec<FileReport>, BatchStats) {
        let reports = self.run_indexed(jobs.len(), |i| self.check_one(&jobs[i]));
        let stats = Self::tally(&reports);
        (reports, stats)
    }

    /// Streaming batch validation: walks `roots` (files, or directories
    /// descended in sorted order), then validates every discovered file
    /// against `system`'s database on the worker pool. Each worker reads
    /// one file at a time and drops the text once checked, so memory stays
    /// bounded by the thread count no matter how large the corpus is.
    /// Reports come back in walk order; a file that disappears or cannot
    /// be read mid-run yields a report with
    /// [`read_error`](FileReport::read_error) set rather than aborting the
    /// batch. Only nonexistent roots are a hard error.
    pub fn run_paths<P: AsRef<Path>>(
        &self,
        system: &str,
        roots: &[P],
    ) -> std::io::Result<(Vec<FileReport>, BatchStats)> {
        let mut files: Vec<WalkEntry> = Vec::new();
        // One visited set across all roots: overlapping roots (or a root
        // symlinked into another) descend each physical directory once.
        let mut visited = std::collections::BTreeSet::new();
        for root in roots {
            walk_sorted(root.as_ref(), &mut files, &mut visited)?;
        }
        let reports = self.run_indexed(files.len(), |i| {
            let entry = &files[i];
            let label = entry.path.display().to_string();
            let unreadable = |message: String| FileReport {
                system: system.to_string(),
                file: label.clone(),
                diagnostics: Vec::new(),
                unknown_system: false,
                read_error: Some(message),
            };
            if let Some(e) = &entry.walk_error {
                return unreadable(e.clone());
            }
            // Refuse non-regular files *before* opening them: reading a
            // FIFO with no writer blocks forever, and a device file can
            // yield unbounded garbage.
            match std::fs::metadata(&entry.path) {
                Ok(m) if !m.is_file() => {
                    return unreadable("not a regular file".to_string());
                }
                _ => {}
            }
            match std::fs::read_to_string(&entry.path) {
                Ok(text) => self.check_text(system, &label, &text),
                Err(e) => unreadable(e.to_string()),
            }
        });
        let stats = Self::tally(&reports);
        Ok((reports, stats))
    }
}

/// One discovered path: a candidate file, or a location the walk could
/// not descend (reported as unreadable rather than aborting the batch).
struct WalkEntry {
    path: PathBuf,
    walk_error: Option<String>,
}

impl WalkEntry {
    fn file(path: PathBuf) -> WalkEntry {
        WalkEntry {
            path,
            walk_error: None,
        }
    }
}

/// Depth-first walk collecting regular files, visiting directory entries
/// in sorted name order so the job list — and therefore the report order —
/// is deterministic across platforms and runs. Directory symlinks are
/// followed, but each physical directory in `visited` is descended at most
/// once, so a symlink cycle (`ln -s . loop`) terminates instead of
/// recursing forever. Explicit *file* roots are always pushed, even when a
/// directory root also reaches them. Only a root whose metadata cannot be
/// read at all (typically: it does not exist) is a hard error; everything
/// below a root degrades to a per-path unreadable report.
fn walk_sorted(
    root: &Path,
    out: &mut Vec<WalkEntry>,
    visited: &mut std::collections::BTreeSet<PathBuf>,
) -> std::io::Result<()> {
    let meta = std::fs::metadata(root)?;
    if meta.is_file() {
        out.push(WalkEntry::file(root.to_path_buf()));
        return Ok(());
    }
    if !meta.is_dir() {
        // A FIFO/socket/device root: report it, don't try to list it.
        out.push(WalkEntry::file(root.to_path_buf()));
        return Ok(());
    }
    if let Ok(canon) = std::fs::canonicalize(root) {
        if !visited.insert(canon) {
            return Ok(());
        }
    }
    let listing = std::fs::read_dir(root).and_then(|rd| {
        rd.map(|e| e.map(|e| e.path()))
            .collect::<std::io::Result<Vec<PathBuf>>>()
    });
    let mut entries = match listing {
        Ok(entries) => entries,
        // An unreadable (e.g. permission-denied) directory inside the
        // tree is one bad location, not a batch abort.
        Err(e) => {
            out.push(WalkEntry {
                path: root.to_path_buf(),
                walk_error: Some(e.to_string()),
            });
            return Ok(());
        }
    };
    entries.sort_unstable();
    for entry in entries {
        // A file deleted between listing and stat is the streaming racer's
        // problem, not a batch abort: record it as unreadable.
        match std::fs::metadata(&entry) {
            Ok(m) if m.is_dir() => {
                // The recursive call's only hard-error path is a re-stat
                // race on this entry; degrade it like everything else.
                if let Err(e) = walk_sorted(&entry, out, visited) {
                    out.push(WalkEntry {
                        path: entry,
                        walk_error: Some(e.to_string()),
                    });
                }
            }
            _ => out.push(WalkEntry::file(entry)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spex_conf::Dialect;
    use spex_core::constraint::{
        BasicType, Constraint, ConstraintKind, NumericRange, RangeSegment,
    };
    use spex_lang::diag::Span;

    fn db(system: &str) -> ConstraintDb {
        let mut db = ConstraintDb::new(system, Dialect::KeyValue);
        db.add(Constraint {
            param: "threads".into(),
            kind: ConstraintKind::BasicType(BasicType::Int {
                bits: 32,
                signed: true,
            }),
            in_function: "f".into(),
            span: Span::unknown(),
        });
        db.add(Constraint {
            param: "threads".into(),
            kind: ConstraintKind::Range(NumericRange {
                cutpoints: vec![1, 16],
                segments: vec![
                    RangeSegment {
                        lo: None,
                        hi: Some(0),
                        valid: false,
                    },
                    RangeSegment {
                        lo: Some(1),
                        hi: Some(16),
                        valid: true,
                    },
                    RangeSegment {
                        lo: Some(17),
                        hi: None,
                        valid: false,
                    },
                ],
            }),
            in_function: "f".into(),
            span: Span::unknown(),
        });
        db
    }

    fn jobs(n: usize) -> Vec<BatchJob> {
        (0..n)
            .map(|i| BatchJob {
                system: "S".into(),
                file: format!("conf_{i}"),
                // Every third file is corrupt.
                text: if i % 3 == 0 {
                    "threads = 999\n".to_string()
                } else {
                    "threads = 8\n".to_string()
                },
            })
            .collect()
    }

    fn engine(threads: usize) -> BatchEngine {
        let mut e = BatchEngine::new().with_threads(threads);
        e.add_db(db("S"));
        e
    }

    #[test]
    fn output_order_is_deterministic_across_thread_counts() {
        let js = jobs(37);
        let (seq, seq_stats) = engine(1).run(&js);
        let (par, par_stats) = engine(8).run(&js);
        assert_eq!(seq, par);
        assert_eq!(seq_stats, par_stats);
        assert_eq!(seq.len(), 37);
        assert!(seq
            .iter()
            .map(|r| r.file.as_str())
            .eq(js.iter().map(|j| j.file.as_str())));
    }

    #[test]
    fn stats_partition_clean_and_flagged() {
        let js = jobs(30);
        let (_, stats) = engine(4).run(&js);
        assert_eq!(stats.files, 30);
        assert_eq!(stats.flagged_files, 10);
        assert_eq!(stats.clean_files, 20);
        assert_eq!(stats.errors, 10);
        assert_eq!(stats.by_category.get("data-range"), Some(&10));
        assert!(stats.render().contains("30 file(s)"));
    }

    #[test]
    fn unknown_systems_are_counted_not_crashed() {
        let js = vec![BatchJob {
            system: "NoSuch".into(),
            file: "x".into(),
            text: "a = 1\n".into(),
        }];
        let (reports, stats) = engine(2).run(&js);
        assert!(reports[0].unknown_system);
        assert!(
            reports[0].has_errors(),
            "an unvalidated file must gate deploys"
        );
        assert!(!reports[0].is_clean());
        assert_eq!(stats.unknown_system_files, 1);
        assert_eq!(stats.flagged_files, 0);
    }

    #[test]
    fn empty_batch_is_fine() {
        let (reports, stats) = engine(4).run(&[]);
        assert!(reports.is_empty());
        assert_eq!(stats.files, 0);
    }

    /// Builds a small on-disk corpus: root/{a.conf,z.conf,sub/{b.conf,c.conf}}.
    fn corpus(tag: &str) -> std::path::PathBuf {
        let root = std::env::temp_dir().join(format!("spex_batch_paths_{tag}"));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("sub")).unwrap();
        std::fs::write(root.join("a.conf"), "threads = 8\n").unwrap();
        std::fs::write(root.join("z.conf"), "threads = 999\n").unwrap();
        std::fs::write(root.join("sub/b.conf"), "threads = 1\n").unwrap();
        std::fs::write(root.join("sub/c.conf"), "threads = -3\n").unwrap();
        root
    }

    #[test]
    fn run_paths_walks_deterministically_and_flags() {
        let root = corpus("walk");
        let (reports, stats) = engine(4)
            .run_paths("S", std::slice::from_ref(&root))
            .unwrap();
        let files: Vec<String> = reports
            .iter()
            .map(|r| {
                std::path::Path::new(&r.file)
                    .strip_prefix(&root)
                    .unwrap()
                    .display()
                    .to_string()
            })
            .collect();
        assert_eq!(files, vec!["a.conf", "sub/b.conf", "sub/c.conf", "z.conf"]);
        assert_eq!(stats.files, 4);
        assert_eq!(stats.clean_files, 2);
        assert_eq!(stats.flagged_files, 2);
        // Same order and findings regardless of worker count.
        let (seq, seq_stats) = engine(1)
            .run_paths("S", std::slice::from_ref(&root))
            .unwrap();
        assert_eq!(seq, reports);
        assert_eq!(seq_stats, stats);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn run_paths_accepts_explicit_files_in_argument_order() {
        let root = corpus("explicit");
        let (reports, _) = engine(2)
            .run_paths("S", &[root.join("z.conf"), root.join("a.conf")])
            .unwrap();
        assert!(reports[0].file.ends_with("z.conf"));
        assert!(reports[1].file.ends_with("a.conf"));
        std::fs::remove_dir_all(&root).ok();
    }

    #[cfg(unix)]
    #[test]
    fn run_paths_survives_symlink_cycles() {
        let root = corpus("symlink");
        std::os::unix::fs::symlink(&root, root.join("sub/loop")).unwrap();
        let (reports, stats) = engine(2)
            .run_paths("S", std::slice::from_ref(&root))
            .unwrap();
        // The four real files are each seen exactly once (the cycle target
        // is the already-visited root, so the link adds nothing).
        assert_eq!(stats.files, 4);
        assert_eq!(
            reports
                .iter()
                .filter(|r| r.file.ends_with("a.conf"))
                .count(),
            1
        );
        std::fs::remove_dir_all(&root).ok();
    }

    #[cfg(unix)]
    #[test]
    fn run_paths_skips_non_regular_files_without_blocking() {
        let root = corpus("fifo");
        let status = std::process::Command::new("mkfifo")
            .arg(root.join("sub/ctl"))
            .status()
            .expect("mkfifo runs");
        assert!(status.success());
        // Reading a writer-less FIFO would block forever; the run must
        // complete and report it unreadable instead.
        let (reports, stats) = engine(2)
            .run_paths("S", std::slice::from_ref(&root))
            .unwrap();
        assert_eq!(stats.files, 5);
        assert_eq!(stats.unreadable_files, 1);
        let fifo = reports.iter().find(|r| r.file.ends_with("ctl")).unwrap();
        assert_eq!(fifo.read_error.as_deref(), Some("not a regular file"));
        assert!(fifo.has_errors(), "an unvalidated file must gate deploys");
        assert!(!fifo.is_clean());
        std::fs::remove_dir_all(&root).ok();
    }

    #[cfg(unix)]
    #[test]
    fn run_paths_non_directory_root_reports_instead_of_aborting() {
        let root = corpus("fiforoot");
        let fifo = root.join("ctl");
        let status = std::process::Command::new("mkfifo")
            .arg(&fifo)
            .status()
            .expect("mkfifo runs");
        assert!(status.success());
        // A FIFO given directly as a root: per the contract, only
        // nonexistent roots hard-error; this degrades to a report.
        let (reports, stats) = engine(1)
            .run_paths("S", std::slice::from_ref(&fifo))
            .unwrap();
        assert_eq!(stats.files, 1);
        assert_eq!(stats.unreadable_files, 1);
        assert_eq!(reports[0].read_error.as_deref(), Some("not a regular file"));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn run_paths_overlapping_directory_roots_walk_once() {
        let root = corpus("overlap");
        let (reports, stats) = engine(2)
            .run_paths("S", &[root.clone(), root.join("sub")])
            .unwrap();
        // The second root is inside the first: its directory was already
        // descended, so nothing is double-counted.
        assert_eq!(stats.files, 4);
        assert_eq!(
            reports
                .iter()
                .filter(|r| r.file.ends_with("b.conf"))
                .count(),
            1
        );
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn run_paths_missing_root_is_an_error() {
        let err = engine(2)
            .run_paths("S", &[std::path::Path::new("/no/such/spex/dir")])
            .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    }

    #[test]
    fn run_paths_shared_env_reaches_checkers() {
        use spex_core::constraint::SemType;
        let root = corpus("env");
        std::fs::write(root.join("a.conf"), "pidfile = /no/such/file\n").unwrap();
        std::fs::remove_file(root.join("z.conf")).unwrap();
        std::fs::remove_dir_all(root.join("sub")).unwrap();
        let mut db = db("S");
        db.add(Constraint {
            param: "pidfile".into(),
            kind: ConstraintKind::SemanticType(SemType::FilePath),
            in_function: "f".into(),
            span: Span::unknown(),
        });
        let mut e = BatchEngine::new().with_threads(2);
        e.add_db(db);
        e.add_shared_env("S", std::sync::Arc::new(crate::FsEnv::new()));
        let (reports, stats) = e.run_paths("S", std::slice::from_ref(&root)).unwrap();
        assert_eq!(stats.flagged_files, 1);
        assert!(reports[0]
            .diagnostics
            .iter()
            .any(|d| d.message.contains("does not exist")));
        std::fs::remove_dir_all(&root).ok();
    }
}
