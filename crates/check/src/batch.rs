//! The batch validation engine: many config files, many systems, all
//! cores.
//!
//! Fleet-scale validation is embarrassingly parallel — every file is
//! independent — so the engine fans jobs out over scoped threads with a
//! shared atomic cursor and writes results back by job index, keeping the
//! output order deterministic regardless of scheduling.

use crate::checker::{Checker, StaticEnv};
use crate::db::ConstraintDb;
use crate::diag::{Diagnostic, Severity};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One file to validate.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// Which system's constraint database applies.
    pub system: String,
    /// A label for the file (path, host name, tenant id, ...).
    pub file: String,
    /// The raw config-file text.
    pub text: String,
}

/// Validation result for one job, in job order.
#[derive(Debug, Clone, PartialEq)]
pub struct FileReport {
    /// The job's system.
    pub system: String,
    /// The job's file label.
    pub file: String,
    /// Diagnostics in file order; empty means the file is clean.
    pub diagnostics: Vec<Diagnostic>,
    /// Set when the job named a system the engine has no database for.
    pub unknown_system: bool,
}

impl FileReport {
    /// Whether the file passed with no findings at all.
    pub fn is_clean(&self) -> bool {
        !self.unknown_system && self.diagnostics.is_empty()
    }

    /// Whether any finding is an error (not just a warning).
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }
}

/// Aggregate statistics over one batch run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchStats {
    /// Total files validated.
    pub files: usize,
    /// Files with no findings.
    pub clean_files: usize,
    /// Files with at least one finding.
    pub flagged_files: usize,
    /// Jobs naming a system without a database.
    pub unknown_system_files: usize,
    /// Total error-severity diagnostics.
    pub errors: usize,
    /// Total warning-severity diagnostics.
    pub warnings: usize,
    /// Diagnostics per violated-constraint category.
    pub by_category: BTreeMap<&'static str, usize>,
}

impl BatchStats {
    /// Renders a one-screen summary table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "checked {} file(s): {} clean, {} flagged ({} error(s), {} warning(s))\n",
            self.files, self.clean_files, self.flagged_files, self.errors, self.warnings,
        );
        for (cat, n) in &self.by_category {
            out.push_str(&format!("  {cat:<14} {n}\n"));
        }
        if self.unknown_system_files > 0 {
            out.push_str(&format!(
                "  (skipped {} file(s) with no constraint database)\n",
                self.unknown_system_files
            ));
        }
        out
    }
}

/// The multi-system batch engine.
pub struct BatchEngine {
    dbs: HashMap<String, ConstraintDb>,
    envs: HashMap<String, StaticEnv>,
    threads: usize,
}

impl Default for BatchEngine {
    fn default() -> Self {
        BatchEngine::new()
    }
}

impl BatchEngine {
    /// An engine with no databases, sized to the machine.
    pub fn new() -> BatchEngine {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        BatchEngine {
            dbs: HashMap::new(),
            envs: HashMap::new(),
            threads,
        }
    }

    /// Overrides the worker-thread count (clamped to at least 1).
    pub fn with_threads(mut self, threads: usize) -> BatchEngine {
        self.threads = threads.max(1);
        self
    }

    /// Registers a system's constraint database (keyed by its `system`).
    pub fn add_db(&mut self, db: ConstraintDb) -> &mut Self {
        self.dbs.insert(db.system.clone(), db);
        self
    }

    /// Registers an environment model for one system's checks.
    pub fn add_env(&mut self, system: &str, env: StaticEnv) -> &mut Self {
        self.envs.insert(system.to_string(), env);
        self
    }

    /// Registered system names, sorted.
    pub fn systems(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.dbs.keys().map(|s| s.as_str()).collect();
        names.sort_unstable();
        names
    }

    fn check_one(&self, job: &BatchJob) -> FileReport {
        match self.dbs.get(&job.system) {
            None => FileReport {
                system: job.system.clone(),
                file: job.file.clone(),
                diagnostics: Vec::new(),
                unknown_system: true,
            },
            Some(db) => {
                let mut checker = Checker::new(db);
                if let Some(env) = self.envs.get(&job.system) {
                    checker = checker.with_env(env);
                }
                FileReport {
                    system: job.system.clone(),
                    file: job.file.clone(),
                    diagnostics: checker.check_text(&job.text),
                    unknown_system: false,
                }
            }
        }
    }

    /// Validates every job, returning per-file reports in job order plus
    /// aggregate statistics.
    pub fn run(&self, jobs: &[BatchJob]) -> (Vec<FileReport>, BatchStats) {
        let workers = self.threads.min(jobs.len().max(1));
        let reports: Vec<FileReport> = if workers <= 1 {
            jobs.iter().map(|j| self.check_one(j)).collect()
        } else {
            let cursor = AtomicUsize::new(0);
            let slots: Vec<Mutex<Option<FileReport>>> =
                jobs.iter().map(|_| Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        let report = self.check_one(&jobs[i]);
                        *slots[i].lock().unwrap() = Some(report);
                    });
                }
            });
            slots
                .into_iter()
                .map(|s| s.into_inner().unwrap().expect("worker filled every slot"))
                .collect()
        };

        let mut stats = BatchStats {
            files: reports.len(),
            ..BatchStats::default()
        };
        for r in &reports {
            if r.unknown_system {
                stats.unknown_system_files += 1;
                continue;
            }
            if r.diagnostics.is_empty() {
                stats.clean_files += 1;
            } else {
                stats.flagged_files += 1;
            }
            for d in &r.diagnostics {
                match d.severity {
                    Severity::Error => stats.errors += 1,
                    Severity::Warning => stats.warnings += 1,
                }
                *stats.by_category.entry(d.category).or_insert(0) += 1;
            }
        }
        (reports, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spex_conf::Dialect;
    use spex_core::constraint::{
        BasicType, Constraint, ConstraintKind, NumericRange, RangeSegment,
    };
    use spex_lang::diag::Span;

    fn db(system: &str) -> ConstraintDb {
        let mut db = ConstraintDb::new(system, Dialect::KeyValue);
        db.add(Constraint {
            param: "threads".into(),
            kind: ConstraintKind::BasicType(BasicType::Int {
                bits: 32,
                signed: true,
            }),
            in_function: "f".into(),
            span: Span::unknown(),
        });
        db.add(Constraint {
            param: "threads".into(),
            kind: ConstraintKind::Range(NumericRange {
                cutpoints: vec![1, 16],
                segments: vec![
                    RangeSegment {
                        lo: None,
                        hi: Some(0),
                        valid: false,
                    },
                    RangeSegment {
                        lo: Some(1),
                        hi: Some(16),
                        valid: true,
                    },
                    RangeSegment {
                        lo: Some(17),
                        hi: None,
                        valid: false,
                    },
                ],
            }),
            in_function: "f".into(),
            span: Span::unknown(),
        });
        db
    }

    fn jobs(n: usize) -> Vec<BatchJob> {
        (0..n)
            .map(|i| BatchJob {
                system: "S".into(),
                file: format!("conf_{i}"),
                // Every third file is corrupt.
                text: if i % 3 == 0 {
                    "threads = 999\n".to_string()
                } else {
                    "threads = 8\n".to_string()
                },
            })
            .collect()
    }

    fn engine(threads: usize) -> BatchEngine {
        let mut e = BatchEngine::new().with_threads(threads);
        e.add_db(db("S"));
        e
    }

    #[test]
    fn output_order_is_deterministic_across_thread_counts() {
        let js = jobs(37);
        let (seq, seq_stats) = engine(1).run(&js);
        let (par, par_stats) = engine(8).run(&js);
        assert_eq!(seq, par);
        assert_eq!(seq_stats, par_stats);
        assert_eq!(seq.len(), 37);
        assert!(seq
            .iter()
            .map(|r| r.file.as_str())
            .eq(js.iter().map(|j| j.file.as_str())));
    }

    #[test]
    fn stats_partition_clean_and_flagged() {
        let js = jobs(30);
        let (_, stats) = engine(4).run(&js);
        assert_eq!(stats.files, 30);
        assert_eq!(stats.flagged_files, 10);
        assert_eq!(stats.clean_files, 20);
        assert_eq!(stats.errors, 10);
        assert_eq!(stats.by_category.get("data-range"), Some(&10));
        assert!(stats.render().contains("30 file(s)"));
    }

    #[test]
    fn unknown_systems_are_counted_not_crashed() {
        let js = vec![BatchJob {
            system: "NoSuch".into(),
            file: "x".into(),
            text: "a = 1\n".into(),
        }];
        let (reports, stats) = engine(2).run(&js);
        assert!(reports[0].unknown_system);
        assert_eq!(stats.unknown_system_files, 1);
        assert_eq!(stats.flagged_files, 0);
    }

    #[test]
    fn empty_batch_is_fine() {
        let (reports, stats) = engine(4).run(&[]);
        assert!(reports.is_empty());
        assert_eq!(stats.files, 0);
    }
}
