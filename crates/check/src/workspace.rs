//! The incremental workspace: a long-lived session over sources,
//! annotations and a persisted constraint database.
//!
//! The paper's thesis — the *system*, not the user, should catch
//! misconfigurations — only holds in practice if constraint inference and
//! checking are cheap enough to run on every change. The one-shot
//! `Spex::analyze` facade re-walks the whole program per run; a
//! [`Workspace`] instead keeps state between runs:
//!
//! * each module's functions are **fingerprinted** over their lowered IR,
//!   so [`Workspace::update_module`] knows exactly which bodies changed
//!   (whitespace and comment edits dirty nothing);
//! * [`Workspace::reanalyze`] re-runs the five inference passes only for
//!   parameters whose data flow touches a dirty function, and merges the
//!   fresh constraints into the owned [`ConstraintDb`] by provenance —
//!   work is proportional to the change, and the result is identical to a
//!   full re-analysis;
//! * [`Workspace::session`] hands out a borrowed [`CheckSession`] over
//!   the owned database — the parameter index behind it is cached and
//!   invalidated only when `reanalyze`/`merge_db` actually change the
//!   database, so checking never copies a constraint;
//! * [`Workspace::check_paths`] streams whole config trees through the
//!   worker pool with bounded memory, so the persisted constraints vet
//!   every deployment the moment it is staged.
//!
//! # Example
//!
//! ```
//! use spex_check::Workspace;
//! use spex_conf::Dialect;
//!
//! let mut ws = Workspace::new("demo", Dialect::KeyValue);
//! ws.add_module(
//!     "main.c",
//!     r#"
//!     int threads = 4;
//!     struct opt { char* name; int* var; };
//!     struct opt options[] = { { "threads", &threads } };
//!     void startup() { if (threads > 16) { exit(1); } }
//!     "#,
//!     "{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }",
//! )
//! .unwrap();
//! let report = ws.reanalyze();
//! assert_eq!(report.params_reinferred, 1);
//! assert!(!ws.check_text("threads = 64\n").is_empty());
//!
//! // Editing nothing re-infers nothing.
//! assert_eq!(ws.reanalyze().params_reinferred, 0);
//! ```

use crate::db::{ConstraintDb, MergeError, MergeReport};
use crate::diag::{Diagnostic, Severity};
use crate::env::{Environment, FsEnv, StaticEnv};
use crate::report::{FileReport, Report};
use crate::session::{CheckSession, ParamIndex};
use spex_conf::{ConfFile, Dialect};
use spex_core::apispec::ApiSpec;
use spex_core::fingerprint::{
    diff_fingerprints, function_fingerprints, header_fingerprint, FingerprintDiff,
};
use spex_core::infer::{InferScope, PassCache, PassCounts, Spex, SpexAnalysis};
use spex_core::Annotation;
use spex_ir::Module;
use spex_react::{ReactionClass, ReactionFinding};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// What still needs re-inference in one module.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Dirty {
    /// Fingerprints match the last analysis; the db is current.
    Clean,
    /// Only these functions changed since the last analysis.
    Functions(BTreeSet<String>),
    /// Everything must be re-inferred (new module, header or annotation
    /// change).
    All,
}

impl Dirty {
    fn absorb_functions(&mut self, names: impl IntoIterator<Item = String>) {
        match self {
            Dirty::All => {}
            Dirty::Functions(set) => set.extend(names),
            Dirty::Clean => *self = Dirty::Functions(names.into_iter().collect()),
        }
    }
}

/// One source module owned by the workspace.
struct SourceModule {
    /// The lowered IR (kept so `reanalyze` never re-parses), shared so
    /// analysis never deep-clones it — see [`Workspace::module_clones`].
    module: Arc<Module>,
    /// The pass-level cache: prepared SSA state, mapping extraction and
    /// per-parameter taint slices from the last analysis, keyed by the
    /// function fingerprints so `reanalyze` recomputes only what an edit
    /// could have touched.
    cache: PassCache,
    /// Mapping annotations for this module.
    anns: Vec<Annotation>,
    /// Per-function fingerprints as of the stored `module`.
    fn_fps: BTreeMap<String, u64>,
    /// Fingerprint of globals/structs/enum constants.
    header_fp: u64,
    /// What changed since the last analysis.
    dirty: Dirty,
    /// From the last analysis: each parameter's touched-function names
    /// (used to find parameters whose old slice reached a now-removed
    /// function, and to garbage-collect parameters that un-mapped).
    touched: BTreeMap<String, BTreeSet<String>>,
    /// From the last analysis: direct caller → callee function names.
    /// Scoped re-analysis closes the dirty set over these *old* edges —
    /// an edit that removes a call still dirties the formerly reached
    /// callees (whose inherited guards may have vanished with the call),
    /// while the core closes over the *new* edges symmetrically.
    callees: BTreeMap<String, BTreeSet<String>>,
    /// From the last analysis: each parameter's static reaction verdict.
    /// Stale slices keep their cached finding; only dirty-slice
    /// parameters are re-classified.
    reactions: BTreeMap<String, ReactionFinding>,
}

/// Transitive closure of `names` over a caller → callees edge map.
fn close_over_calls(
    edges: &BTreeMap<String, BTreeSet<String>>,
    names: &BTreeSet<String>,
) -> BTreeSet<String> {
    let mut closed = names.clone();
    let mut work: Vec<String> = closed.iter().cloned().collect();
    while let Some(f) = work.pop() {
        for callee in edges.get(&f).into_iter().flatten() {
            if closed.insert(callee.clone()) {
                work.push(callee.clone());
            }
        }
    }
    closed
}

/// A failure while feeding sources into the workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkspaceError {
    /// The module's source failed to parse or lower.
    Parse {
        /// The offending module.
        module: String,
        /// The front-end's diagnostic.
        message: String,
    },
    /// The module's annotation block failed to parse.
    Annotations {
        /// The offending module.
        module: String,
        /// The annotation parser's complaint.
        message: String,
    },
    /// An operation named a module the workspace does not own.
    UnknownModule(String),
    /// `add_module` reused an existing module name.
    DuplicateModule(String),
}

impl fmt::Display for WorkspaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkspaceError::Parse { module, message } => {
                write!(f, "module {module:?}: {message}")
            }
            WorkspaceError::Annotations { module, message } => {
                write!(f, "module {module:?} annotations: {message}")
            }
            WorkspaceError::UnknownModule(m) => write!(f, "no module named {m:?}"),
            WorkspaceError::DuplicateModule(m) => write!(f, "module {m:?} already added"),
        }
    }
}

impl std::error::Error for WorkspaceError {}

/// What one [`Workspace::reanalyze`] call did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReanalyzeReport {
    /// Modules that had dirty state and were (re-)analyzed.
    pub modules_analyzed: usize,
    /// Parameters seen across analyzed modules (fresh and stale).
    pub params_total: usize,
    /// Parameters whose five inference passes actually re-ran.
    pub params_reinferred: usize,
    /// Constraints inserted into the database.
    pub constraints_added: usize,
    /// Constraints dropped from the database (superseded or orphaned).
    pub constraints_removed: usize,
    /// Inference-pass invocation counts, summed over analyzed modules.
    pub passes: PassCounts,
}

/// An incremental analysis-and-validation session (see the module docs).
///
/// This is the primary entry point of the crate: build one per subject
/// system, feed it sources with [`add_module`](Workspace::add_module),
/// call [`reanalyze`](Workspace::reanalyze) after every change, and vet
/// configuration files against the always-current database with
/// [`check_text`](Workspace::check_text) or
/// [`check_paths`](Workspace::check_paths).
pub struct Workspace {
    system: String,
    dialect: Dialect,
    spec: ApiSpec,
    threads: usize,
    env: Option<Arc<dyn Environment + Send + Sync>>,
    modules: BTreeMap<String, SourceModule>,
    /// Parameter names declared legal without inference (option tables
    /// parsed elsewhere, documentation imports, ...).
    noted: BTreeSet<String>,
    db: ConstraintDb,
    /// Bumped by every database mutation —
    /// [`reanalyze`](Workspace::reanalyze),
    /// [`merge_db`](Workspace::merge_db),
    /// [`note_params`](Workspace::note_params),
    /// [`remove_module`](Workspace::remove_module) — so the session
    /// cache rebuilds when its version falls behind.
    db_version: u64,
    /// The cached parameter index checking sessions are built from
    /// (interior-mutable: `check_*` take `&self`).
    cache: Mutex<SessionCache>,
    /// The telemetry sink, when observability is enabled — see
    /// [`enable_telemetry`](Workspace::enable_telemetry).
    telemetry: Option<Arc<spex_obs::Recorder>>,
}

/// The lazily (re)built state behind [`Workspace::session`].
#[derive(Default)]
struct SessionCache {
    /// `db_version` the index was built against.
    version: u64,
    /// The owned name index, shared into each borrowed session.
    index: Option<Arc<ParamIndex>>,
    /// How many times the index was (re)built — the cache-effectiveness
    /// counter regression tests assert on.
    rebuilds: usize,
}

impl Workspace {
    /// An empty workspace for one system.
    pub fn new(system: impl Into<String>, dialect: Dialect) -> Workspace {
        let system = system.into();
        Workspace {
            db: ConstraintDb::new(system.clone(), dialect),
            system,
            dialect,
            spec: ApiSpec::standard(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            env: None,
            modules: BTreeMap::new(),
            noted: BTreeSet::new(),
            db_version: 0,
            cache: Mutex::new(SessionCache::default()),
            telemetry: None,
        }
    }

    /// A workspace seeded from a persisted database (`v1` databases are
    /// migrated on load, so this is also the upgrade path). Constraints
    /// already in the database survive until a module claiming their
    /// provenance is re-analyzed; entries with no constraints at all are
    /// treated as explicitly noted legal keys and survive indefinitely.
    pub fn from_db(db: ConstraintDb) -> Workspace {
        let mut ws = Workspace::new(db.system.clone(), db.dialect);
        ws.noted = db
            .params
            .iter()
            .filter(|p| p.constraints.is_empty())
            .map(|p| p.name.clone())
            .collect();
        ws.db = db;
        ws
    }

    /// Overrides the API registry used by semantic-type inference.
    pub fn with_spec(mut self, spec: ApiSpec) -> Workspace {
        self.spec = spec;
        self
    }

    /// Overrides the worker-thread count for batch checking.
    pub fn with_threads(mut self, threads: usize) -> Workspace {
        self.threads = threads.max(1);
        self
    }

    /// Attaches a shared environment model for semantic existence checks.
    pub fn with_env(mut self, env: Arc<dyn Environment + Send + Sync>) -> Workspace {
        self.env = Some(env);
        self
    }

    /// Attaches a declarative environment model.
    pub fn with_static_env(self, env: StaticEnv) -> Workspace {
        self.with_env(Arc::new(env))
    }

    /// Attaches the real host's filesystem as the environment model.
    pub fn with_fs_env(self) -> Workspace {
        self.with_env(Arc::new(FsEnv::new()))
    }

    /// Builder form of [`enable_telemetry`](Workspace::enable_telemetry).
    pub fn with_telemetry(mut self) -> Workspace {
        self.enable_telemetry();
        self
    }

    /// Turns observability on: from now on every
    /// [`reanalyze`](Workspace::reanalyze),
    /// [`update_module`](Workspace::update_module) and check call records
    /// spans and metrics into this workspace's [`spex_obs::Recorder`],
    /// readable at any time via [`telemetry`](Workspace::telemetry).
    /// Idempotent. With telemetry off (the default), the instrumented
    /// paths cost one atomic load each and record nothing.
    pub fn enable_telemetry(&mut self) -> Arc<spex_obs::Recorder> {
        Arc::clone(
            self.telemetry
                .get_or_insert_with(|| Arc::new(spex_obs::Recorder::new())),
        )
    }

    /// A snapshot of everything recorded since telemetry was enabled (or
    /// an empty snapshot when it never was): the span tree over the
    /// inference passes and the check path, plus the pass/cache counters,
    /// pool gauges and timing histograms.
    pub fn telemetry(&self) -> spex_obs::TelemetrySnapshot {
        self.telemetry
            .as_ref()
            .map(|r| r.snapshot())
            .unwrap_or_default()
    }

    /// The system this workspace analyzes.
    pub fn system(&self) -> &str {
        &self.system
    }

    /// The owned, always-current constraint database.
    pub fn db(&self) -> &ConstraintDb {
        &self.db
    }

    /// Consumes the workspace, yielding the database (e.g. to persist).
    pub fn into_db(self) -> ConstraintDb {
        self.db
    }

    /// Persists the database to a file in the current (`v2`) format.
    pub fn save_db(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        self.db.save(path)
    }

    /// Declares parameter names legal without inferring anything for them.
    pub fn note_params<I: IntoIterator<Item = S>, S: AsRef<str>>(&mut self, names: I) {
        for n in names {
            self.noted.insert(n.as_ref().to_string());
            self.db.note_param(n.as_ref());
        }
        self.db_version += 1;
    }

    /// Merges another database for the same system into the owned one
    /// (cross-process sharding: N workers analyze module subsets, the
    /// coordinator folds their databases in). Conflicts resolve exactly
    /// as in [`ConstraintDb::merge`]; the cached checking session is
    /// invalidated.
    pub fn merge_db(&mut self, other: &ConstraintDb) -> Result<MergeReport, MergeError> {
        let report = self.db.merge(other)?;
        self.db_version += 1;
        Ok(report)
    }

    /// Module names with un-analyzed changes, sorted.
    pub fn dirty_modules(&self) -> Vec<&str> {
        self.modules
            .iter()
            .filter(|(_, m)| m.dirty != Dirty::Clean)
            .map(|(n, _)| n.as_str())
            .collect()
    }

    fn parse_source(module: &str, source: &str) -> Result<Module, WorkspaceError> {
        let program = spex_lang::parse_program(source).map_err(|e| WorkspaceError::Parse {
            module: module.to_string(),
            message: e.to_string(),
        })?;
        spex_ir::lower_program(&program).map_err(|e| WorkspaceError::Parse {
            module: module.to_string(),
            message: e.to_string(),
        })
    }

    fn parse_annotations(module: &str, text: &str) -> Result<Vec<Annotation>, WorkspaceError> {
        Annotation::parse(text).map_err(|message| WorkspaceError::Annotations {
            module: module.to_string(),
            message,
        })
    }

    /// Adds a source module with its mapping annotations. The source is
    /// parsed, lowered and fingerprinted now; inference happens at the
    /// next [`reanalyze`](Workspace::reanalyze).
    pub fn add_module(
        &mut self,
        name: impl Into<String>,
        source: &str,
        annotations: &str,
    ) -> Result<(), WorkspaceError> {
        let name = name.into();
        if self.modules.contains_key(&name) {
            return Err(WorkspaceError::DuplicateModule(name));
        }
        let module = Self::parse_source(&name, source)?;
        let anns = Self::parse_annotations(&name, annotations)?;
        let fn_fps = function_fingerprints(&module);
        let header_fp = header_fingerprint(&module);
        self.modules.insert(
            name,
            SourceModule {
                module: Arc::new(module),
                cache: PassCache::default(),
                anns,
                fn_fps,
                header_fp,
                dirty: Dirty::All,
                touched: BTreeMap::new(),
                callees: BTreeMap::new(),
                reactions: BTreeMap::new(),
            },
        );
        Ok(())
    }

    /// Replaces a module's source, fingerprinting the lowered IR to
    /// compute the dirty function set. Returns which functions changed; an
    /// empty diff (e.g. a comment-only edit) leaves the module clean if it
    /// already was.
    pub fn update_module(
        &mut self,
        name: &str,
        source: &str,
    ) -> Result<FingerprintDiff, WorkspaceError> {
        let _telemetry = self.telemetry.as_ref().map(spex_obs::install);
        let _span = spex_obs::span("workspace.update_module");
        let mut module = Self::parse_source(name, source)?;
        let entry = self
            .modules
            .get_mut(name)
            .ok_or_else(|| WorkspaceError::UnknownModule(name.to_string()))?;
        let fn_fps = function_fingerprints(&module);
        let header_fp = header_fingerprint(&module);
        let diff = diff_fingerprints(&entry.fn_fps, &fn_fps);
        if header_fp != entry.header_fp {
            // Globals, struct layouts or enum constants moved: mappings
            // and declared-type fallbacks may shift for any parameter.
            entry.dirty = Dirty::All;
        } else if !diff.is_empty() {
            entry.dirty.absorb_functions(diff.dirty_names());
        }
        // Swap the freshly parsed body of every *unchanged* function for
        // the previous generation's allocation: the fingerprint says they
        // are identical, so untouched functions stay pointer-equal across
        // generations (`Arc::ptr_eq`) and downstream reuse — SSA state,
        // slices — keeps sharing one body instead of re-anchoring on a
        // duplicate. Only sound when the header is stable too (embedded
        // global/struct ids unchanged).
        if header_fp == entry.header_fp {
            for f in &mut module.functions {
                if entry.fn_fps.get(&f.name) == fn_fps.get(&f.name) {
                    if let Some(old) = entry.module.functions.iter().find(|o| o.name == f.name) {
                        *f = Arc::clone(old);
                    }
                }
            }
        }
        entry.module = Arc::new(module);
        entry.fn_fps = fn_fps;
        entry.header_fp = header_fp;
        Ok(diff)
    }

    /// Replaces a module's mapping annotations (always a full re-inference
    /// for that module: mappings decide what a parameter even is).
    pub fn update_annotations(
        &mut self,
        name: &str,
        annotations: &str,
    ) -> Result<(), WorkspaceError> {
        let anns = Self::parse_annotations(name, annotations)?;
        let entry = self
            .modules
            .get_mut(name)
            .ok_or_else(|| WorkspaceError::UnknownModule(name.to_string()))?;
        entry.anns = anns;
        entry.dirty = Dirty::All;
        Ok(())
    }

    /// Removes a module and garbage-collects its contribution to the
    /// database — both what this session's analyses touched and what a
    /// seeded database credits to the module's provenance (the
    /// [`from_db`](Workspace::from_db) resume case, where the module may
    /// never have been re-analyzed).
    pub fn remove_module(&mut self, name: &str) -> Result<(), WorkspaceError> {
        let entry = self
            .modules
            .remove(name)
            .ok_or_else(|| WorkspaceError::UnknownModule(name.to_string()))?;
        let mut params: BTreeSet<String> = entry.touched.keys().cloned().collect();
        params.extend(self.db.params_from_source(name));
        for param in &params {
            self.db.remove_source_param(name, param);
            self.drop_param_if_orphaned(param);
        }
        self.db_version += 1;
        Ok(())
    }

    /// Drops a parameter entry that no longer has constraints, is not
    /// explicitly noted, and is not mapped by any module.
    fn drop_param_if_orphaned(&mut self, param: &str) {
        let claimed = self.noted.contains(param)
            || self.modules.values().any(|m| m.touched.contains_key(param))
            || self
                .db
                .param(param)
                .is_some_and(|e| !e.constraints.is_empty());
        if !claimed {
            self.db.remove_param(param);
        }
    }

    /// Re-infers constraints for everything dirty and folds the results
    /// into the database. Work is proportional to the change, at two
    /// granularities: parameters whose data flow does not touch any dirty
    /// function keep their persisted constraints untouched and their
    /// inference passes do not run, and the expensive intermediate
    /// artifacts — SSA preparation, mapping extraction, per-parameter
    /// taint slices — are served from a fingerprint-keyed [`PassCache`]
    /// whenever the edit provably cannot affect them (see
    /// [`ReanalyzeReport::passes`] for both the pass and the cache
    /// accounting). The stored module is shared into the analysis and
    /// never deep-cloned ([`Workspace::module_clones`] stays flat).
    pub fn reanalyze(&mut self) -> ReanalyzeReport {
        let _telemetry = self.telemetry.as_ref().map(spex_obs::install);
        let _span = spex_obs::span("workspace.reanalyze");
        let mut report = ReanalyzeReport::default();

        /// One dirty module's analysis input, detached from the workspace
        /// borrow: the module is `Arc`-shared (no function body is copied
        /// — the zero-copy invariant `function_clones` tracks), the pass
        /// cache is taken out of the entry and handed back after the run.
        struct Job {
            name: String,
            module: Arc<Module>,
            anns: Vec<Annotation>,
            cache: Mutex<PassCache>,
            scope: Option<InferScope>,
            dirty_fns: Option<BTreeSet<String>>,
        }

        // Phase 1 (serial, module-name order): snapshot every dirty
        // module's inputs and change scope.
        let names: Vec<String> = self.modules.keys().cloned().collect();
        let mut jobs: Vec<Job> = Vec::new();
        for name in names {
            let entry = self.modules.get_mut(&name).expect("listed above");
            let (scope, dirty_fns) = match &entry.dirty {
                Dirty::Clean => continue,
                Dirty::All => {
                    // Header or annotation change: every cached artifact's
                    // id space is suspect.
                    entry.cache.clear();
                    (None, None)
                }
                Dirty::Functions(fns) => {
                    // Close the dirty names over the *previous* analysis's
                    // call edges: an edit that removed a call must still
                    // dirty the callees it used to reach (their inherited
                    // guards may have vanished with the call). The core
                    // closes over the new edges symmetrically.
                    let closed = close_over_calls(&entry.callees, fns);
                    // Force parameters whose *previous* slice reached any
                    // of those functions (possibly removed ones): their
                    // fresh slice may no longer touch them, but their
                    // constraints must still be recomputed.
                    let forced: Vec<&String> = entry
                        .touched
                        .iter()
                        .filter(|(_, t)| !t.is_disjoint(&closed))
                        .map(|(p, _)| p)
                        .collect();
                    (
                        Some(InferScope::functions(closed.iter().cloned()).with_params(forced)),
                        // The raw (unclosed) dirty set keys the slice
                        // cache: a changed caller invalidates only slices
                        // it can actually reach.
                        Some(fns.clone()),
                    )
                }
            };
            report.modules_analyzed += 1;
            jobs.push(Job {
                name: name.clone(),
                module: Arc::clone(&entry.module),
                anns: entry.anns.clone(),
                cache: Mutex::new(std::mem::take(&mut entry.cache)),
                scope,
                dirty_fns,
            });
        }

        // Phase 2: analyze. With several dirty modules the pool fans out at
        // module granularity and each job runs its parameter passes inline
        // (nesting pools would oversubscribe); with a single dirty module
        // the parameter-level fan-out inside the core gets all the threads.
        // Routing on the workload keeps telemetry thread-count-independent.
        let spec = &self.spec;
        let analyze_job = |job: &Job, threads: usize| {
            let _module_span = spex_obs::span!("workspace.module", module = job.name);
            let mut cache = job.cache.lock().expect("job cache lock");
            Spex::analyze_cached_threaded(
                &job.module,
                &job.anns,
                spec.clone(),
                job.scope.as_ref(),
                job.dirty_fns.as_ref(),
                &mut cache,
                threads,
            )
        };
        let analyses: Vec<SpexAnalysis> = if jobs.len() > 1 {
            crate::pool::run_indexed(self.threads, jobs.len(), self.telemetry.as_ref(), |i| {
                analyze_job(&jobs[i], 1)
            })
        } else {
            jobs.iter().map(|j| analyze_job(j, self.threads)).collect()
        };

        // Phase 3 (serial, same order): fold every result into the
        // database. The fold order is what makes the persisted constraints
        // byte-identical to the serial run at any thread count; the pass
        // counters are commutative sums, so they match too.
        for (job, analysis) in jobs.into_iter().zip(analyses) {
            let name = job.name;
            self.modules.get_mut(&name).expect("still present").cache =
                job.cache.into_inner().expect("job cache lock");
            report.passes.accumulate(&analysis.passes);
            report.params_total += analysis.reports.len();

            // Fold the fresh results into the database, re-classifying
            // the reaction path for every re-inferred slice and keeping
            // the cached verdict for stale ones.
            let mut old_reactions = std::mem::take(
                &mut self
                    .modules
                    .get_mut(&name)
                    .expect("still present")
                    .reactions,
            );
            let mut react_hits = 0u64;
            let mut reactions: BTreeMap<String, ReactionFinding> = BTreeMap::new();
            let mut touched: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
            for r in &analysis.reports {
                touched.insert(
                    r.param.name.clone(),
                    r.taint
                        .touched_functions()
                        .into_iter()
                        .map(|fid| analysis.am.module.func(fid).name.clone())
                        .collect(),
                );
                self.db.note_param(&r.param.name);
                if r.stale {
                    if let Some(f) = old_reactions.remove(&r.param.name) {
                        report.passes.react_cache_hits += 1;
                        react_hits += 1;
                        reactions.insert(r.param.name.clone(), f);
                    }
                    continue;
                }
                report.passes.react_runs += 1;
                reactions.insert(
                    r.param.name.clone(),
                    spex_react::classify_with_summaries(&analysis.am, &analysis.summaries, r),
                );
                report.params_reinferred += 1;
                let (removed, added) =
                    self.db
                        .replace_source_param(&name, &r.param.name, r.constraints.clone());
                report.constraints_removed += removed;
                report.constraints_added += added;
            }

            // Garbage-collect parameters this module no longer maps.
            // "Previously owned" is the union of what the last in-session
            // analysis touched and what the database credits to this
            // module — the latter matters when resuming from a persisted
            // db, where `touched` starts empty but stale provenance-tagged
            // constraints may exist.
            let gone: Vec<String> = {
                let entry = self.modules.get(&name).expect("still present");
                entry
                    .touched
                    .keys()
                    .cloned()
                    .chain(self.db.params_from_source(&name))
                    .filter(|p| !touched.contains_key(p))
                    .collect()
            };
            // Record this analysis's call edges (by name) for the next
            // scoped run's old-edge closure.
            let mut callees: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
            for (callee, sites) in &analysis.am.callgraph.callers_of {
                let callee_name = &analysis.am.module.func(*callee).name;
                for site in sites {
                    callees
                        .entry(analysis.am.module.func(site.caller).name.clone())
                        .or_default()
                        .insert(callee_name.clone());
                }
            }
            if react_hits > 0 {
                spex_obs::counter("react.cache.hits", react_hits);
            }
            let entry = self.modules.get_mut(&name).expect("still present");
            entry.touched = touched;
            entry.callees = callees;
            entry.reactions = reactions;
            entry.dirty = Dirty::Clean;
            for param in gone {
                report.constraints_removed += self.db.remove_source_param(&name, &param);
                self.drop_param_if_orphaned(&param);
            }
        }
        self.db_version += 1;
        report
    }

    // -- Reaction analysis ----------------------------------------------

    /// Every parameter's static reaction verdict as of the last
    /// [`reanalyze`](Workspace::reanalyze), as `(module, finding)` pairs
    /// sorted by module then parameter name. Covers all four classes;
    /// filter on [`ReactionClass::is_vulnerability`] for the
    /// vulnerability view.
    pub fn reaction_findings(&self) -> Vec<(&str, &ReactionFinding)> {
        self.modules
            .iter()
            .flat_map(|(name, m)| m.reactions.values().map(move |f| (name.as_str(), f)))
            .collect()
    }

    /// The vulnerability view of the last analysis's reaction verdicts as
    /// a renderable [`Report`] (one [`FileReport`] per module, in module
    /// order). Late detections are errors — an invalid value crashes or
    /// corrupts the system instead of producing a message — while silent
    /// fallbacks and unchecked parameters are warnings; parameters that
    /// are checked with a message do not appear (they are the desired
    /// reaction). Each diagnostic carries the `SPEX-V` code and `Origin`
    /// provenance, so the JSON-Lines and SARIF renderers work unchanged.
    pub fn reaction_report(&self) -> Report {
        let files = self
            .modules
            .iter()
            .map(|(name, m)| {
                let diags = m
                    .reactions
                    .values()
                    .filter(|f| f.class.is_vulnerability())
                    .map(|f| {
                        let severity = match f.class {
                            ReactionClass::LateDetection => Severity::Error,
                            _ => Severity::Warning,
                        };
                        Diagnostic::new(severity, &f.param, "", f.detail.clone(), f.code())
                            .from_origin(name, &f.in_function, f.span)
                    })
                    .collect();
                FileReport::new(self.system.clone(), name.clone(), diags)
            })
            .collect();
        Report::from_files(files)
    }

    // -- Checking -------------------------------------------------------

    /// A borrowed [`CheckSession`] over the current database — **zero
    /// copies**. The parameter index behind it is cached inside the
    /// workspace and rebuilt only after the database changes
    /// ([`reanalyze`](Workspace::reanalyze),
    /// [`merge_db`](Workspace::merge_db), ...), so calling this per
    /// keystroke or per file costs a mutex lock and an `Arc` bump,
    /// nothing more.
    ///
    /// The returned session borrows the workspace; drop it before the
    /// next `&mut self` call.
    pub fn session(&self) -> CheckSession<'_> {
        let index = {
            let mut cache = self.cache.lock().unwrap();
            if cache.index.is_none() || cache.version != self.db_version {
                cache.index = Some(Arc::new(ParamIndex::build(&self.db)));
                cache.version = self.db_version;
                cache.rebuilds += 1;
            }
            Arc::clone(cache.index.as_ref().expect("just built"))
        };
        let mut session = CheckSession::with_index(&self.db, index).with_threads(self.threads);
        if let Some(env) = &self.env {
            session = session.with_env(env.as_ref());
        }
        if let Some(rec) = &self.telemetry {
            session = session.with_recorder(Arc::clone(rec));
        }
        session
    }

    /// How many times the cached session index has been (re)built — one
    /// per database generation, regardless of how many checks ran (the
    /// regression tests for the borrowed engine assert on this).
    pub fn session_rebuilds(&self) -> usize {
        self.cache.lock().unwrap().rebuilds
    }

    /// Total deep-clone count across the lineages of every stored module
    /// (see [`Module::clone_count`]). Analysis shares the stored modules
    /// by reference, so [`reanalyze`](Workspace::reanalyze) — full or
    /// incremental — must keep this flat; the pass-cache regression tests
    /// assert exactly that.
    pub fn module_clones(&self) -> usize {
        self.modules.values().map(|m| m.module.clone_count()).sum()
    }

    /// Total deep-clone count across the lineages of every *function body*
    /// the stored modules hold (see `Function::clone_count` in `spex-ir`).
    /// With `Module` sharing functions (`Vec<Arc<Function>>`), no path in
    /// analysis, re-analysis or checking should ever copy a body — warm
    /// generations bump refcounts only — and the zero-copy regression
    /// tests assert this stays at zero.
    pub fn function_clones(&self) -> usize {
        self.modules
            .values()
            .map(|m| m.module.function_clones())
            .sum()
    }

    /// Checks one config text against the current database.
    pub fn check_text(&self, text: &str) -> Vec<Diagnostic> {
        self.check_conf(&ConfFile::parse(text, self.dialect))
    }

    /// Checks a parsed config file against the current database.
    pub fn check_conf(&self, conf: &ConfFile) -> Vec<Diagnostic> {
        self.session().check(conf)
    }

    /// Checks many in-memory `(label, text)` files on the worker pool
    /// (see [`CheckSession::check_texts`]).
    pub fn check_texts<L, T>(&self, files: &[(L, T)]) -> Report
    where
        L: AsRef<str> + Sync,
        T: AsRef<str> + Sync,
    {
        self.session().check_texts(files)
    }

    /// Streaming batch validation of files and directory trees against the
    /// current database (see [`CheckSession::check_paths`] for the
    /// walking, memory and ordering guarantees). Runs on the cached
    /// borrowed session: no `ConstraintDb` copy, per call or per file.
    pub fn check_paths<P: AsRef<Path>>(&self, roots: &[P]) -> std::io::Result<Report> {
        self.session().check_paths(roots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ANN: &str = "{ @STRUCT = options\n @PAR = [opt, 1]\n @VAR = [opt, 2] }";

    const BASE: &str = r#"
        int threads = 4;
        int nap = 30;
        struct opt { char* name; int* var; };
        struct opt options[] = { { "threads", &threads }, { "nap", &nap } };
        void startup() {
            if (threads < 1) { exit(1); }
            if (threads > 16) { exit(1); }
        }
        void napper() { sleep(nap); }
    "#;

    fn ws() -> Workspace {
        let mut ws = Workspace::new("Test", Dialect::KeyValue);
        ws.add_module("main.c", BASE, ANN).unwrap();
        ws
    }

    #[test]
    fn first_reanalyze_is_full_then_clean_is_free() {
        let mut ws = ws();
        assert_eq!(ws.dirty_modules(), vec!["main.c"]);
        let r = ws.reanalyze();
        assert_eq!(r.modules_analyzed, 1);
        assert_eq!(r.params_reinferred, 2);
        assert_eq!(r.passes.basic_type, 2);
        assert!(ws.dirty_modules().is_empty());
        let r = ws.reanalyze();
        assert_eq!(r, ReanalyzeReport::default());
    }

    #[test]
    fn checker_sees_inferred_constraints() {
        let mut ws = ws();
        ws.reanalyze();
        assert!(ws.check_text("threads = 8\nnap = 30\n").is_empty());
        let ds = ws.check_text("threads = 64\n");
        assert_eq!(ds.len(), 1);
        assert!(ds[0].message.contains("[1, 16]"), "{}", ds[0]);
    }

    #[test]
    fn update_module_swaps_only_edited_function_arcs() {
        // The zero-copy contract at the `update_module` boundary: an edit
        // allocates a fresh `Arc` only for the functions it changed;
        // every untouched function is the *same* allocation across
        // generations, and no function body is ever deep-copied.
        let mut ws = ws();
        ws.reanalyze();
        let before: std::collections::BTreeMap<String, Arc<spex_ir::Function>> = ws.modules
            ["main.c"]
            .module
            .functions
            .iter()
            .map(|f| (f.name.clone(), Arc::clone(f)))
            .collect();

        let edited = BASE.replace("sleep(nap)", "sleep(nap + 0)");
        assert_ne!(edited, BASE, "the probe edit must change the source");
        ws.update_module("main.c", &edited).unwrap();
        let after = &ws.modules["main.c"].module;
        assert_eq!(after.functions.len(), before.len());
        for f in &after.functions {
            let old = &before[&f.name];
            if f.name == "napper" {
                assert!(
                    !Arc::ptr_eq(old, f),
                    "the edited function must get a fresh Arc"
                );
            } else {
                assert!(
                    Arc::ptr_eq(old, f),
                    "{}: untouched functions must be pointer-equal across generations",
                    f.name
                );
            }
        }

        ws.reanalyze();
        assert_eq!(ws.function_clones(), 0, "no function body may be copied");
        assert_eq!(ws.module_clones(), 0, "no module may be deep-cloned");
    }

    #[test]
    fn comment_edit_dirties_nothing() {
        let mut ws = ws();
        ws.reanalyze();
        let diff = ws
            .update_module("main.c", &format!("// nothing\n{BASE}"))
            .unwrap();
        assert!(diff.is_empty());
        assert!(ws.dirty_modules().is_empty());
        assert_eq!(ws.reanalyze().params_reinferred, 0);
    }

    #[test]
    fn unknown_and_duplicate_modules_error() {
        let mut ws = ws();
        assert!(matches!(
            ws.add_module("main.c", BASE, ANN),
            Err(WorkspaceError::DuplicateModule(_))
        ));
        assert!(matches!(
            ws.update_module("other.c", BASE),
            Err(WorkspaceError::UnknownModule(_))
        ));
        assert!(matches!(
            ws.add_module("bad.c", "int = ;", ANN),
            Err(WorkspaceError::Parse { .. })
        ));
        assert!(matches!(
            ws.add_module("badann.c", BASE, "{ @NOT = a thing }"),
            Err(WorkspaceError::Annotations { .. })
        ));
    }

    #[test]
    fn removed_module_garbage_collects_its_params() {
        let mut ws = ws();
        ws.reanalyze();
        assert!(ws.db().param("threads").is_some());
        ws.remove_module("main.c").unwrap();
        assert!(ws.db().param("threads").is_none());
        assert_eq!(ws.db().constraint_count(), 0);
    }

    #[test]
    fn noted_params_survive_module_removal() {
        let mut ws = ws();
        ws.note_params(["threads"]);
        ws.reanalyze();
        ws.remove_module("main.c").unwrap();
        let entry = ws.db().param("threads").expect("noted name stays legal");
        assert!(entry.constraints.is_empty());
    }

    #[test]
    fn from_db_keeps_seeded_constraints_checkable() {
        let mut ws = ws();
        ws.reanalyze();
        let text = ws.db().save_to_string();
        let ws2 = Workspace::from_db(ConstraintDb::load_from_str(&text).unwrap());
        assert_eq!(ws2.check_text("threads = 64\n").len(), 1);
    }
}
