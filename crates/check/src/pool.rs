//! The deterministic directory walk used by
//! [`CheckSession::check_paths`](crate::CheckSession::check_paths), plus
//! this crate's view of the shared worker pool (the pool itself lives in
//! `spex-pool`, below `spex-core`, so the inference passes fan across the
//! same primitive).

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

pub(crate) use spex_pool::run_indexed;

/// One discovered path: a candidate file, or a location the walk could
/// not descend (reported as unreadable rather than aborting the batch).
pub(crate) struct WalkEntry {
    pub(crate) path: PathBuf,
    pub(crate) walk_error: Option<String>,
}

impl WalkEntry {
    fn file(path: PathBuf) -> WalkEntry {
        WalkEntry {
            path,
            walk_error: None,
        }
    }
}

/// Walks every root in order with [`walk_sorted`], sharing one visited
/// set so overlapping roots descend each physical directory once.
pub(crate) fn walk_roots<P: AsRef<Path>>(roots: &[P]) -> std::io::Result<Vec<WalkEntry>> {
    let mut files: Vec<WalkEntry> = Vec::new();
    let mut visited = BTreeSet::new();
    for root in roots {
        walk_sorted(root.as_ref(), &mut files, &mut visited)?;
    }
    Ok(files)
}

/// Depth-first walk collecting regular files, visiting directory entries
/// in sorted name order so the job list — and therefore the report order —
/// is deterministic across platforms and runs. Directory symlinks are
/// followed, but each physical directory in `visited` is descended at most
/// once, so a symlink cycle (`ln -s . loop`) terminates instead of
/// recursing forever. Explicit *file* roots are always pushed, even when a
/// directory root also reaches them. Only a root whose metadata cannot be
/// read at all (typically: it does not exist) is a hard error; everything
/// below a root degrades to a per-path unreadable report.
fn walk_sorted(
    root: &Path,
    out: &mut Vec<WalkEntry>,
    visited: &mut BTreeSet<PathBuf>,
) -> std::io::Result<()> {
    let meta = std::fs::metadata(root)?;
    if meta.is_file() {
        out.push(WalkEntry::file(root.to_path_buf()));
        return Ok(());
    }
    if !meta.is_dir() {
        // A FIFO/socket/device root: report it, don't try to list it.
        out.push(WalkEntry::file(root.to_path_buf()));
        return Ok(());
    }
    if let Ok(canon) = std::fs::canonicalize(root) {
        if !visited.insert(canon) {
            return Ok(());
        }
    }
    let listing = std::fs::read_dir(root).and_then(|rd| {
        rd.map(|e| e.map(|e| e.path()))
            .collect::<std::io::Result<Vec<PathBuf>>>()
    });
    let mut entries = match listing {
        Ok(entries) => entries,
        // An unreadable (e.g. permission-denied) directory inside the
        // tree is one bad location, not a batch abort.
        Err(e) => {
            out.push(WalkEntry {
                path: root.to_path_buf(),
                walk_error: Some(e.to_string()),
            });
            return Ok(());
        }
    };
    entries.sort_unstable();
    for entry in entries {
        // A file deleted between listing and stat is the streaming racer's
        // problem, not a batch abort: record it as unreadable.
        match std::fs::metadata(&entry) {
            Ok(m) if m.is_dir() => {
                // The recursive call's only hard-error path is a re-stat
                // race on this entry; degrade it like everything else.
                if let Err(e) = walk_sorted(&entry, out, visited) {
                    out.push(WalkEntry {
                        path: entry,
                        walk_error: Some(e.to_string()),
                    });
                }
            }
            _ => out.push(WalkEntry::file(entry)),
        }
    }
    Ok(())
}
