//! The shared scoped-thread worker pool and the deterministic directory
//! walk, used by both [`CheckSession`](crate::CheckSession) and the
//! legacy [`BatchEngine`](crate::BatchEngine) front-end.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Produces `n` results with `make` on up to `threads` scoped workers,
/// sharing an atomic cursor and writing results back by index so output
/// order is deterministic regardless of scheduling.
///
/// When a `recorder` is given, each worker installs it for its lifetime
/// (thread-locals do not cross `spawn`, so the caller's install alone
/// would leave workers silent) and reports per-worker job counts and
/// utilization, queue-depth samples, and pool-wide totals into it. The
/// per-worker gauges are scheduling-dependent by nature; everything
/// deterministic about the run is carried by the counters.
pub(crate) fn run_indexed<T, F>(
    threads: usize,
    n: usize,
    recorder: Option<&Arc<spex_obs::Recorder>>,
    make: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.max(1).min(n.max(1));
    if let Some(rec) = recorder {
        let _telemetry = spex_obs::install(rec);
        spex_obs::counter("pool.runs", 1);
        spex_obs::counter("pool.jobs", n as u64);
        spex_obs::gauge("pool.workers", workers as i64);
    }
    if workers <= 1 {
        let _telemetry = recorder.map(spex_obs::install);
        return (0..n).map(make).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for w in 0..workers {
            scope.spawn({
                let cursor = &cursor;
                let slots = &slots;
                let make = &make;
                move || {
                    let _telemetry = recorder.map(spex_obs::install);
                    let started = spex_obs::clock();
                    let mut jobs = 0u64;
                    let mut busy_ns = 0u128;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        spex_obs::observe("pool.queue.depth", (n - i.min(n)) as u64);
                        let job_start = spex_obs::clock();
                        let result = make(i);
                        *slots[i].lock().unwrap() = Some(result);
                        jobs += 1;
                        if let Some(t) = job_start {
                            busy_ns += t.elapsed().as_nanos();
                        }
                    }
                    if let Some(started) = started {
                        report_worker(w, jobs, busy_ns, started);
                    }
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("worker filled every slot"))
        .collect()
}

/// Publishes one worker's lifetime stats: how many jobs it took and what
/// fraction of its wall-clock it spent inside them.
fn report_worker(worker: usize, jobs: u64, busy_ns: u128, started: Instant) {
    let wall_ns = started.elapsed().as_nanos().max(1);
    let utilization = (busy_ns.min(wall_ns) * 100 / wall_ns) as i64;
    spex_obs::gauge(&format!("pool.worker.{worker}.jobs"), jobs as i64);
    spex_obs::gauge(
        &format!("pool.worker.{worker}.utilization_pct"),
        utilization,
    );
}

/// One discovered path: a candidate file, or a location the walk could
/// not descend (reported as unreadable rather than aborting the batch).
pub(crate) struct WalkEntry {
    pub(crate) path: PathBuf,
    pub(crate) walk_error: Option<String>,
}

impl WalkEntry {
    fn file(path: PathBuf) -> WalkEntry {
        WalkEntry {
            path,
            walk_error: None,
        }
    }
}

/// Walks every root in order with [`walk_sorted`], sharing one visited
/// set so overlapping roots descend each physical directory once.
pub(crate) fn walk_roots<P: AsRef<Path>>(roots: &[P]) -> std::io::Result<Vec<WalkEntry>> {
    let mut files: Vec<WalkEntry> = Vec::new();
    let mut visited = BTreeSet::new();
    for root in roots {
        walk_sorted(root.as_ref(), &mut files, &mut visited)?;
    }
    Ok(files)
}

/// Depth-first walk collecting regular files, visiting directory entries
/// in sorted name order so the job list — and therefore the report order —
/// is deterministic across platforms and runs. Directory symlinks are
/// followed, but each physical directory in `visited` is descended at most
/// once, so a symlink cycle (`ln -s . loop`) terminates instead of
/// recursing forever. Explicit *file* roots are always pushed, even when a
/// directory root also reaches them. Only a root whose metadata cannot be
/// read at all (typically: it does not exist) is a hard error; everything
/// below a root degrades to a per-path unreadable report.
fn walk_sorted(
    root: &Path,
    out: &mut Vec<WalkEntry>,
    visited: &mut BTreeSet<PathBuf>,
) -> std::io::Result<()> {
    let meta = std::fs::metadata(root)?;
    if meta.is_file() {
        out.push(WalkEntry::file(root.to_path_buf()));
        return Ok(());
    }
    if !meta.is_dir() {
        // A FIFO/socket/device root: report it, don't try to list it.
        out.push(WalkEntry::file(root.to_path_buf()));
        return Ok(());
    }
    if let Ok(canon) = std::fs::canonicalize(root) {
        if !visited.insert(canon) {
            return Ok(());
        }
    }
    let listing = std::fs::read_dir(root).and_then(|rd| {
        rd.map(|e| e.map(|e| e.path()))
            .collect::<std::io::Result<Vec<PathBuf>>>()
    });
    let mut entries = match listing {
        Ok(entries) => entries,
        // An unreadable (e.g. permission-denied) directory inside the
        // tree is one bad location, not a batch abort.
        Err(e) => {
            out.push(WalkEntry {
                path: root.to_path_buf(),
                walk_error: Some(e.to_string()),
            });
            return Ok(());
        }
    };
    entries.sort_unstable();
    for entry in entries {
        // A file deleted between listing and stat is the streaming racer's
        // problem, not a batch abort: record it as unreadable.
        match std::fs::metadata(&entry) {
            Ok(m) if m.is_dir() => {
                // The recursive call's only hard-error path is a re-stat
                // race on this entry; degrade it like everything else.
                if let Err(e) = walk_sorted(&entry, out, visited) {
                    out.push(WalkEntry {
                        path: entry,
                        walk_error: Some(e.to_string()),
                    });
                }
            }
            _ => out.push(WalkEntry::file(entry)),
        }
    }
    Ok(())
}
