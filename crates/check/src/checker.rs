//! Backwards-compatibility shims for the pre-0.3 checker API.
//!
//! The checking logic lives in [`crate::session`] since the 0.3 API
//! redesign; this module keeps the old paths importable. See the README's
//! "Migrating to 0.3" notes: `Checker::new(&db)` is spelled
//! [`CheckSession::new(&db)`](crate::CheckSession::new) now, and the
//! engine additionally offers cached construction, multi-file checking
//! and structured [`Report`](crate::Report)s.

pub use crate::env::{Environment, StaticEnv};
pub use crate::session::{levenshtein, parse_bool_word, parse_plain_int, split_unit_suffix};

/// The pre-0.3 name of the borrowed checking engine.
#[deprecated(
    since = "0.3.0",
    note = "renamed to `CheckSession`; construction and single-file \
            checking are unchanged (`CheckSession::new(&db).check_text(..)`)"
)]
pub type Checker<'db> = crate::session::CheckSession<'db>;

#[cfg(test)]
mod tests {
    #![allow(deprecated)]
    use crate::db::ConstraintDb;
    use crate::Checker;
    use spex_conf::Dialect;

    /// The deprecated alias still constructs and checks.
    #[test]
    fn checker_alias_keeps_working() {
        let mut db = ConstraintDb::new("Compat", Dialect::KeyValue);
        db.note_param("threads");
        let checker = Checker::new(&db);
        assert!(checker.check_text("threads = 8\n").is_empty());
        assert_eq!(checker.check_text("treads = 8\n").len(), 1);
    }
}
