//! The constraint checker: validates one parsed config file against a
//! [`ConstraintDb`].
//!
//! Each setting in the file is vetted against every constraint inferred
//! for its parameter: basic-type conformance, semantic-type plausibility
//! (unit-aware for time and size parameters), numeric- and enumerative-
//! range membership, control-dependency activation, and cross-parameter
//! value relationships. Keys not present in the database are reported with
//! an edit-distance "did you mean" suggestion.

use crate::db::{ConstraintDb, ParamEntry};
use crate::diag::{Diagnostic, Severity};
use spex_conf::{ConfFile, Entry};
use spex_core::constraint::{BasicType, ConstraintKind, EnumValue, SemType, SizeUnit, TimeUnit};
use std::collections::BTreeSet;

/// Absurdity bar for a time value, in the parameter's own unit (the
/// paper's injection rule plants "absurdly large time value"s).
///
/// The bar is per-unit: a single "over a year" bar lets sub-second units
/// dodge it — `999999999 ms` is "only" 11.5 days, yet nobody writes a
/// nine-digit millisecond count on purpose; they mistook the unit.
/// Sub-second units express fine-grained intervals, so they must clear a
/// proportionally lower bar.
fn absurd_time_bar(unit: TimeUnit) -> (i64, &'static str) {
    match unit {
        // One hour of microseconds.
        TimeUnit::Micro => (3600 * 1_000_000, "an hour"),
        // One week of milliseconds.
        TimeUnit::Milli => (7 * 24 * 3600 * 1000, "a week"),
        // One year for coarse units.
        TimeUnit::Sec => (366 * 24 * 3600, "a year"),
        TimeUnit::Min => (366 * 24 * 60, "a year"),
        TimeUnit::Hour => (366 * 24, "a year"),
    }
}

/// What the checker may ask about the deployment environment. Everything
/// defaults to "plausible", so a checker without an environment still
/// performs all syntactic and numeric checks.
pub trait Environment {
    /// Whether `path` names an existing regular file.
    fn file_exists(&self, _path: &str) -> bool {
        true
    }
    /// Whether `path` names an existing directory.
    fn dir_exists(&self, _path: &str) -> bool {
        true
    }
    /// Whether `name` is a known user.
    fn user_exists(&self, _name: &str) -> bool {
        true
    }
    /// Whether `name` is a known group.
    fn group_exists(&self, _name: &str) -> bool {
        true
    }
    /// Whether `host` resolves.
    fn host_resolves(&self, _host: &str) -> bool {
        true
    }
    /// Whether another process already owns `port`.
    fn port_in_use(&self, _port: u16) -> bool {
        false
    }
}

/// A declarative environment model (mirrors `spex_vm::World` without
/// depending on the interpreter).
#[derive(Debug, Clone, Default)]
pub struct StaticEnv {
    files: BTreeSet<String>,
    dirs: BTreeSet<String>,
    users: BTreeSet<String>,
    groups: BTreeSet<String>,
    hosts: BTreeSet<String>,
    used_ports: BTreeSet<u16>,
}

impl StaticEnv {
    /// An empty environment (nothing exists, no port taken).
    pub fn new() -> StaticEnv {
        StaticEnv::default()
    }

    /// Registers a regular file (and its parent directories).
    pub fn add_file(&mut self, path: &str) -> &mut Self {
        self.files.insert(path.to_string());
        let mut p = path;
        while let Some(i) = p.rfind('/') {
            if i == 0 {
                self.dirs.insert("/".to_string());
                break;
            }
            p = &p[..i];
            self.dirs.insert(p.to_string());
        }
        self
    }

    /// Registers a directory.
    pub fn add_dir(&mut self, path: &str) -> &mut Self {
        self.dirs.insert(path.to_string());
        self
    }

    /// Registers a user.
    pub fn add_user(&mut self, name: &str) -> &mut Self {
        self.users.insert(name.to_string());
        self
    }

    /// Registers a group.
    pub fn add_group(&mut self, name: &str) -> &mut Self {
        self.groups.insert(name.to_string());
        self
    }

    /// Registers a resolvable host.
    pub fn add_host(&mut self, name: &str) -> &mut Self {
        self.hosts.insert(name.to_string());
        self
    }

    /// Marks a port as occupied by another process.
    pub fn occupy_port(&mut self, port: u16) -> &mut Self {
        self.used_ports.insert(port);
        self
    }
}

impl Environment for StaticEnv {
    fn file_exists(&self, path: &str) -> bool {
        self.files.contains(path)
    }
    fn dir_exists(&self, path: &str) -> bool {
        self.dirs.contains(path)
    }
    fn user_exists(&self, name: &str) -> bool {
        self.users.contains(name)
    }
    fn group_exists(&self, name: &str) -> bool {
        self.groups.contains(name)
    }
    fn host_resolves(&self, host: &str) -> bool {
        self.hosts.contains(host)
    }
    fn port_in_use(&self, port: u16) -> bool {
        self.used_ports.contains(&port)
    }
}

/// The validation engine for one system.
pub struct Checker<'a> {
    db: &'a ConstraintDb,
    /// Name → entry index over `db.params` (built once; per-setting
    /// lookups are the batch hot path).
    index: std::collections::HashMap<&'a str, &'a ParamEntry>,
    env: Option<&'a dyn Environment>,
    /// Maximum Levenshtein distance for "did you mean" suggestions.
    pub max_suggest_distance: usize,
}

/// One setting occurrence in the file, with its serialized line number.
struct Occurrence<'c> {
    name: &'c str,
    value: &'c str,
    line: usize,
}

impl<'a> Checker<'a> {
    /// A checker over a database, with no environment model.
    pub fn new(db: &'a ConstraintDb) -> Checker<'a> {
        // Per-setting lookups are the batch hot path; index the entries
        // once instead of scanning the Vec per setting.
        let index = db.params.iter().map(|p| (p.name.as_str(), p)).collect();
        Checker {
            db,
            index,
            env: None,
            max_suggest_distance: 3,
        }
    }

    /// Attaches an environment model enabling existence checks.
    pub fn with_env(mut self, env: &'a dyn Environment) -> Checker<'a> {
        self.env = Some(env);
        self
    }

    /// Parses `text` under the database's dialect and checks it.
    pub fn check_text(&self, text: &str) -> Vec<Diagnostic> {
        self.check(&ConfFile::parse(text, self.db.dialect))
    }

    /// Checks a parsed config file, returning diagnostics in file order.
    /// Cross-parameter findings (control dependencies, value relation-
    /// ships) are attached to the constrained setting — the dependent or
    /// left-hand side — wherever it appears in the file.
    pub fn check(&self, conf: &ConfFile) -> Vec<Diagnostic> {
        let occurrences: Vec<Occurrence> = conf
            .entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| match e {
                Entry::Setting { name, args } => Some(Occurrence {
                    name,
                    value: args.first().map(|s| s.as_str()).unwrap_or(""),
                    line: i + 1,
                }),
                _ => None,
            })
            .collect();

        let mut out = Vec::new();
        for occ in &occurrences {
            match self.index.get(occ.name) {
                Some(entry) => self.check_setting(entry, occ, &occurrences, &mut out),
                None => out.push(self.unknown_key(occ)),
            }
        }
        out
    }

    // -- Unknown keys ----------------------------------------------------

    fn unknown_key(&self, occ: &Occurrence) -> Diagnostic {
        let mut d = Diagnostic::new(
            Severity::Error,
            occ.name,
            occ.value,
            "unknown configuration parameter",
            "unknown-key",
        )
        .at_line(occ.line);
        if let Some(entry) = self.db.param_ignore_case(occ.name) {
            return d.suggest(format!(
                "parameter names are case-sensitive here; did you mean \"{}\"?",
                entry.name
            ));
        }
        let mut best: Option<(usize, &str)> = None;
        for known in self.db.param_names() {
            let dist = levenshtein(occ.name, known, self.max_suggest_distance + 1);
            if dist <= self.max_suggest_distance && best.map(|(b, _)| dist < b).unwrap_or(true) {
                best = Some((dist, known));
            }
        }
        if let Some((_, known)) = best {
            d = d.suggest(format!("did you mean \"{known}\"?"));
        }
        d
    }

    // -- Per-setting checks ----------------------------------------------

    fn check_setting(
        &self,
        entry: &ParamEntry,
        occ: &Occurrence,
        all: &[Occurrence],
        out: &mut Vec<Diagnostic>,
    ) {
        // A value that matches a word alternative of one of the parameter's
        // enumerative constraints is a word-typed setting ("on", "full");
        // numeric basic-type and range checks do not apply to it.
        let word_ok = entry.constraints.iter().any(|c| match &c.kind {
            ConstraintKind::EnumRange(e) => e.alternatives.iter().any(|a| match &a.value {
                EnumValue::Str(s) => {
                    a.valid
                        && (s == occ.value
                            || (e.case_insensitive && s.eq_ignore_ascii_case(occ.value)))
                }
                EnumValue::Int(_) => false,
            }),
            _ => false,
        });

        for c in &entry.constraints {
            let diag = match &c.kind {
                ConstraintKind::BasicType(bt) => {
                    if word_ok {
                        None
                    } else {
                        self.check_basic(bt, occ)
                    }
                }
                ConstraintKind::SemanticType(st) => self.check_semantic(st, occ),
                ConstraintKind::Range(r) => {
                    if word_ok {
                        None
                    } else {
                        self.check_range(r, occ)
                    }
                }
                ConstraintKind::EnumRange(e) => self.check_enum(e, occ),
                ConstraintKind::ControlDep(d) => self.check_control_dep(d, occ, all),
                ConstraintKind::ValueRel(r) => self.check_value_rel(r, occ, all),
            };
            if let Some(d) = diag {
                out.push(d.at_line(occ.line).from_origin(&c.in_function, c.span));
            }
        }
    }

    fn check_basic(&self, bt: &BasicType, occ: &Occurrence) -> Option<Diagnostic> {
        match bt {
            BasicType::Str | BasicType::Enum => None,
            BasicType::Bool => {
                if parse_bool_word(occ.value).is_some() {
                    None
                } else {
                    Some(
                        Diagnostic::new(
                            Severity::Error,
                            occ.name,
                            occ.value,
                            "expects a boolean",
                            "basic-type",
                        )
                        .suggest("use \"on\" or \"off\""),
                    )
                }
            }
            BasicType::Int { bits, signed } => match parse_plain_int(occ.value) {
                Some(v) => {
                    let (lo, hi) = int_bounds(*bits, *signed);
                    if v < lo || v > hi {
                        Some(
                            Diagnostic::new(
                                Severity::Error,
                                occ.name,
                                occ.value,
                                format!("overflows the {bt} the system stores it in"),
                                "basic-type",
                            )
                            .suggest(format!("use a value between {lo} and {hi}")),
                        )
                    } else {
                        None
                    }
                }
                None => {
                    let mut d = Diagnostic::new(
                        Severity::Error,
                        occ.name,
                        occ.value,
                        format!("expects a {bt}"),
                        "basic-type",
                    );
                    if let Some((_, suffix)) = split_unit_suffix(occ.value) {
                        d = d.suggest(format!(
                            "the system parses this with an integer API and would silently \
                             drop the \"{suffix}\" suffix; write the value converted to base \
                             units, without a suffix"
                        ));
                    }
                    Some(d)
                }
            },
            BasicType::Float { .. } => {
                if occ.value.parse::<f64>().is_ok() {
                    None
                } else {
                    Some(Diagnostic::new(
                        Severity::Error,
                        occ.name,
                        occ.value,
                        format!("expects a {bt}"),
                        "basic-type",
                    ))
                }
            }
        }
    }

    fn check_semantic(&self, st: &SemType, occ: &Occurrence) -> Option<Diagnostic> {
        let v = occ.value;
        match st {
            SemType::FilePath => {
                let env = self.env?;
                if env.file_exists(v) {
                    None
                } else if env.dir_exists(v) {
                    Some(
                        Diagnostic::new(
                            Severity::Error,
                            occ.name,
                            v,
                            "names a directory, but a regular file is expected",
                            "semantic-type",
                        )
                        .suggest("point it at a file inside the directory"),
                    )
                } else {
                    Some(Diagnostic::new(
                        Severity::Error,
                        occ.name,
                        v,
                        "file does not exist",
                        "semantic-type",
                    ))
                }
            }
            SemType::DirPath => {
                let env = self.env?;
                if env.dir_exists(v) {
                    None
                } else if env.file_exists(v) {
                    Some(Diagnostic::new(
                        Severity::Error,
                        occ.name,
                        v,
                        "names a regular file, but a directory is expected",
                        "semantic-type",
                    ))
                } else {
                    Some(Diagnostic::new(
                        Severity::Error,
                        occ.name,
                        v,
                        "directory does not exist",
                        "semantic-type",
                    ))
                }
            }
            SemType::Port => {
                let port = match parse_plain_int(v) {
                    Some(p) if (1..=65535).contains(&p) => p as u16,
                    Some(p) => {
                        return Some(
                            Diagnostic::new(
                                Severity::Error,
                                occ.name,
                                v,
                                format!("{p} is outside the valid TCP/UDP port range"),
                                "semantic-type",
                            )
                            .suggest("use a port between 1 and 65535"),
                        )
                    }
                    None => {
                        return Some(Diagnostic::new(
                            Severity::Error,
                            occ.name,
                            v,
                            "expects a numeric port",
                            "semantic-type",
                        ))
                    }
                };
                if self.env.map(|e| e.port_in_use(port)).unwrap_or(false) {
                    Some(Diagnostic::new(
                        Severity::Error,
                        occ.name,
                        v,
                        format!("port {port} is already in use by another process"),
                        "semantic-type",
                    ))
                } else {
                    None
                }
            }
            SemType::IpAddr => {
                if is_dotted_quad(v) {
                    None
                } else {
                    Some(Diagnostic::new(
                        Severity::Error,
                        occ.name,
                        v,
                        "is not a dotted-quad IP address",
                        "semantic-type",
                    ))
                }
            }
            SemType::Hostname => {
                let env = self.env?;
                if env.host_resolves(v) {
                    None
                } else {
                    Some(Diagnostic::new(
                        Severity::Error,
                        occ.name,
                        v,
                        "host name does not resolve",
                        "semantic-type",
                    ))
                }
            }
            SemType::UserName => {
                let env = self.env?;
                if env.user_exists(v) {
                    None
                } else {
                    Some(Diagnostic::new(
                        Severity::Error,
                        occ.name,
                        v,
                        "unknown user",
                        "semantic-type",
                    ))
                }
            }
            SemType::GroupName => {
                let env = self.env?;
                if env.group_exists(v) {
                    None
                } else {
                    Some(Diagnostic::new(
                        Severity::Error,
                        occ.name,
                        v,
                        "unknown group",
                        "semantic-type",
                    ))
                }
            }
            SemType::Time(unit) => self.check_time(*unit, occ),
            SemType::Size(unit) => self.check_size(*unit, occ),
            SemType::Permission => {
                let ok =
                    !v.is_empty() && v.len() <= 4 && v.chars().all(|c| ('0'..='7').contains(&c));
                if ok {
                    None
                } else {
                    Some(
                        Diagnostic::new(
                            Severity::Error,
                            occ.name,
                            v,
                            "is not an octal permission mask",
                            "semantic-type",
                        )
                        .suggest("use up to four octal digits, e.g. 0644"),
                    )
                }
            }
        }
    }

    fn check_time(&self, unit: TimeUnit, occ: &Occurrence) -> Option<Diagnostic> {
        if let Some((_, suffix)) = split_unit_suffix(occ.value) {
            // An explicit unit that differs from what the code expects is
            // the paper's Figure 5(a)/7(d) trap: the integer parser drops
            // the suffix and silently mis-scales the value.
            return Some(
                Diagnostic::new(
                    Severity::Error,
                    occ.name,
                    occ.value,
                    format!(
                        "carries a \"{suffix}\" unit suffix, but the system reads a plain \
                         number of {unit}"
                    ),
                    "semantic-type",
                )
                .suggest(format!(
                    "write the value converted to {unit}, without a suffix"
                )),
            );
        }
        let v = parse_plain_int(occ.value)?;
        if v < 0 {
            return Some(Diagnostic::new(
                Severity::Error,
                occ.name,
                occ.value,
                "time durations cannot be negative",
                "semantic-type",
            ));
        }
        let (bar, human) = absurd_time_bar(unit);
        if v > bar {
            return Some(Diagnostic::new(
                Severity::Error,
                occ.name,
                occ.value,
                format!("{v} {unit} is over {human} — almost certainly a unit mistake"),
                "semantic-type",
            ));
        }
        None
    }

    fn check_size(&self, unit: SizeUnit, occ: &Occurrence) -> Option<Diagnostic> {
        if let Some((_, suffix)) = split_unit_suffix(occ.value) {
            return Some(
                Diagnostic::new(
                    Severity::Error,
                    occ.name,
                    occ.value,
                    format!(
                        "carries a \"{suffix}\" unit suffix, but the system reads a plain \
                         number of {unit}"
                    ),
                    "semantic-type",
                )
                .suggest(format!(
                    "write the value converted to {unit}, without a suffix"
                )),
            );
        }
        let v = parse_plain_int(occ.value)?;
        if v < 0 {
            return Some(Diagnostic::new(
                Severity::Error,
                occ.name,
                occ.value,
                "sizes cannot be negative",
                "semantic-type",
            ));
        }
        None
    }

    fn check_range(
        &self,
        r: &spex_core::constraint::NumericRange,
        occ: &Occurrence,
    ) -> Option<Diagnostic> {
        let v = parse_plain_int(occ.value)?;
        if r.is_valid(v) {
            return None;
        }
        let mut d = Diagnostic::new(
            Severity::Error,
            occ.name,
            occ.value,
            match r.valid_interval() {
                Some((lo, hi)) => format!(
                    "out of the valid range [{}, {}]",
                    lo.map(|v| v.to_string()).unwrap_or_else(|| "-inf".into()),
                    hi.map(|v| v.to_string()).unwrap_or_else(|| "+inf".into()),
                ),
                None => "out of the valid range".to_string(),
            },
            "data-range",
        );
        if let Some((Some(lo), Some(hi))) = r.valid_interval() {
            d = d.suggest(format!("use a value between {lo} and {hi}"));
        }
        Some(d)
    }

    fn check_enum(
        &self,
        e: &spex_core::constraint::EnumRange,
        occ: &Occurrence,
    ) -> Option<Diagnostic> {
        if e.alternatives.is_empty() {
            return None;
        }
        let as_int = parse_plain_int(occ.value);
        let has_int_alts = e
            .alternatives
            .iter()
            .any(|a| matches!(a.value, EnumValue::Int(_)));
        // Integer-enum parameters (switch ranges): membership over the arms.
        if let (Some(v), true) = (as_int, has_int_alts) {
            let matched = e.alternatives.iter().find(|a| a.value == EnumValue::Int(v));
            return match matched {
                Some(a) if a.valid => None,
                _ => {
                    let valid: Vec<String> = e
                        .alternatives
                        .iter()
                        .filter(|a| a.valid)
                        .map(|a| a.value.to_string())
                        .collect();
                    Some(
                        Diagnostic::new(
                            Severity::Error,
                            occ.name,
                            occ.value,
                            "is not one of the accepted values",
                            "data-range",
                        )
                        .suggest(format!("accepted values: {}", valid.join(", "))),
                    )
                }
            };
        }
        // Word-enum parameters.
        let exact = e.alternatives.iter().find(|a| match &a.value {
            EnumValue::Str(s) => {
                s == occ.value || (e.case_insensitive && s.eq_ignore_ascii_case(occ.value))
            }
            EnumValue::Int(_) => false,
        });
        if let Some(a) = exact {
            return if a.valid {
                None
            } else {
                Some(Diagnostic::new(
                    Severity::Error,
                    occ.name,
                    occ.value,
                    "is an explicitly rejected value",
                    "data-range",
                ))
            };
        }
        // Not a member: distinguish the case-mismatch trap (Figure 1's
        // iSCSI initiator-name failure) from a plainly wrong word.
        let case_twin = e.alternatives.iter().find_map(|a| match &a.value {
            EnumValue::Str(s) if s.eq_ignore_ascii_case(occ.value) => Some(s.as_str()),
            _ => None,
        });
        let valid: Vec<String> = e
            .alternatives
            .iter()
            .filter(|a| a.valid)
            .map(|a| a.value.to_string())
            .collect();
        let mut d = Diagnostic::new(
            Severity::Error,
            occ.name,
            occ.value,
            if case_twin.is_some() {
                "differs from an accepted word only by letter case, and matching here \
                 is case-sensitive"
            } else {
                "is not one of the accepted words"
            },
            "data-range",
        );
        d = match case_twin {
            Some(twin) => d.suggest(format!("write it exactly as \"{twin}\"")),
            None => d.suggest(format!("accepted values: {}", valid.join(", "))),
        };
        Some(d)
    }

    fn check_control_dep(
        &self,
        dep: &spex_core::constraint::ControlDep,
        occ: &Occurrence,
        all: &[Occurrence],
    ) -> Option<Diagnostic> {
        // Fires only when the controller is explicitly configured in the
        // same file and its value falsifies the dependency guard.
        let controller = all.iter().find(|o| o.name == dep.controller)?;
        let cv = parse_controller_value(controller.value)?;
        if dep.op.eval(cv, dep.value) {
            return None;
        }
        Some(
            Diagnostic::new(
                Severity::Warning,
                occ.name,
                occ.value,
                format!(
                    "takes effect only when \"{}\" {} {}, but line {} sets \"{}\" to \
                     \"{}\" — this setting will be silently ignored",
                    dep.controller,
                    dep.op,
                    dep.value,
                    controller.line,
                    dep.controller,
                    controller.value,
                ),
                "control-dep",
            )
            .suggest(format!(
                "enable \"{}\" or remove this setting",
                dep.controller
            )),
        )
    }

    fn check_value_rel(
        &self,
        rel: &spex_core::constraint::ValueRel,
        occ: &Occurrence,
        all: &[Occurrence],
    ) -> Option<Diagnostic> {
        // The constraint is stored under its lhs; both sides must be
        // explicitly configured for the file to violate it.
        let rhs = all.iter().find(|o| o.name == rel.rhs)?;
        let lv = parse_plain_int(occ.value)?;
        let rv = parse_plain_int(rhs.value)?;
        if rel.op.eval(lv, rv) {
            return None;
        }
        Some(
            Diagnostic::new(
                Severity::Error,
                occ.name,
                occ.value,
                format!(
                    "must satisfy \"{}\" {} \"{}\", but \"{}\" is {} (line {})",
                    rel.lhs, rel.op, rel.rhs, rel.rhs, rhs.value, rhs.line,
                ),
                "value-rel",
            )
            .suggest(format!(
                "pick values with {} {} {}",
                rel.lhs, rel.op, rel.rhs
            )),
        )
    }
}

// -- Value parsing helpers ---------------------------------------------

/// Parses a plain decimal integer (optional sign, digits only).
pub fn parse_plain_int(v: &str) -> Option<i64> {
    let t = v.trim();
    if t.is_empty() {
        return None;
    }
    t.parse::<i64>().ok()
}

/// Boolean words as the subject systems' shared on/off helpers accept
/// them.
pub fn parse_bool_word(v: &str) -> Option<bool> {
    match v.trim().to_ascii_lowercase().as_str() {
        "on" | "true" | "yes" | "1" => Some(true),
        "off" | "false" | "no" | "0" => Some(false),
        _ => None,
    }
}

/// The value of a controller parameter: boolean words or plain integers.
fn parse_controller_value(v: &str) -> Option<i64> {
    parse_plain_int(v).or_else(|| parse_bool_word(v).map(i64::from))
}

/// Splits `"512MB"` into `(512, "MB")`. Returns `None` when the value is
/// not a number followed by a recognised time/size unit suffix.
pub fn split_unit_suffix(v: &str) -> Option<(i64, &str)> {
    let t = v.trim();
    let digits_end = t
        .char_indices()
        .skip_while(|(i, c)| *i == 0 && (*c == '-' || *c == '+'))
        .find(|(_, c)| !c.is_ascii_digit())
        .map(|(i, _)| i)?;
    let (num, suffix) = t.split_at(digits_end);
    let num: i64 = num.parse().ok()?;
    let known = [
        "us", "ms", "s", "m", "h", "min", "sec", "B", "K", "KB", "M", "MB", "G", "GB", "T", "TB",
        "k", "g",
    ];
    known.contains(&suffix).then_some((num, suffix))
}

/// Inclusive bounds of an integer type. Widths outside 1..=63 (including
/// anything a hand-edited database might carry) saturate to the i64
/// bounds instead of overflowing the shift.
fn int_bounds(bits: u8, signed: bool) -> (i64, i64) {
    match (bits, signed) {
        (0 | 64.., true) => (i64::MIN, i64::MAX),
        (0 | 63.., false) => (0, i64::MAX),
        (b, true) => {
            let hi = (1i64 << (b - 1)) - 1;
            (-hi - 1, hi)
        }
        (b, false) => (0, (1i64 << b) - 1),
    }
}

/// Whether `v` is a valid dotted-quad IPv4 address.
fn is_dotted_quad(v: &str) -> bool {
    let octets: Vec<&str> = v.split('.').collect();
    octets.len() == 4
        && octets.iter().all(|o| {
            !o.is_empty()
                && o.len() <= 3
                && o.chars().all(|c| c.is_ascii_digit())
                && o.parse::<u16>().map(|n| n <= 255).unwrap_or(false)
        })
}

/// Levenshtein distance with an early-exit `cap` (returns `cap` when the
/// true distance is at least `cap`).
pub fn levenshtein(a: &str, b: &str, cap: usize) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.len().abs_diff(b.len()) >= cap {
        return cap;
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        let mut row_min = cur[0];
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
            row_min = row_min.min(cur[j + 1]);
        }
        if row_min >= cap {
            return cap;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()].min(cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spex_conf::Dialect;
    use spex_core::constraint::{
        CmpOp, Constraint, ControlDep, EnumAlternative, EnumRange, NumericRange, RangeSegment,
        ValueRel,
    };
    use spex_lang::diag::Span;

    fn c(param: &str, kind: ConstraintKind) -> Constraint {
        Constraint {
            param: param.into(),
            kind,
            in_function: "startup".into(),
            span: Span::new(1, 1),
        }
    }

    fn db() -> ConstraintDb {
        let mut db = ConstraintDb::new("Test", Dialect::KeyValue);
        db.add(c(
            "threads",
            ConstraintKind::BasicType(BasicType::Int {
                bits: 32,
                signed: true,
            }),
        ));
        db.add(c(
            "threads",
            ConstraintKind::Range(NumericRange {
                cutpoints: vec![1, 16],
                segments: vec![
                    RangeSegment {
                        lo: None,
                        hi: Some(0),
                        valid: false,
                    },
                    RangeSegment {
                        lo: Some(1),
                        hi: Some(16),
                        valid: true,
                    },
                    RangeSegment {
                        lo: Some(17),
                        hi: None,
                        valid: false,
                    },
                ],
            }),
        ));
        db.add(c(
            "log_level",
            ConstraintKind::EnumRange(EnumRange {
                alternatives: vec![
                    EnumAlternative {
                        value: EnumValue::Str("info".into()),
                        valid: true,
                    },
                    EnumAlternative {
                        value: EnumValue::Str("debug".into()),
                        valid: true,
                    },
                ],
                unmatched_is_error: true,
                unmatched_overwrites: false,
                case_insensitive: false,
            }),
        ));
        db.add(c(
            "listen_port",
            ConstraintKind::SemanticType(SemType::Port),
        ));
        db.add(c(
            "nap_s",
            ConstraintKind::SemanticType(SemType::Time(TimeUnit::Sec)),
        ));
        db.add(c(
            "poll_ms",
            ConstraintKind::SemanticType(SemType::Time(TimeUnit::Milli)),
        ));
        db.add(c(
            "spin_us",
            ConstraintKind::SemanticType(SemType::Time(TimeUnit::Micro)),
        ));
        db.add(c(
            "commit_siblings",
            ConstraintKind::ControlDep(ControlDep {
                controller: "fsync".into(),
                value: 0,
                op: CmpOp::Ne,
                dependent: "commit_siblings".into(),
                confidence: 1.0,
            }),
        ));
        db.add(c(
            "min_len",
            ConstraintKind::ValueRel(ValueRel {
                lhs: "min_len".into(),
                op: CmpOp::Lt,
                rhs: "max_len".into(),
            }),
        ));
        db.note_params(["fsync", "max_len"]);
        db
    }

    fn check(text: &str) -> Vec<Diagnostic> {
        let db = db();
        Checker::new(&db).check_text(text)
    }

    #[test]
    fn clean_config_produces_no_diagnostics() {
        let ds = check("threads = 8\nlog_level = info\nlisten_port = 8080\nnap_s = 30\n");
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn flags_non_numeric_and_overflow_and_unit_suffix() {
        assert_eq!(check("threads = not_a_number\n").len(), 1);
        // Violates both the basic-type (32-bit) and range constraints.
        let ds = check("threads = 9000000000\n");
        assert_eq!(ds.len(), 2);
        assert!(ds.iter().any(|d| d.message.contains("overflows")));
        let ds = check("threads = 9G\n");
        assert_eq!(ds.len(), 1);
        assert!(ds[0].suggestion.as_deref().unwrap().contains("suffix"));
    }

    #[test]
    fn flags_out_of_range_with_interval_suggestion() {
        let ds = check("threads = 64\n");
        assert_eq!(ds.len(), 1);
        assert!(ds[0].message.contains("[1, 16]"), "{}", ds[0]);
        assert!(ds[0]
            .suggestion
            .as_deref()
            .unwrap()
            .contains("between 1 and 16"));
        assert_eq!(ds[0].line, Some(1));
    }

    #[test]
    fn flags_case_mismatch_on_sensitive_enums() {
        let ds = check("log_level = INFO\n");
        assert_eq!(ds.len(), 1);
        assert!(ds[0].message.contains("letter case"), "{}", ds[0]);
        assert_eq!(
            ds[0].suggestion.as_deref(),
            Some("write it exactly as \"info\"")
        );
    }

    #[test]
    fn flags_unknown_word_with_accepted_set() {
        let ds = check("log_level = verbose\n");
        assert_eq!(ds.len(), 1);
        assert!(ds[0].suggestion.as_deref().unwrap().contains("info"));
    }

    #[test]
    fn port_checks_are_syntactic_without_env() {
        assert_eq!(check("listen_port = 70000\n").len(), 1);
        assert_eq!(check("listen_port = 0\n").len(), 1);
        assert!(
            check("listen_port = 80\n").is_empty(),
            "occupancy needs an env"
        );
    }

    #[test]
    fn port_occupancy_with_env() {
        let db = db();
        let mut env = StaticEnv::new();
        env.occupy_port(80);
        let ds = Checker::new(&db)
            .with_env(&env)
            .check_text("listen_port = 80\n");
        assert_eq!(ds.len(), 1);
        assert!(ds[0].message.contains("already in use"));
    }

    #[test]
    fn time_checks_flag_negative_absurd_and_suffixed() {
        assert!(check("nap_s = 30\n").is_empty());
        assert_eq!(check("nap_s = -5\n").len(), 1);
        assert_eq!(check("nap_s = 999999999\n").len(), 1);
        let ds = check("nap_s = 10ms\n");
        assert_eq!(ds.len(), 1);
        assert!(ds[0].message.contains("suffix"));
    }

    #[test]
    fn sub_second_units_have_their_own_absurdity_bar() {
        // 999999999 ms is "only" 11.5 days — under a one-year bar it
        // dodges detection, but nobody means a nine-digit millisecond
        // count: the per-unit bar (a week of ms) must flag it.
        let ds = check("poll_ms = 999999999\n");
        assert_eq!(ds.len(), 1);
        assert!(ds[0].message.contains("over a week"), "{}", ds[0]);
        // Plausible sub-second values stay clean.
        assert!(check("poll_ms = 250\n").is_empty());
        assert!(check("poll_ms = 86400000\n").is_empty(), "a day of ms");
        // Microseconds clear an even lower bar: an hour.
        let ds = check("spin_us = 10000000000\n");
        assert_eq!(ds.len(), 1);
        assert!(ds[0].message.contains("over an hour"), "{}", ds[0]);
        assert!(check("spin_us = 500000\n").is_empty());
        // Coarse units keep the original year bar.
        assert!(check("nap_s = 86400\n").is_empty());
    }

    #[test]
    fn control_dep_warns_only_when_controller_disables() {
        assert!(check("commit_siblings = 5\nfsync = on\n").is_empty());
        assert!(
            check("commit_siblings = 5\n").is_empty(),
            "controller unset"
        );
        let ds = check("commit_siblings = 5\nfsync = off\n");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].severity, Severity::Warning);
        assert!(ds[0].message.contains("silently ignored"));
    }

    #[test]
    fn value_rel_flags_violating_pairs() {
        assert!(check("min_len = 4\nmax_len = 84\n").is_empty());
        let ds = check("min_len = 90\nmax_len = 84\n");
        assert_eq!(ds.len(), 1);
        assert!(ds[0].message.contains("must satisfy"));
    }

    #[test]
    fn unknown_key_gets_edit_distance_suggestion() {
        let ds = check("thread = 8\n");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].category, "unknown-key");
        assert_eq!(
            ds[0].suggestion.as_deref(),
            Some("did you mean \"threads\"?")
        );
    }

    #[test]
    fn unknown_key_detects_wrong_case() {
        let ds = check("Threads = 8\n");
        assert_eq!(ds.len(), 1);
        assert!(ds[0]
            .suggestion
            .as_deref()
            .unwrap()
            .contains("case-sensitive"));
    }

    #[test]
    fn duplicate_keys_are_each_checked() {
        let ds = check("threads = 8\nthreads = 99\n");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].line, Some(2));
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("kitten", "sitting", 10), 3);
        assert_eq!(levenshtein("abc", "abc", 10), 0);
        assert_eq!(levenshtein("abc", "zzzzzz", 2), 2, "capped");
    }

    #[test]
    fn unit_suffix_splitting() {
        assert_eq!(split_unit_suffix("512MB"), Some((512, "MB")));
        assert_eq!(split_unit_suffix("9G"), Some((9, "G")));
        assert_eq!(split_unit_suffix("10ms"), Some((10, "ms")));
        assert_eq!(split_unit_suffix("42"), None);
        assert_eq!(split_unit_suffix("hello"), None);
        assert_eq!(split_unit_suffix("12half"), None);
    }
}
