//! The borrowed checking engine: one [`CheckSession`] per constraint
//! database, no copies, every front-end.
//!
//! A `CheckSession<'db>` *borrows* its [`ConstraintDb`] — constructing one
//! builds a name index but never clones a constraint, so "check on every
//! edit" costs per-file work only. It is the single implementation behind
//! [`Workspace::check_text`](crate::Workspace::check_text) and
//! [`Workspace::check_paths`](crate::Workspace::check_paths) (which cache
//! a session until the database changes).
//!
//! Each setting in a file is vetted against every constraint inferred for
//! its parameter: basic-type conformance, semantic-type plausibility
//! (unit-aware for time and size parameters), numeric- and enumerative-
//! range membership, control-dependency activation, and cross-parameter
//! value relationships. Keys not present in the database are reported with
//! an edit-distance "did you mean" suggestion. Every finding carries a
//! stable [`DiagCode`], the violated constraint's provenance (module +
//! function + span, from the v2 database) and, where computable, a
//! machine-applicable [`Fix`].
//!
//! # Example
//!
//! ```
//! use spex_check::{CheckSession, ConstraintDb};
//! use spex_conf::Dialect;
//! use spex_core::constraint::{
//!     Constraint, ConstraintKind, DiagCode, NumericRange, RangeSegment,
//! };
//!
//! let mut db = ConstraintDb::new("demo", Dialect::KeyValue);
//! db.add(Constraint {
//!     param: "listener-threads".into(),
//!     kind: ConstraintKind::Range(NumericRange {
//!         cutpoints: vec![1, 16],
//!         segments: vec![
//!             RangeSegment { lo: None, hi: Some(0), valid: false },
//!             RangeSegment { lo: Some(1), hi: Some(16), valid: true },
//!             RangeSegment { lo: Some(17), hi: None, valid: false },
//!         ],
//!     }),
//!     in_function: "startup".into(),
//!     span: spex_lang::diag::Span::new(40, 9),
//! });
//!
//! let session = CheckSession::new(&db); // borrows; zero copies
//! let diags = session.check_text("listener-threads = 9999\n");
//! assert_eq!(diags.len(), 1);
//! assert_eq!(diags[0].code, DiagCode::Range);
//! assert!(diags[0].fix.is_some(), "clamping to [1, 16] is computable");
//! ```

use crate::db::{ConstraintDb, ParamEntry};
use crate::diag::{Diagnostic, Fix, Severity};
use crate::env::Environment;
use crate::pool;
use crate::report::{FileReport, Report};
use spex_conf::{ConfFile, Entry};
use spex_core::constraint::{
    BasicType, CmpOp, ConstraintKind, DiagCode, EnumValue, SemType, SizeUnit, TimeUnit,
};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// Absurdity bar for a time value, in the parameter's own unit (the
/// paper's injection rule plants "absurdly large time value"s).
///
/// The bar is per-unit: a single "over a year" bar lets sub-second units
/// dodge it — `999999999 ms` is "only" 11.5 days, yet nobody writes a
/// nine-digit millisecond count on purpose; they mistook the unit.
/// Sub-second units express fine-grained intervals, so they must clear a
/// proportionally lower bar.
fn absurd_time_bar(unit: TimeUnit) -> (i64, &'static str) {
    match unit {
        // One hour of microseconds.
        TimeUnit::Micro => (3600 * 1_000_000, "an hour"),
        // One week of milliseconds.
        TimeUnit::Milli => (7 * 24 * 3600 * 1000, "a week"),
        // One year for coarse units.
        TimeUnit::Sec => (366 * 24 * 3600, "a year"),
        TimeUnit::Min => (366 * 24 * 60, "a year"),
        TimeUnit::Hour => (366 * 24, "a year"),
    }
}

/// The parameter-name index a session answers lookups from. Owned (no
/// borrows into the database), so [`Workspace`](crate::Workspace) can
/// cache one across calls and hand it to each fresh session.
#[derive(Debug, Default)]
pub(crate) struct ParamIndex {
    /// Exact name → position in `db.params`.
    by_name: HashMap<String, usize>,
    /// ASCII-lowercased name → first matching position (wrong-case
    /// suggestions and case-insensitive key mode).
    by_lower: HashMap<String, usize>,
    /// ASCII-lowercased name per position (parallel to `db.params`), so
    /// case-insensitive did-you-mean scans never re-lowercase the db.
    lowered: Vec<String>,
}

impl ParamIndex {
    /// Indexes every parameter of `db` (the only O(db) step of building a
    /// session; no constraint is copied).
    pub(crate) fn build(db: &ConstraintDb) -> ParamIndex {
        let mut index = ParamIndex {
            by_name: HashMap::with_capacity(db.params.len()),
            by_lower: HashMap::with_capacity(db.params.len()),
            lowered: Vec::with_capacity(db.params.len()),
        };
        for (i, p) in db.params.iter().enumerate() {
            index.by_name.entry(p.name.clone()).or_insert(i);
            let lower = p.name.to_ascii_lowercase();
            index.by_lower.entry(lower.clone()).or_insert(i);
            index.lowered.push(lower);
        }
        index
    }
}

/// The borrowed validation engine for one system (see the module docs).
pub struct CheckSession<'db> {
    db: &'db ConstraintDb,
    index: Arc<ParamIndex>,
    env: Option<&'db (dyn Environment + Sync)>,
    threads: usize,
    max_suggest_distance: usize,
    case_insensitive_keys: bool,
    recorder: Option<Arc<spex_obs::Recorder>>,
}

/// One setting occurrence in the file, with its serialized line number.
struct Occurrence<'c> {
    name: &'c str,
    value: &'c str,
    line: usize,
}

impl<'db> CheckSession<'db> {
    /// A session over a borrowed database, with no environment model.
    pub fn new(db: &'db ConstraintDb) -> CheckSession<'db> {
        CheckSession::with_index(db, Arc::new(ParamIndex::build(db)))
    }

    /// A session reusing a prebuilt index for `db` (the workspace cache
    /// path; `index` must have been built from this exact `db` state).
    pub(crate) fn with_index(db: &'db ConstraintDb, index: Arc<ParamIndex>) -> CheckSession<'db> {
        CheckSession {
            db,
            index,
            env: None,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            max_suggest_distance: 3,
            case_insensitive_keys: false,
            recorder: None,
        }
    }

    /// Attaches a telemetry recorder: every check run through this session
    /// records per-file spans, per-constraint-kind timings and
    /// diagnostics-emitted counters into it, including work done on the
    /// multi-file worker pool. Without one, checking records nothing
    /// (beyond whatever recorder the calling thread itself installed).
    pub fn with_recorder(mut self, recorder: Arc<spex_obs::Recorder>) -> CheckSession<'db> {
        self.recorder = Some(recorder);
        self
    }

    /// Attaches an environment model enabling existence checks.
    pub fn with_env(mut self, env: &'db (dyn Environment + Sync)) -> CheckSession<'db> {
        self.env = Some(env);
        self
    }

    /// Overrides the worker-thread count for multi-file checking.
    pub fn with_threads(mut self, threads: usize) -> CheckSession<'db> {
        self.threads = threads.max(1);
        self
    }

    /// Overrides the maximum Levenshtein distance for "did you mean"
    /// suggestions.
    pub fn with_max_suggest_distance(mut self, distance: usize) -> CheckSession<'db> {
        self.max_suggest_distance = distance;
        self
    }

    /// Treats parameter names as case-insensitive: a key differing from a
    /// known parameter only by letter case is checked against that
    /// parameter instead of being flagged unknown, and did-you-mean
    /// suggestions compare case-insensitively. Off by default (most
    /// subject systems match keys exactly; see the paper's Figure 1).
    pub fn case_insensitive_keys(mut self, enabled: bool) -> CheckSession<'db> {
        self.case_insensitive_keys = enabled;
        self
    }

    /// The borrowed database.
    pub fn db(&self) -> &'db ConstraintDb {
        self.db
    }

    fn entry(&self, name: &str) -> Option<&'db ParamEntry> {
        if let Some(&i) = self.index.by_name.get(name) {
            return self.db.params.get(i);
        }
        if self.case_insensitive_keys {
            if let Some(&i) = self.index.by_lower.get(&name.to_ascii_lowercase()) {
                return self.db.params.get(i);
            }
        }
        None
    }

    /// A known parameter differing from `name` only by ASCII case.
    fn case_twin(&self, name: &str) -> Option<&'db ParamEntry> {
        self.index
            .by_lower
            .get(&name.to_ascii_lowercase())
            .and_then(|&i| self.db.params.get(i))
    }

    // -- Single-file checking -------------------------------------------

    /// Parses `text` under the database's dialect and checks it.
    pub fn check_text(&self, text: &str) -> Vec<Diagnostic> {
        self.check(&ConfFile::parse(text, self.db.dialect))
    }

    /// Checks a parsed config file, returning diagnostics in file order.
    /// Cross-parameter findings (control dependencies, value relation-
    /// ships) are attached to the constrained setting — the dependent or
    /// left-hand side — wherever it appears in the file.
    pub fn check(&self, conf: &ConfFile) -> Vec<Diagnostic> {
        // Installing here (not only in the batch entry points) keeps the
        // span tree identical whether a file is checked inline or on a
        // worker: `check.file` is always a fresh top-level span.
        let _telemetry = self.recorder.as_ref().map(spex_obs::install);
        let _span = spex_obs::span("check.file");
        let started = spex_obs::clock();
        let occurrences: Vec<Occurrence> = conf
            .entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| match e {
                Entry::Setting { name, args } => Some(Occurrence {
                    name,
                    value: args.first().map(|s| s.as_str()).unwrap_or(""),
                    line: i + 1,
                }),
                _ => None,
            })
            .collect();

        let mut out = Vec::new();
        for occ in &occurrences {
            match self.entry(occ.name) {
                Some(entry) => self.check_setting(entry, occ, &occurrences, &mut out),
                None => out.push(self.unknown_key(occ)),
            }
        }
        if spex_obs::enabled() {
            spex_obs::counter("check.files", 1);
            spex_obs::counter("check.settings", occurrences.len() as u64);
            spex_obs::counter("check.diagnostics", out.len() as u64);
            for d in &out {
                spex_obs::counter(&format!("check.diag.{}", d.code.as_str()), 1);
            }
            spex_obs::observe_elapsed("check.file_ns", started);
        }
        out
    }

    /// Checks one labelled text, packaging the findings as a
    /// [`FileReport`] under the database's system.
    pub fn check_file(&self, label: impl Into<String>, text: &str) -> FileReport {
        FileReport::new(self.db.system.clone(), label, self.check_text(text))
    }

    // -- Multi-file checking --------------------------------------------

    /// Checks many in-memory `(label, text)` files on the worker pool,
    /// returning a [`Report`] in input order.
    pub fn check_texts<L, T>(&self, files: &[(L, T)]) -> Report
    where
        L: AsRef<str> + Sync,
        T: AsRef<str> + Sync,
    {
        let _telemetry = self.recorder.as_ref().map(spex_obs::install);
        let _span = spex_obs::span("check.batch");
        let reports = pool::run_indexed(self.threads, files.len(), self.recorder.as_ref(), |i| {
            let (label, text) = &files[i];
            self.check_file(label.as_ref(), text.as_ref())
        });
        Report::from_files(reports)
    }

    /// Streaming validation of files and directory trees: walks `roots`
    /// (files, or directories descended in sorted order), then validates
    /// every discovered file on the worker pool. Each worker reads one
    /// file at a time and drops the text once checked, so memory stays
    /// bounded by the thread count no matter how large the corpus is.
    /// Reports come back in walk order; a file that disappears or cannot
    /// be read mid-run yields a report with
    /// [`read_error`](FileReport::read_error) set rather than aborting
    /// the run. Only nonexistent roots are a hard error.
    pub fn check_paths<P: AsRef<Path>>(&self, roots: &[P]) -> std::io::Result<Report> {
        let _telemetry = self.recorder.as_ref().map(spex_obs::install);
        let _span = spex_obs::span("check.paths");
        let files = pool::walk_roots(roots)?;
        let reports = pool::run_indexed(self.threads, files.len(), self.recorder.as_ref(), |i| {
            let entry = &files[i];
            let label = entry.path.display().to_string();
            let unreadable = |message: String| FileReport {
                system: self.db.system.clone(),
                file: label.clone(),
                diagnostics: Vec::new(),
                unknown_system: false,
                read_error: Some(message),
            };
            if let Some(e) = &entry.walk_error {
                return unreadable(e.clone());
            }
            // Refuse non-regular files *before* opening them: reading a
            // FIFO with no writer blocks forever, and a device file can
            // yield unbounded garbage.
            match std::fs::metadata(&entry.path) {
                Ok(m) if !m.is_file() => {
                    return unreadable("not a regular file".to_string());
                }
                _ => {}
            }
            match std::fs::read_to_string(&entry.path) {
                Ok(text) => self.check_file(label, &text),
                Err(e) => unreadable(e.to_string()),
            }
        });
        Ok(Report::from_files(reports))
    }

    // -- Unknown keys ----------------------------------------------------

    fn unknown_key(&self, occ: &Occurrence) -> Diagnostic {
        let mut d = Diagnostic::new(
            Severity::Error,
            occ.name,
            occ.value,
            "unknown configuration parameter",
            DiagCode::UnknownKey,
        )
        .at_line(occ.line);
        // A case twin is only meaningful when keys are case-*sensitive*
        // (in insensitive mode the lookup would have matched it already).
        if !self.case_insensitive_keys {
            if let Some(entry) = self.case_twin(occ.name) {
                return d
                    .suggest(format!(
                        "parameter names are case-sensitive here; did you mean \"{}\"?",
                        entry.name
                    ))
                    .with_fix(Fix::RenameKey {
                        from: occ.name.to_string(),
                        to: entry.name.clone(),
                    });
            }
        }
        let lowered;
        let needle = if self.case_insensitive_keys {
            lowered = occ.name.to_ascii_lowercase();
            lowered.as_str()
        } else {
            occ.name
        };
        let mut best: Option<(usize, &str)> = None;
        for (i, p) in self.db.params.iter().enumerate() {
            // In case-insensitive mode compare against the lowered names
            // the index already computed at build time.
            let candidate = if self.case_insensitive_keys {
                self.index.lowered[i].as_str()
            } else {
                p.name.as_str()
            };
            let dist = levenshtein(needle, candidate, self.max_suggest_distance + 1);
            if dist <= self.max_suggest_distance && best.map(|(b, _)| dist < b).unwrap_or(true) {
                best = Some((dist, p.name.as_str()));
            }
        }
        if let Some((_, known)) = best {
            d = d
                .suggest(format!("did you mean \"{known}\"?"))
                .with_fix(Fix::RenameKey {
                    from: occ.name.to_string(),
                    to: known.to_string(),
                });
        }
        d
    }

    // -- Per-setting checks ----------------------------------------------

    fn check_setting(
        &self,
        entry: &ParamEntry,
        occ: &Occurrence,
        all: &[Occurrence],
        out: &mut Vec<Diagnostic>,
    ) {
        // A value that matches a word alternative of one of the parameter's
        // enumerative constraints is a word-typed setting ("on", "full");
        // numeric basic-type and range checks do not apply to it.
        let word_ok = entry.constraints.iter().any(|c| match &c.kind {
            ConstraintKind::EnumRange(e) => e.alternatives.iter().any(|a| match &a.value {
                EnumValue::Str(s) => {
                    a.valid
                        && (s == occ.value
                            || (e.case_insensitive && s.eq_ignore_ascii_case(occ.value)))
                }
                EnumValue::Int(_) => false,
            }),
            _ => false,
        });

        for (c, module) in entry.with_provenance() {
            let started = spex_obs::clock();
            let diag = match &c.kind {
                ConstraintKind::BasicType(bt) => {
                    if word_ok {
                        None
                    } else {
                        self.check_basic(bt, occ)
                    }
                }
                ConstraintKind::SemanticType(st) => self.check_semantic(st, occ),
                ConstraintKind::Range(r) => {
                    if word_ok {
                        None
                    } else {
                        self.check_range(r, occ)
                    }
                }
                ConstraintKind::EnumRange(e) => self.check_enum(e, occ),
                ConstraintKind::ControlDep(d) => self.check_control_dep(d, occ, all),
                ConstraintKind::ValueRel(r) => self.check_value_rel(r, occ, all),
            };
            spex_obs::observe_elapsed(kind_timing_metric(&c.kind), started);
            if let Some(d) = diag {
                out.push(
                    d.at_line(occ.line)
                        .from_origin(module, &c.in_function, c.span),
                );
            }
        }
    }

    fn check_basic(&self, bt: &BasicType, occ: &Occurrence) -> Option<Diagnostic> {
        match bt {
            BasicType::Str | BasicType::Enum => None,
            BasicType::Bool => {
                if parse_bool_word(occ.value).is_some() {
                    None
                } else {
                    Some(
                        Diagnostic::new(
                            Severity::Error,
                            occ.name,
                            occ.value,
                            "expects a boolean",
                            DiagCode::BasicType,
                        )
                        .suggest("use \"on\" or \"off\""),
                    )
                }
            }
            BasicType::Int { bits, signed } => match parse_plain_int(occ.value) {
                Some(v) => {
                    let (lo, hi) = int_bounds(*bits, *signed);
                    if v < lo || v > hi {
                        Some(
                            Diagnostic::new(
                                Severity::Error,
                                occ.name,
                                occ.value,
                                format!("overflows the {bt} the system stores it in"),
                                DiagCode::BasicType,
                            )
                            .suggest(format!("use a value between {lo} and {hi}")),
                        )
                    } else {
                        None
                    }
                }
                None => {
                    let mut d = Diagnostic::new(
                        Severity::Error,
                        occ.name,
                        occ.value,
                        format!("expects a {bt}"),
                        DiagCode::BasicType,
                    );
                    if let Some((_, suffix)) = split_unit_suffix(occ.value) {
                        d = d.suggest(format!(
                            "the system parses this with an integer API and would silently \
                             drop the \"{suffix}\" suffix; write the value converted to base \
                             units, without a suffix"
                        ));
                    }
                    Some(d)
                }
            },
            BasicType::Float { .. } => {
                if occ.value.parse::<f64>().is_ok() {
                    None
                } else {
                    Some(Diagnostic::new(
                        Severity::Error,
                        occ.name,
                        occ.value,
                        format!("expects a {bt}"),
                        DiagCode::BasicType,
                    ))
                }
            }
        }
    }

    fn check_semantic(&self, st: &SemType, occ: &Occurrence) -> Option<Diagnostic> {
        let v = occ.value;
        match st {
            SemType::FilePath => {
                let env = self.env?;
                if env.file_exists(v) {
                    None
                } else if env.dir_exists(v) {
                    Some(
                        Diagnostic::new(
                            Severity::Error,
                            occ.name,
                            v,
                            "names a directory, but a regular file is expected",
                            DiagCode::SemanticType,
                        )
                        .suggest("point it at a file inside the directory"),
                    )
                } else {
                    Some(Diagnostic::new(
                        Severity::Error,
                        occ.name,
                        v,
                        "file does not exist",
                        DiagCode::SemanticType,
                    ))
                }
            }
            SemType::DirPath => {
                let env = self.env?;
                if env.dir_exists(v) {
                    None
                } else if env.file_exists(v) {
                    Some(Diagnostic::new(
                        Severity::Error,
                        occ.name,
                        v,
                        "names a regular file, but a directory is expected",
                        DiagCode::SemanticType,
                    ))
                } else {
                    Some(Diagnostic::new(
                        Severity::Error,
                        occ.name,
                        v,
                        "directory does not exist",
                        DiagCode::SemanticType,
                    ))
                }
            }
            SemType::Port => {
                let port = match parse_plain_int(v) {
                    Some(p) if (1..=65535).contains(&p) => p as u16,
                    Some(p) => {
                        return Some(
                            Diagnostic::new(
                                Severity::Error,
                                occ.name,
                                v,
                                format!("{p} is outside the valid TCP/UDP port range"),
                                DiagCode::SemanticType,
                            )
                            .suggest("use a port between 1 and 65535"),
                        )
                    }
                    None => {
                        return Some(Diagnostic::new(
                            Severity::Error,
                            occ.name,
                            v,
                            "expects a numeric port",
                            DiagCode::SemanticType,
                        ))
                    }
                };
                if self.env.map(|e| e.port_in_use(port)).unwrap_or(false) {
                    Some(Diagnostic::new(
                        Severity::Error,
                        occ.name,
                        v,
                        format!("port {port} is already in use by another process"),
                        DiagCode::SemanticType,
                    ))
                } else {
                    None
                }
            }
            SemType::IpAddr => {
                if is_dotted_quad(v) {
                    None
                } else {
                    Some(Diagnostic::new(
                        Severity::Error,
                        occ.name,
                        v,
                        "is not a dotted-quad IP address",
                        DiagCode::SemanticType,
                    ))
                }
            }
            SemType::Hostname => {
                let env = self.env?;
                if env.host_resolves(v) {
                    None
                } else {
                    Some(Diagnostic::new(
                        Severity::Error,
                        occ.name,
                        v,
                        "host name does not resolve",
                        DiagCode::SemanticType,
                    ))
                }
            }
            SemType::UserName => {
                let env = self.env?;
                if env.user_exists(v) {
                    None
                } else {
                    Some(Diagnostic::new(
                        Severity::Error,
                        occ.name,
                        v,
                        "unknown user",
                        DiagCode::SemanticType,
                    ))
                }
            }
            SemType::GroupName => {
                let env = self.env?;
                if env.group_exists(v) {
                    None
                } else {
                    Some(Diagnostic::new(
                        Severity::Error,
                        occ.name,
                        v,
                        "unknown group",
                        DiagCode::SemanticType,
                    ))
                }
            }
            SemType::Time(unit) => self.check_time(*unit, occ),
            SemType::Size(unit) => self.check_size(*unit, occ),
            SemType::Permission => {
                let ok =
                    !v.is_empty() && v.len() <= 4 && v.chars().all(|c| ('0'..='7').contains(&c));
                if ok {
                    None
                } else {
                    Some(
                        Diagnostic::new(
                            Severity::Error,
                            occ.name,
                            v,
                            "is not an octal permission mask",
                            DiagCode::SemanticType,
                        )
                        .suggest("use up to four octal digits, e.g. 0644"),
                    )
                }
            }
        }
    }

    fn check_time(&self, unit: TimeUnit, occ: &Occurrence) -> Option<Diagnostic> {
        if let Some((_, suffix)) = split_unit_suffix(occ.value) {
            // An explicit unit that differs from what the code expects is
            // the paper's Figure 5(a)/7(d) trap: the integer parser drops
            // the suffix and silently mis-scales the value.
            let mut d = Diagnostic::new(
                Severity::Error,
                occ.name,
                occ.value,
                format!(
                    "carries a \"{suffix}\" unit suffix, but the system reads a plain \
                     number of {unit}"
                ),
                DiagCode::SemanticType,
            );
            // The conversion is computable, so repair it, not just report
            // it: `10s` for a milliseconds parameter becomes `10000`.
            let bar = absurd_time_bar(unit).0;
            match suffix_conversion(occ.value, SuffixKind::Time(unit.in_micros()))
                .filter(|&c| c <= bar && self.fix_value_is_clean(occ.name, c))
            {
                Some(converted) => {
                    d = d
                        .suggest(format!("write it as \"{converted}\" ({unit}, no suffix)"))
                        .with_fix(Fix::ReplaceValue {
                            param: occ.name.to_string(),
                            value: converted.to_string(),
                        });
                }
                None => {
                    d = d.suggest(format!(
                        "write the value converted to {unit}, without a suffix"
                    ));
                }
            }
            return Some(d);
        }
        let v = parse_plain_int(occ.value)?;
        if v < 0 {
            return Some(Diagnostic::new(
                Severity::Error,
                occ.name,
                occ.value,
                "time durations cannot be negative",
                DiagCode::SemanticType,
            ));
        }
        let (bar, human) = absurd_time_bar(unit);
        if v > bar {
            return Some(Diagnostic::new(
                Severity::Error,
                occ.name,
                occ.value,
                format!("{v} {unit} is over {human} — almost certainly a unit mistake"),
                DiagCode::SemanticType,
            ));
        }
        None
    }

    fn check_size(&self, unit: SizeUnit, occ: &Occurrence) -> Option<Diagnostic> {
        if let Some((_, suffix)) = split_unit_suffix(occ.value) {
            let mut d = Diagnostic::new(
                Severity::Error,
                occ.name,
                occ.value,
                format!(
                    "carries a \"{suffix}\" unit suffix, but the system reads a plain \
                     number of {unit}"
                ),
                DiagCode::SemanticType,
            );
            match suffix_conversion(occ.value, SuffixKind::Size(unit.in_bytes()))
                .filter(|&c| self.fix_value_is_clean(occ.name, c))
            {
                Some(converted) => {
                    d = d
                        .suggest(format!("write it as \"{converted}\" ({unit}, no suffix)"))
                        .with_fix(Fix::ReplaceValue {
                            param: occ.name.to_string(),
                            value: converted.to_string(),
                        });
                }
                None => {
                    d = d.suggest(format!(
                        "write the value converted to {unit}, without a suffix"
                    ));
                }
            }
            return Some(d);
        }
        let v = parse_plain_int(occ.value)?;
        if v < 0 {
            return Some(Diagnostic::new(
                Severity::Error,
                occ.name,
                occ.value,
                "sizes cannot be negative",
                DiagCode::SemanticType,
            ));
        }
        None
    }

    /// Whether `value` would pass every numeric range constraint on the
    /// parameter. A fix must never introduce a new finding, so a unit
    /// conversion is only emitted as machine-applicable when the converted
    /// value checks clean; otherwise the diagnostic keeps its prose
    /// suggestion and the user decides.
    fn fix_value_is_clean(&self, name: &str, value: i64) -> bool {
        self.entry(name).is_none_or(|e| {
            e.constraints.iter().all(|c| match &c.kind {
                ConstraintKind::Range(r) => r.is_valid(value),
                _ => true,
            })
        })
    }

    fn check_range(
        &self,
        r: &spex_core::constraint::NumericRange,
        occ: &Occurrence,
    ) -> Option<Diagnostic> {
        let v = parse_plain_int(occ.value)?;
        if r.is_valid(v) {
            return None;
        }
        let interval = r.valid_interval();
        let mut d = Diagnostic::new(
            Severity::Error,
            occ.name,
            occ.value,
            match interval {
                Some((lo, hi)) => format!(
                    "out of the valid range [{}, {}]",
                    lo.map(|v| v.to_string()).unwrap_or_else(|| "-inf".into()),
                    hi.map(|v| v.to_string()).unwrap_or_else(|| "+inf".into()),
                ),
                None => "out of the valid range".to_string(),
            },
            DiagCode::Range,
        );
        if let Some((Some(lo), Some(hi))) = interval {
            d = d.suggest(format!("use a value between {lo} and {hi}"));
        }
        // Clamping to the nearest valid bound is machine-applicable when
        // the value overshoots a known edge of the valid interval.
        if let Some((lo, hi)) = interval {
            let clamped = match (lo, hi) {
                (Some(lo), _) if v < lo => Some(lo),
                (_, Some(hi)) if v > hi => Some(hi),
                _ => None,
            };
            if let Some(c) = clamped.filter(|c| r.is_valid(*c)) {
                d = d.with_fix(Fix::ReplaceValue {
                    param: occ.name.to_string(),
                    value: c.to_string(),
                });
            }
        }
        Some(d)
    }

    fn check_enum(
        &self,
        e: &spex_core::constraint::EnumRange,
        occ: &Occurrence,
    ) -> Option<Diagnostic> {
        if e.alternatives.is_empty() {
            return None;
        }
        let as_int = parse_plain_int(occ.value);
        let has_int_alts = e
            .alternatives
            .iter()
            .any(|a| matches!(a.value, EnumValue::Int(_)));
        // Integer-enum parameters (switch ranges): membership over the arms.
        if let (Some(v), true) = (as_int, has_int_alts) {
            let matched = e.alternatives.iter().find(|a| a.value == EnumValue::Int(v));
            return match matched {
                Some(a) if a.valid => None,
                _ => {
                    let valid: Vec<String> = e
                        .alternatives
                        .iter()
                        .filter(|a| a.valid)
                        .map(|a| a.value.to_string())
                        .collect();
                    Some(
                        Diagnostic::new(
                            Severity::Error,
                            occ.name,
                            occ.value,
                            "is not one of the accepted values",
                            DiagCode::Enum,
                        )
                        .suggest(format!("accepted values: {}", valid.join(", "))),
                    )
                }
            };
        }
        // Word-enum parameters.
        let exact = e.alternatives.iter().find(|a| match &a.value {
            EnumValue::Str(s) => {
                s == occ.value || (e.case_insensitive && s.eq_ignore_ascii_case(occ.value))
            }
            EnumValue::Int(_) => false,
        });
        if let Some(a) = exact {
            return if a.valid {
                None
            } else {
                Some(Diagnostic::new(
                    Severity::Error,
                    occ.name,
                    occ.value,
                    "is an explicitly rejected value",
                    DiagCode::Enum,
                ))
            };
        }
        // Not a member: distinguish the case-mismatch trap (Figure 1's
        // iSCSI initiator-name failure) from a plainly wrong word.
        let case_twin = e.alternatives.iter().find_map(|a| match &a.value {
            EnumValue::Str(s) if s.eq_ignore_ascii_case(occ.value) => Some(s.as_str()),
            _ => None,
        });
        let valid: Vec<String> = e
            .alternatives
            .iter()
            .filter(|a| a.valid)
            .map(|a| a.value.to_string())
            .collect();
        let mut d = Diagnostic::new(
            Severity::Error,
            occ.name,
            occ.value,
            if case_twin.is_some() {
                "differs from an accepted word only by letter case, and matching here \
                 is case-sensitive"
            } else {
                "is not one of the accepted words"
            },
            DiagCode::Enum,
        );
        d = match case_twin {
            Some(twin) => d
                .suggest(format!("write it exactly as \"{twin}\""))
                .with_fix(Fix::ReplaceValue {
                    param: occ.name.to_string(),
                    value: twin.to_string(),
                }),
            None => {
                // The nearest accepted word by edit distance is a
                // machine-applicable repair (paper: "did you mean").
                let nearest = e
                    .alternatives
                    .iter()
                    .filter(|a| a.valid)
                    .filter_map(|a| match &a.value {
                        EnumValue::Str(s) => Some((
                            levenshtein(occ.value, s, self.max_suggest_distance + 1),
                            s.as_str(),
                        )),
                        EnumValue::Int(_) => None,
                    })
                    .filter(|(dist, _)| *dist <= self.max_suggest_distance)
                    .min_by_key(|(dist, _)| *dist);
                let mut d = d.suggest(format!("accepted values: {}", valid.join(", ")));
                if let Some((_, word)) = nearest {
                    d = d.with_fix(Fix::ReplaceValue {
                        param: occ.name.to_string(),
                        value: word.to_string(),
                    });
                }
                d
            }
        };
        Some(d)
    }

    fn check_control_dep(
        &self,
        dep: &spex_core::constraint::ControlDep,
        occ: &Occurrence,
        all: &[Occurrence],
    ) -> Option<Diagnostic> {
        // Fires only when the controller is explicitly configured in the
        // same file and its value falsifies the dependency guard.
        let controller = all.iter().find(|o| o.name == dep.controller)?;
        let cv = parse_controller_value(controller.value)?;
        if dep.op.eval(cv, dep.value) {
            return None;
        }
        let mut d = Diagnostic::new(
            Severity::Warning,
            occ.name,
            occ.value,
            format!(
                "takes effect only when \"{}\" {} {}, but line {} sets \"{}\" to \
                 \"{}\" — this setting will be silently ignored",
                dep.controller,
                dep.op,
                dep.value,
                controller.line,
                dep.controller,
                controller.value,
            ),
            DiagCode::ControlDep,
        )
        .suggest(format!(
            "enable \"{}\" or remove this setting",
            dep.controller
        ));
        // The machine repair touches the *controller*, not the violation
        // site: rewrite its value to the nearest one satisfying the
        // guard, rendered in the style the file already uses (bool word
        // vs. plain integer), and only when the new value checks clean
        // against the controller's own constraints.
        let target = match dep.op {
            CmpOp::Eq | CmpOp::Ge | CmpOp::Le => dep.value,
            CmpOp::Ne | CmpOp::Gt => dep.value + 1,
            CmpOp::Lt => dep.value - 1,
        };
        if self.fix_value_is_clean(&dep.controller, target) {
            let wrote_bool_word = parse_plain_int(controller.value).is_none()
                && parse_bool_word(controller.value).is_some();
            let value = if wrote_bool_word && (target == 0 || target == 1) {
                if target == 1 { "on" } else { "off" }.to_string()
            } else {
                target.to_string()
            };
            d = d.with_fix(Fix::ReplaceValue {
                param: dep.controller.clone(),
                value,
            });
        }
        Some(d)
    }

    fn check_value_rel(
        &self,
        rel: &spex_core::constraint::ValueRel,
        occ: &Occurrence,
        all: &[Occurrence],
    ) -> Option<Diagnostic> {
        // The constraint is stored under its lhs; both sides must be
        // explicitly configured for the file to violate it.
        let rhs = all.iter().find(|o| o.name == rel.rhs)?;
        let lv = parse_plain_int(occ.value)?;
        let rv = parse_plain_int(rhs.value)?;
        if rel.op.eval(lv, rv) {
            return None;
        }
        Some(
            Diagnostic::new(
                Severity::Error,
                occ.name,
                occ.value,
                format!(
                    "must satisfy \"{}\" {} \"{}\", but \"{}\" is {} (line {})",
                    rel.lhs, rel.op, rel.rhs, rel.rhs, rhs.value, rhs.line,
                ),
                DiagCode::ValueRel,
            )
            .suggest(format!(
                "pick values with {} {} {}",
                rel.lhs, rel.op, rel.rhs
            )),
        )
    }
}

/// The per-constraint-kind timing histogram a `check_setting` dispatch
/// records into (static names: no allocation on the hot path).
fn kind_timing_metric(kind: &ConstraintKind) -> &'static str {
    match kind {
        ConstraintKind::BasicType(_) => "check.kind.basic_type_ns",
        ConstraintKind::SemanticType(_) => "check.kind.semantic_type_ns",
        ConstraintKind::Range(_) => "check.kind.range_ns",
        ConstraintKind::EnumRange(_) => "check.kind.enum_range_ns",
        ConstraintKind::ControlDep(_) => "check.kind.control_dep_ns",
        ConstraintKind::ValueRel(_) => "check.kind.value_rel_ns",
    }
}

// -- Value parsing helpers ---------------------------------------------

/// Parses a plain decimal integer (optional sign, digits only).
pub fn parse_plain_int(v: &str) -> Option<i64> {
    let t = v.trim();
    if t.is_empty() {
        return None;
    }
    t.parse::<i64>().ok()
}

/// Boolean words as the subject systems' shared on/off helpers accept
/// them.
pub fn parse_bool_word(v: &str) -> Option<bool> {
    match v.trim().to_ascii_lowercase().as_str() {
        "on" | "true" | "yes" | "1" => Some(true),
        "off" | "false" | "no" | "0" => Some(false),
        _ => None,
    }
}

/// The value of a controller parameter: boolean words or plain integers.
fn parse_controller_value(v: &str) -> Option<i64> {
    parse_plain_int(v).or_else(|| parse_bool_word(v).map(i64::from))
}

/// A decimal magnitude `mantissa / 10^scale`, kept exact (no float
/// rounding) so unit conversions are emitted as machine fixes only when
/// the converted value really is the written one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Decimal {
    mantissa: i128,
    scale: u32,
}

impl Decimal {
    fn as_f64(self) -> f64 {
        self.mantissa as f64 / 10f64.powi(self.scale as i32)
    }
}

/// What a recognised unit suffix means, as a factor over the family's
/// base unit (microseconds for time, bytes for size).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SuffixKind {
    /// A time suffix worth this many microseconds.
    Time(i64),
    /// A size suffix worth this many bytes.
    Size(i64),
}

/// Resolves a unit suffix, case-insensitively where unambiguous.
///
/// The one ambiguous spelling is `m`/`M` — minutes versus mebibytes — so
/// only there does letter case decide; every other suffix is accepted in
/// any case (`10S`, `64Kb`, `5MS` are misconfigurations users actually
/// write, and rejecting the spelling would let them pass unflagged).
fn suffix_kind(suffix: &str) -> Option<SuffixKind> {
    match suffix {
        "m" => return Some(SuffixKind::Time(60 * 1_000_000)),
        "M" => return Some(SuffixKind::Size(1 << 20)),
        _ => {}
    }
    Some(match suffix.to_ascii_lowercase().as_str() {
        "us" => SuffixKind::Time(1),
        "ms" => SuffixKind::Time(1_000),
        "s" | "sec" => SuffixKind::Time(1_000_000),
        "min" => SuffixKind::Time(60 * 1_000_000),
        "h" => SuffixKind::Time(3_600 * 1_000_000),
        "b" => SuffixKind::Size(1),
        "k" | "kb" => SuffixKind::Size(1 << 10),
        "mb" => SuffixKind::Size(1 << 20),
        "g" | "gb" => SuffixKind::Size(1 << 30),
        "t" | "tb" => SuffixKind::Size(1i64 << 40),
        _ => return None,
    })
}

/// Splits a trimmed value into an exact decimal magnitude and the
/// trailing suffix text; `None` unless the shape is `[sign]digits[.digits]
/// suffix` with a nonempty suffix.
fn split_number_suffix(v: &str) -> Option<(Decimal, &str)> {
    let t = v.trim();
    let (sign, rest) = match t.as_bytes().first()? {
        b'-' => (-1i128, &t[1..]),
        b'+' => (1, &t[1..]),
        _ => (1, t),
    };
    let int_end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    if int_end == 0 {
        return None;
    }
    let (frac, suffix_at) = match rest[int_end..].strip_prefix('.') {
        Some(after_dot) => {
            let frac_len = after_dot
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(after_dot.len());
            if frac_len == 0 {
                return None;
            }
            (&after_dot[..frac_len], int_end + 1 + frac_len)
        }
        None => ("", int_end),
    };
    let suffix = &rest[suffix_at..];
    if suffix.is_empty() {
        return None;
    }
    let mut mantissa: i128 = 0;
    for c in rest[..int_end].chars().chain(frac.chars()) {
        mantissa = mantissa
            .checked_mul(10)?
            .checked_add((c as u8 - b'0') as i128)?;
    }
    Some((
        Decimal {
            mantissa: sign * mantissa,
            scale: frac.len() as u32,
        },
        suffix,
    ))
}

/// Splits `"512MB"` into `(512.0, "MB")` and `"1.5s"` into `(1.5, "s")`.
/// Returns `None` when the value is not a decimal number followed by a
/// recognised time/size unit suffix (matched case-insensitively where
/// unambiguous — see [`Fix`]-emitting checks for the conversion rules).
pub fn split_unit_suffix(v: &str) -> Option<(f64, &str)> {
    let (num, suffix) = split_number_suffix(v)?;
    suffix_kind(suffix)?;
    Some((num.as_f64(), suffix))
}

/// The magnitude converted from `per_unit` base units into `target`
/// base units, when the result is an exact, `i64`-representable integer
/// (overflow-safe: all arithmetic is checked `i128`).
fn convert_exact(num: Decimal, per_unit: i64, target: i64) -> Option<i64> {
    let numer = num.mantissa.checked_mul(per_unit as i128)?;
    let denom = 10i128.checked_pow(num.scale)?.checked_mul(target as i128)?;
    (numer % denom == 0)
        .then(|| numer / denom)
        .and_then(|q| i64::try_from(q).ok())
}

/// The repair value for a unit-suffixed setting of a parameter the system
/// reads in `target_kind` base units: the magnitude converted to those
/// units, when the suffix is of the same family and the conversion is
/// exact and non-negative (a fix must never introduce a new finding).
fn suffix_conversion(value: &str, target_kind: SuffixKind) -> Option<i64> {
    let (num, suffix) = split_number_suffix(value)?;
    let converted = match (suffix_kind(suffix)?, target_kind) {
        (SuffixKind::Time(micros), SuffixKind::Time(target)) => convert_exact(num, micros, target)?,
        (SuffixKind::Size(bytes), SuffixKind::Size(target)) => convert_exact(num, bytes, target)?,
        _ => return None,
    };
    (converted >= 0).then_some(converted)
}

/// Inclusive bounds of an integer type. Widths outside 1..=63 (including
/// anything a hand-edited database might carry) saturate to the i64
/// bounds instead of overflowing the shift.
fn int_bounds(bits: u8, signed: bool) -> (i64, i64) {
    match (bits, signed) {
        (0 | 64.., true) => (i64::MIN, i64::MAX),
        (0 | 63.., false) => (0, i64::MAX),
        (b, true) => {
            let hi = (1i64 << (b - 1)) - 1;
            (-hi - 1, hi)
        }
        (b, false) => (0, (1i64 << b) - 1),
    }
}

/// Whether `v` is a valid dotted-quad IPv4 address.
fn is_dotted_quad(v: &str) -> bool {
    let octets: Vec<&str> = v.split('.').collect();
    octets.len() == 4
        && octets.iter().all(|o| {
            !o.is_empty()
                && o.len() <= 3
                && o.chars().all(|c| c.is_ascii_digit())
                && o.parse::<u16>().map(|n| n <= 255).unwrap_or(false)
        })
}

/// Levenshtein distance with an early-exit `cap` (returns `cap` when the
/// true distance is at least `cap`).
pub fn levenshtein(a: &str, b: &str, cap: usize) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.len().abs_diff(b.len()) >= cap {
        return cap;
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        let mut row_min = cur[0];
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
            row_min = row_min.min(cur[j + 1]);
        }
        if row_min >= cap {
            return cap;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()].min(cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::StaticEnv;
    use spex_conf::Dialect;
    use spex_core::constraint::{
        CmpOp, Constraint, ControlDep, EnumAlternative, EnumRange, NumericRange, RangeSegment,
        ValueRel,
    };
    use spex_lang::diag::Span;

    fn c(param: &str, kind: ConstraintKind) -> Constraint {
        Constraint {
            param: param.into(),
            kind,
            in_function: "startup".into(),
            span: Span::new(1, 1),
        }
    }

    fn db() -> ConstraintDb {
        let mut db = ConstraintDb::new("Test", Dialect::KeyValue);
        db.add(c(
            "threads",
            ConstraintKind::BasicType(BasicType::Int {
                bits: 32,
                signed: true,
            }),
        ));
        db.add(c(
            "threads",
            ConstraintKind::Range(NumericRange {
                cutpoints: vec![1, 16],
                segments: vec![
                    RangeSegment {
                        lo: None,
                        hi: Some(0),
                        valid: false,
                    },
                    RangeSegment {
                        lo: Some(1),
                        hi: Some(16),
                        valid: true,
                    },
                    RangeSegment {
                        lo: Some(17),
                        hi: None,
                        valid: false,
                    },
                ],
            }),
        ));
        db.add(c(
            "log_level",
            ConstraintKind::EnumRange(EnumRange {
                alternatives: vec![
                    EnumAlternative {
                        value: EnumValue::Str("info".into()),
                        valid: true,
                    },
                    EnumAlternative {
                        value: EnumValue::Str("debug".into()),
                        valid: true,
                    },
                ],
                unmatched_is_error: true,
                unmatched_overwrites: false,
                case_insensitive: false,
            }),
        ));
        db.add(c(
            "listen_port",
            ConstraintKind::SemanticType(SemType::Port),
        ));
        db.add(c(
            "nap_s",
            ConstraintKind::SemanticType(SemType::Time(TimeUnit::Sec)),
        ));
        db.add(c(
            "grace_s",
            ConstraintKind::SemanticType(SemType::Time(TimeUnit::Sec)),
        ));
        db.add(c(
            "grace_s",
            ConstraintKind::Range(NumericRange {
                cutpoints: vec![0, 60],
                segments: vec![
                    RangeSegment {
                        lo: None,
                        hi: Some(-1),
                        valid: false,
                    },
                    RangeSegment {
                        lo: Some(0),
                        hi: Some(60),
                        valid: true,
                    },
                    RangeSegment {
                        lo: Some(61),
                        hi: None,
                        valid: false,
                    },
                ],
            }),
        ));
        db.add(c(
            "poll_ms",
            ConstraintKind::SemanticType(SemType::Time(TimeUnit::Milli)),
        ));
        db.add(c(
            "spin_us",
            ConstraintKind::SemanticType(SemType::Time(TimeUnit::Micro)),
        ));
        db.add(c(
            "buf_b",
            ConstraintKind::SemanticType(SemType::Size(SizeUnit::B)),
        ));
        db.add(c(
            "commit_siblings",
            ConstraintKind::ControlDep(ControlDep {
                controller: "fsync".into(),
                value: 0,
                op: CmpOp::Ne,
                dependent: "commit_siblings".into(),
                confidence: 1.0,
            }),
        ));
        db.add(c(
            "min_len",
            ConstraintKind::ValueRel(ValueRel {
                lhs: "min_len".into(),
                op: CmpOp::Lt,
                rhs: "max_len".into(),
            }),
        ));
        db.note_params(["fsync", "max_len"]);
        db
    }

    fn check(text: &str) -> Vec<Diagnostic> {
        let db = db();
        CheckSession::new(&db).check_text(text)
    }

    #[test]
    fn clean_config_produces_no_diagnostics() {
        let ds = check("threads = 8\nlog_level = info\nlisten_port = 8080\nnap_s = 30\n");
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn flags_non_numeric_and_overflow_and_unit_suffix() {
        assert_eq!(check("threads = not_a_number\n").len(), 1);
        // Violates both the basic-type (32-bit) and range constraints.
        let ds = check("threads = 9000000000\n");
        assert_eq!(ds.len(), 2);
        assert!(ds.iter().any(|d| d.message.contains("overflows")));
        let ds = check("threads = 9G\n");
        assert_eq!(ds.len(), 1);
        assert!(ds[0].suggestion.as_deref().unwrap().contains("suffix"));
    }

    #[test]
    fn flags_out_of_range_with_interval_suggestion_and_clamp_fix() {
        let ds = check("threads = 64\n");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, DiagCode::Range);
        assert!(ds[0].message.contains("[1, 16]"), "{}", ds[0]);
        assert!(ds[0]
            .suggestion
            .as_deref()
            .unwrap()
            .contains("between 1 and 16"));
        assert_eq!(ds[0].line, Some(1));
        assert_eq!(
            ds[0].fix,
            Some(Fix::ReplaceValue {
                param: "threads".into(),
                value: "16".into(),
            })
        );
        // Undershooting clamps to the low edge.
        let ds = check("threads = -3\n");
        assert_eq!(
            ds[0].fix,
            Some(Fix::ReplaceValue {
                param: "threads".into(),
                value: "1".into(),
            })
        );
    }

    #[test]
    fn flags_case_mismatch_on_sensitive_enums() {
        let ds = check("log_level = INFO\n");
        assert_eq!(ds.len(), 1);
        assert!(ds[0].message.contains("letter case"), "{}", ds[0]);
        assert_eq!(
            ds[0].suggestion.as_deref(),
            Some("write it exactly as \"info\"")
        );
        assert_eq!(
            ds[0].fix,
            Some(Fix::ReplaceValue {
                param: "log_level".into(),
                value: "info".into(),
            })
        );
    }

    #[test]
    fn flags_unknown_word_with_nearest_variant_fix() {
        let ds = check("log_level = inf\n");
        assert_eq!(ds.len(), 1);
        assert!(ds[0].suggestion.as_deref().unwrap().contains("info"));
        assert_eq!(
            ds[0].fix,
            Some(Fix::ReplaceValue {
                param: "log_level".into(),
                value: "info".into(),
            })
        );
        // A word nowhere near any variant gets no machine fix.
        let ds = check("log_level = extremely_verbose\n");
        assert_eq!(ds.len(), 1);
        assert!(ds[0].fix.is_none());
    }

    #[test]
    fn port_checks_are_syntactic_without_env() {
        assert_eq!(check("listen_port = 70000\n").len(), 1);
        assert_eq!(check("listen_port = 0\n").len(), 1);
        assert!(
            check("listen_port = 80\n").is_empty(),
            "occupancy needs an env"
        );
    }

    #[test]
    fn port_occupancy_with_env() {
        let db = db();
        let mut env = StaticEnv::new();
        env.occupy_port(80);
        let ds = CheckSession::new(&db)
            .with_env(&env)
            .check_text("listen_port = 80\n");
        assert_eq!(ds.len(), 1);
        assert!(ds[0].message.contains("already in use"));
    }

    #[test]
    fn time_checks_flag_negative_absurd_and_suffixed() {
        assert!(check("nap_s = 30\n").is_empty());
        assert_eq!(check("nap_s = -5\n").len(), 1);
        assert_eq!(check("nap_s = 999999999\n").len(), 1);
        let ds = check("nap_s = 10ms\n");
        assert_eq!(ds.len(), 1);
        assert!(ds[0].message.contains("suffix"));
    }

    #[test]
    fn sub_second_units_have_their_own_absurdity_bar() {
        // 999999999 ms is "only" 11.5 days — under a one-year bar it
        // dodges detection, but nobody means a nine-digit millisecond
        // count: the per-unit bar (a week of ms) must flag it.
        let ds = check("poll_ms = 999999999\n");
        assert_eq!(ds.len(), 1);
        assert!(ds[0].message.contains("over a week"), "{}", ds[0]);
        // Plausible sub-second values stay clean.
        assert!(check("poll_ms = 250\n").is_empty());
        assert!(check("poll_ms = 86400000\n").is_empty(), "a day of ms");
        // Microseconds clear an even lower bar: an hour.
        let ds = check("spin_us = 10000000000\n");
        assert_eq!(ds.len(), 1);
        assert!(ds[0].message.contains("over an hour"), "{}", ds[0]);
        assert!(check("spin_us = 500000\n").is_empty());
        // Coarse units keep the original year bar.
        assert!(check("nap_s = 86400\n").is_empty());
    }

    #[test]
    fn control_dep_warns_only_when_controller_disables() {
        assert!(check("commit_siblings = 5\nfsync = on\n").is_empty());
        assert!(
            check("commit_siblings = 5\n").is_empty(),
            "controller unset"
        );
        let ds = check("commit_siblings = 5\nfsync = off\n");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].severity, Severity::Warning);
        assert_eq!(ds[0].code, DiagCode::ControlDep);
        assert!(ds[0].message.contains("silently ignored"));
        // The machine repair targets the *controller*, not the violation
        // site, and matches the style the file wrote the value in.
        assert_eq!(
            ds[0].fix,
            Some(Fix::ReplaceValue {
                param: "fsync".into(),
                value: "on".into(),
            })
        );
        let ds = check("commit_siblings = 5\nfsync = 0\n");
        assert_eq!(
            ds[0].fix,
            Some(Fix::ReplaceValue {
                param: "fsync".into(),
                value: "1".into(),
            })
        );
    }

    #[test]
    fn control_dep_fix_applies_to_the_controller() {
        let ds = check("commit_siblings = 5\nfsync = off\n");
        let mut conf = ConfFile::parse("commit_siblings = 5\nfsync = off\n", Dialect::KeyValue);
        assert!(ds[0].fix.as_ref().unwrap().apply(&mut conf));
        let db = db();
        assert!(CheckSession::new(&db).check(&conf).is_empty());
    }

    #[test]
    fn value_rel_flags_violating_pairs() {
        assert!(check("min_len = 4\nmax_len = 84\n").is_empty());
        let ds = check("min_len = 90\nmax_len = 84\n");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, DiagCode::ValueRel);
        assert!(ds[0].message.contains("must satisfy"));
    }

    #[test]
    fn unknown_key_gets_edit_distance_suggestion_and_rename_fix() {
        let ds = check("thread = 8\n");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, DiagCode::UnknownKey);
        assert_eq!(ds[0].category(), "unknown-key");
        assert_eq!(
            ds[0].suggestion.as_deref(),
            Some("did you mean \"threads\"?")
        );
        assert_eq!(
            ds[0].fix,
            Some(Fix::RenameKey {
                from: "thread".into(),
                to: "threads".into(),
            })
        );
    }

    #[test]
    fn unknown_key_detects_wrong_case_when_sensitive() {
        let ds = check("Threads = 8\n");
        assert_eq!(ds.len(), 1);
        assert!(ds[0]
            .suggestion
            .as_deref()
            .unwrap()
            .contains("case-sensitive"));
        assert_eq!(
            ds[0].fix,
            Some(Fix::RenameKey {
                from: "Threads".into(),
                to: "threads".into(),
            })
        );
    }

    #[test]
    fn case_insensitive_mode_matches_keys_instead_of_flagging() {
        let db = db();
        let session = CheckSession::new(&db).case_insensitive_keys(true);
        // Wrong case is not unknown: the entry's constraints apply.
        assert!(session.check_text("Threads = 8\n").is_empty());
        let ds = session.check_text("THREADS = 64\n");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, DiagCode::Range, "checked, not unknown");
        // A genuine typo still gets a did-you-mean, compared without case.
        let ds = session.check_text("THREDS = 8\n");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, DiagCode::UnknownKey);
        assert_eq!(
            ds[0].suggestion.as_deref(),
            Some("did you mean \"threads\"?")
        );
        // And never claims names are case-sensitive (they are not here).
        assert!(!ds[0]
            .suggestion
            .as_deref()
            .unwrap()
            .contains("case-sensitive"));
    }

    #[test]
    fn case_sensitive_mode_still_distance_matches_exactly() {
        // `THREDS` vs `threads` is distance 6 case-sensitively: no
        // suggestion may claim it is close (the old behaviour matched
        // case-insensitively regardless of the setting).
        let ds = check("THREDS = 8\n");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, DiagCode::UnknownKey);
        assert!(ds[0].suggestion.is_none(), "{:?}", ds[0].suggestion);
    }

    #[test]
    fn applying_fixes_clears_the_findings() {
        let db = db();
        let session = CheckSession::new(&db);
        let text = "napp_s = 30\nthreads = 640\nlog_level = inf\n";
        let mut conf = ConfFile::parse(text, Dialect::KeyValue);
        let before = session.check(&conf);
        assert_eq!(before.len(), 3);
        for d in &before {
            d.fix
                .as_ref()
                .expect("all three are fixable")
                .apply(&mut conf);
        }
        // Rename, clamp and nearest-variant repairs compose: the repaired
        // file re-checks clean.
        let after = session.check(&conf);
        assert!(after.is_empty(), "{after:?}");
    }

    #[test]
    fn diagnostics_carry_module_provenance_from_the_db() {
        let mut db = ConstraintDb::new("Test", Dialect::KeyValue);
        db.add_from(
            c(
                "threads",
                ConstraintKind::Range(NumericRange {
                    cutpoints: vec![1, 16],
                    segments: vec![
                        RangeSegment {
                            lo: Some(1),
                            hi: Some(16),
                            valid: true,
                        },
                        RangeSegment {
                            lo: Some(17),
                            hi: None,
                            valid: false,
                        },
                    ],
                }),
            ),
            "main.c",
        );
        let ds = CheckSession::new(&db).check_text("threads = 64\n");
        assert_eq!(ds.len(), 1);
        let origin = ds[0].origin.as_ref().expect("provenance");
        assert_eq!(origin.module, "main.c");
        assert_eq!(origin.function, "startup");
        assert!(ds[0].to_string().contains("from main.c"), "{}", ds[0]);
    }

    #[test]
    fn check_texts_and_check_file_package_reports() {
        let db = db();
        let session = CheckSession::new(&db).with_threads(4);
        let files: Vec<(String, String)> = (0..20)
            .map(|i| {
                (
                    format!("host{i:02}.conf"),
                    if i % 4 == 0 {
                        "threads = 999\n".to_string()
                    } else {
                        "threads = 8\n".to_string()
                    },
                )
            })
            .collect();
        let report = session.check_texts(&files);
        assert_eq!(report.stats.files, 20);
        assert_eq!(report.stats.flagged_files, 5);
        assert_eq!(report.files[0].system, "Test");
        assert!(report
            .files
            .iter()
            .map(|f| f.file.as_str())
            .eq(files.iter().map(|(l, _)| l.as_str())));
        // Single-threaded agrees.
        let serial = CheckSession::new(&db).with_threads(1).check_texts(&files);
        assert_eq!(serial, report);
    }

    /// Builds a small on-disk corpus: root/{a.conf,z.conf,sub/{b.conf,c.conf}}.
    fn corpus(tag: &str) -> std::path::PathBuf {
        let root = std::env::temp_dir().join(format!("spex_session_paths_{tag}"));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("sub")).unwrap();
        std::fs::write(root.join("a.conf"), "threads = 8\n").unwrap();
        std::fs::write(root.join("z.conf"), "threads = 999\n").unwrap();
        std::fs::write(root.join("sub/b.conf"), "threads = 1\n").unwrap();
        std::fs::write(root.join("sub/c.conf"), "threads = -3\n").unwrap();
        root
    }

    #[test]
    fn check_paths_walks_deterministically_and_flags() {
        let db = db();
        let root = corpus("walk");
        let report = CheckSession::new(&db)
            .with_threads(4)
            .check_paths(std::slice::from_ref(&root))
            .unwrap();
        let files: Vec<String> = report
            .files
            .iter()
            .map(|r| {
                std::path::Path::new(&r.file)
                    .strip_prefix(&root)
                    .unwrap()
                    .display()
                    .to_string()
            })
            .collect();
        assert_eq!(files, vec!["a.conf", "sub/b.conf", "sub/c.conf", "z.conf"]);
        assert_eq!(report.stats.files, 4);
        assert_eq!(report.stats.clean_files, 2);
        assert_eq!(report.stats.flagged_files, 2);
        // Same order and findings regardless of worker count.
        let serial = CheckSession::new(&db)
            .with_threads(1)
            .check_paths(std::slice::from_ref(&root))
            .unwrap();
        assert_eq!(serial, report);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn check_paths_accepts_explicit_files_in_argument_order() {
        let db = db();
        let root = corpus("explicit");
        let report = CheckSession::new(&db)
            .check_paths(&[root.join("z.conf"), root.join("a.conf")])
            .unwrap();
        assert!(report.files[0].file.ends_with("z.conf"));
        assert!(report.files[1].file.ends_with("a.conf"));
        std::fs::remove_dir_all(&root).ok();
    }

    #[cfg(unix)]
    #[test]
    fn check_paths_survives_symlink_cycles() {
        let db = db();
        let root = corpus("symlink");
        std::os::unix::fs::symlink(&root, root.join("sub/loop")).unwrap();
        let report = CheckSession::new(&db)
            .with_threads(2)
            .check_paths(std::slice::from_ref(&root))
            .unwrap();
        // The four real files are each seen exactly once (the cycle target
        // is the already-visited root, so the link adds nothing).
        assert_eq!(report.stats.files, 4);
        assert_eq!(
            report
                .files
                .iter()
                .filter(|r| r.file.ends_with("a.conf"))
                .count(),
            1
        );
        std::fs::remove_dir_all(&root).ok();
    }

    #[cfg(unix)]
    #[test]
    fn check_paths_skips_non_regular_files_without_blocking() {
        let db = db();
        let root = corpus("fifo");
        let status = std::process::Command::new("mkfifo")
            .arg(root.join("sub/ctl"))
            .status()
            .expect("mkfifo runs");
        assert!(status.success());
        // Reading a writer-less FIFO would block forever; the run must
        // complete and report it unreadable instead.
        let report = CheckSession::new(&db)
            .with_threads(2)
            .check_paths(std::slice::from_ref(&root))
            .unwrap();
        assert_eq!(report.stats.files, 5);
        assert_eq!(report.stats.unreadable_files, 1);
        let fifo = report
            .files
            .iter()
            .find(|r| r.file.ends_with("ctl"))
            .unwrap();
        assert_eq!(fifo.read_error.as_deref(), Some("not a regular file"));
        assert!(fifo.has_errors(), "an unvalidated file must gate deploys");
        assert!(!fifo.is_clean());
        assert_eq!(report.exit_code(), 1);
        std::fs::remove_dir_all(&root).ok();
    }

    #[cfg(unix)]
    #[test]
    fn check_paths_non_directory_root_reports_instead_of_aborting() {
        let db = db();
        let root = corpus("fiforoot");
        let fifo = root.join("ctl");
        let status = std::process::Command::new("mkfifo")
            .arg(&fifo)
            .status()
            .expect("mkfifo runs");
        assert!(status.success());
        // A FIFO given directly as a root: per the contract, only
        // nonexistent roots hard-error; this degrades to a report.
        let report = CheckSession::new(&db)
            .with_threads(1)
            .check_paths(std::slice::from_ref(&fifo))
            .unwrap();
        assert_eq!(report.stats.files, 1);
        assert_eq!(report.stats.unreadable_files, 1);
        assert_eq!(
            report.files[0].read_error.as_deref(),
            Some("not a regular file")
        );
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn check_paths_overlapping_directory_roots_walk_once() {
        let db = db();
        let root = corpus("overlap");
        let report = CheckSession::new(&db)
            .with_threads(2)
            .check_paths(&[root.clone(), root.join("sub")])
            .unwrap();
        // The second root is inside the first: its directory was already
        // descended, so nothing is double-counted.
        assert_eq!(report.stats.files, 4);
        assert_eq!(
            report
                .files
                .iter()
                .filter(|r| r.file.ends_with("b.conf"))
                .count(),
            1
        );
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn check_paths_missing_root_is_an_error() {
        let db = db();
        let err = CheckSession::new(&db)
            .check_paths(&[std::path::Path::new("/no/such/spex/dir")])
            .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("kitten", "sitting", 10), 3);
        assert_eq!(levenshtein("abc", "abc", 10), 0);
        assert_eq!(levenshtein("abc", "zzzzzz", 2), 2, "capped");
    }

    #[test]
    fn unit_suffix_splitting() {
        assert_eq!(split_unit_suffix("512MB"), Some((512.0, "MB")));
        assert_eq!(split_unit_suffix("9G"), Some((9.0, "G")));
        assert_eq!(split_unit_suffix("10ms"), Some((10.0, "ms")));
        assert_eq!(split_unit_suffix("42"), None);
        assert_eq!(split_unit_suffix("hello"), None);
        assert_eq!(split_unit_suffix("12half"), None);
    }

    #[test]
    fn unit_suffix_accepts_uppercase_and_decimal_spellings() {
        // These spellings used to be rejected by the splitter, so the
        // suffix misconfigurations they carry passed silently.
        assert_eq!(split_unit_suffix("10S"), Some((10.0, "S")));
        assert_eq!(split_unit_suffix("5MS"), Some((5.0, "MS")));
        assert_eq!(split_unit_suffix("64Kb"), Some((64.0, "Kb")));
        assert_eq!(split_unit_suffix("2gB"), Some((2.0, "gB")));
        assert_eq!(split_unit_suffix("1.5s"), Some((1.5, "s")));
        assert_eq!(split_unit_suffix("0.25h"), Some((0.25, "h")));
        // Malformed decimals are not numbers with suffixes.
        assert_eq!(split_unit_suffix("1.5"), None);
        assert_eq!(split_unit_suffix("1.s"), None);
        assert_eq!(split_unit_suffix(".5s"), None);
        // `m`/`M` is the one case-ambiguous pair: minutes vs mebibytes.
        assert_eq!(suffix_kind("m"), Some(SuffixKind::Time(60_000_000)));
        assert_eq!(suffix_kind("M"), Some(SuffixKind::Size(1 << 20)));
    }

    #[test]
    fn suffixed_time_values_get_conversion_fixes() {
        // `10s` for a milliseconds parameter: the paper's silent
        // mis-scaling trap, now repaired, not just reported.
        let ds = check("poll_ms = 10s\n");
        assert_eq!(ds.len(), 1);
        assert_eq!(
            ds[0].fix,
            Some(Fix::ReplaceValue {
                param: "poll_ms".into(),
                value: "10000".into(),
            })
        );
        assert!(ds[0].suggestion.as_deref().unwrap().contains("10000"));
        // Uppercase and decimal spellings convert too.
        assert_eq!(
            check("nap_s = 2M\n")[0].fix,
            None,
            "mebibytes are not a time; no cross-family fix"
        );
        assert_eq!(
            check("nap_s = 2m\n")[0].fix,
            Some(Fix::ReplaceValue {
                param: "nap_s".into(),
                value: "120".into(),
            })
        );
        assert_eq!(
            check("nap_s = 10S\n")[0].fix,
            Some(Fix::ReplaceValue {
                param: "nap_s".into(),
                value: "10".into(),
            })
        );
        assert_eq!(
            check("poll_ms = 1.5s\n")[0].fix,
            Some(Fix::ReplaceValue {
                param: "poll_ms".into(),
                value: "1500".into(),
            })
        );
        // Inexact conversions stay prose-only: 10 ms is 0.01 s.
        let ds = check("nap_s = 10ms\n");
        assert_eq!(ds.len(), 1);
        assert!(ds[0].fix.is_none());
        // Overflow-safe: an absurd magnitude cannot panic or wrap into a
        // bogus fix.
        let ds = check(&format!("nap_s = {}h\n", "9".repeat(30)));
        assert_eq!(ds.len(), 1);
        assert!(ds[0].fix.is_none());
        // Negative durations never get a fix (it would re-flag).
        assert!(check("poll_ms = -10s\n")[0].fix.is_none());
    }

    #[test]
    fn conversion_fixes_that_would_still_flag_stay_prose_only() {
        // A fix must never introduce a new finding. 9000 hours converts
        // exactly to 32400000 s — which is over the one-year absurdity bar
        // the very same check enforces, so applying the "repair" would
        // re-flag. Keep the prose suggestion instead.
        let ds = check("nap_s = 9000h\n");
        assert_eq!(ds.len(), 1);
        assert!(ds[0].fix.is_none(), "{:?}", ds[0].fix);
        assert!(ds[0]
            .suggestion
            .as_deref()
            .unwrap()
            .contains("without a suffix"));

        // Likewise for a conversion that lands outside the parameter's
        // inferred range: `5m` on `grace_s` (valid range [0, 60]) is
        // exactly 300 s, but 300 violates the range, so no fix.
        let ds = check("grace_s = 5m\n");
        assert!(ds.iter().all(|d| d.fix.is_none()), "{ds:?}");

        // An in-range conversion still gets its machine fix, and applying
        // it leaves the config fully clean.
        let db = db();
        let session = CheckSession::new(&db);
        let mut conf = ConfFile::parse("grace_s = 0.5m\n", Dialect::KeyValue);
        let before = session.check(&conf);
        assert_eq!(before.len(), 1);
        assert_eq!(
            before[0].fix,
            Some(Fix::ReplaceValue {
                param: "grace_s".into(),
                value: "30".into(),
            })
        );
        assert!(before[0].fix.as_ref().unwrap().apply(&mut conf));
        assert!(session.check(&conf).is_empty());
    }

    #[test]
    fn suffixed_size_values_get_conversion_fixes() {
        let ds = check("buf_b = 64Kb\n");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, DiagCode::SemanticType);
        assert_eq!(
            ds[0].fix,
            Some(Fix::ReplaceValue {
                param: "buf_b".into(),
                value: "65536".into(),
            })
        );
        assert_eq!(
            check("buf_b = 10M\n")[0].fix,
            Some(Fix::ReplaceValue {
                param: "buf_b".into(),
                value: "10485760".into(),
            })
        );
        assert_eq!(
            check("buf_b = 1.5K\n")[0].fix,
            Some(Fix::ReplaceValue {
                param: "buf_b".into(),
                value: "1536".into(),
            })
        );
        // A time suffix on a size parameter is flagged but not "fixed".
        assert!(check("buf_b = 10m\n")[0].fix.is_none());
    }

    #[test]
    fn suffix_conversion_fixes_round_trip() {
        let db = db();
        let session = CheckSession::new(&db);
        let text = "poll_ms = 10s\nnap_s = 1.5m\nbuf_b = 64Kb\n";
        let mut conf = ConfFile::parse(text, Dialect::KeyValue);
        let before = session.check(&conf);
        assert_eq!(before.len(), 3);
        for d in &before {
            assert!(d.fix.as_ref().expect("all convertible").apply(&mut conf));
        }
        let after = session.check(&conf);
        assert!(after.is_empty(), "{after:?}");
        assert_eq!(conf.get("poll_ms"), Some("10000"));
        assert_eq!(conf.get("nap_s"), Some("90"));
        assert_eq!(conf.get("buf_b"), Some("65536"));
    }
}
