//! `spex-check` — constraint-driven configuration validation.
//!
//! The paper's thesis is that *systems, not users, should catch
//! misconfigurations*. The sibling crates infer configuration constraints
//! from source code (`spex-core`) and use them to attack a system with
//! generated misconfigurations (`spex-inj`). This crate closes the loop in
//! the other, proactive direction: it vets real configuration files
//! *before deployment* against the inferred constraints, so the
//! misconfiguration never reaches the system at all.
//!
//! The pipeline is **infer → persist → check**:
//!
//! 1. [`ConstraintDb`] — run inference once per system, persist the
//!    constraints in a compact, canonically ordered text format, and
//!    never pay for inference again;
//! 2. [`CheckSession`] — the *borrowed* validation engine: constructed
//!    over `&ConstraintDb` with zero copies, it validates parsed
//!    [`spex_conf::ConfFile`]s (basic- and semantic-type conformance,
//!    unit-aware values, numeric/enumerative ranges, control
//!    dependencies, value relationships, unknown-key detection) for one
//!    file, many in-memory texts, or streamed directory trees;
//! 3. [`Diagnostic`] — structured findings bearing a stable [`DiagCode`]
//!    (`SPEX-Rxxx`), severity, config line, the violated constraint's
//!    provenance (module + function + span) and, where computable, a
//!    machine-applicable [`Fix`];
//! 4. [`Report`] — per-file results plus statistics, rendered through any
//!    [`Renderer`] ([`HumanRenderer`], [`JsonLinesRenderer`],
//!    [`SarifRenderer`]) and mapped to stable exit codes.
//!
//! [`Workspace`] ties it together as a long-lived session: incremental
//! re-inference on edit, a cached `CheckSession` invalidated only when
//! the database changes, and database merging for sharded analysis.
//! (The pre-0.3 `BatchEngine`/`Checker` wrappers were removed in 0.4;
//! batch work goes through [`CheckSession::check_texts`] /
//! [`CheckSession::check_paths`] or the workspace equivalents.)
//!
//! # Examples
//!
//! ```
//! use spex_check::{CheckSession, ConstraintDb};
//! use spex_conf::Dialect;
//! use spex_core::constraint::{
//!     Constraint, ConstraintKind, NumericRange, RangeSegment,
//! };
//!
//! // Persisted once by the inference stage (here: built by hand).
//! let mut db = ConstraintDb::new("demo", Dialect::KeyValue);
//! db.add(Constraint {
//!     param: "listener-threads".into(),
//!     kind: ConstraintKind::Range(NumericRange {
//!         cutpoints: vec![1, 16],
//!         segments: vec![
//!             RangeSegment { lo: None, hi: Some(0), valid: false },
//!             RangeSegment { lo: Some(1), hi: Some(16), valid: true },
//!             RangeSegment { lo: Some(17), hi: None, valid: false },
//!         ],
//!     }),
//!     in_function: "startup".into(),
//!     span: spex_lang::diag::Span::new(40, 9),
//! });
//! let db = ConstraintDb::load_from_str(&db.save_to_string()).unwrap();
//!
//! // Checked on every deployment: the session borrows the database.
//! let diags = CheckSession::new(&db).check_text("listener-threads = 9999\n");
//! assert_eq!(diags.len(), 1);
//! assert_eq!(diags[0].code.as_str(), "SPEX-R003");
//! assert!(diags[0].to_string().contains("[1, 16]"));
//! ```

pub mod db;
pub mod diag;
pub mod env;
pub use spex_obs::json;
mod pool;
pub mod report;
pub mod session;
pub mod workspace;

pub use db::{ConstraintDb, DbError, MergeConflict, MergeError, MergeReport, ParamEntry};
pub use diag::{Diagnostic, Fix, Origin, Severity};
pub use env::{Environment, FsEnv, StaticEnv};
pub use report::{
    BatchStats, ColorMode, FileReport, HumanRenderer, JsonLinesRenderer, Renderer, Report,
    SarifRenderer,
};
pub use session::CheckSession;
pub use spex_core::constraint::DiagCode;
pub use spex_react::{ReactionClass, ReactionFinding, Sink, SinkKind};
pub use workspace::{ReanalyzeReport, Workspace, WorkspaceError};
