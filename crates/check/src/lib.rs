//! `spex-check` — constraint-driven configuration validation.
//!
//! The paper's thesis is that *systems, not users, should catch
//! misconfigurations*. The sibling crates infer configuration constraints
//! from source code (`spex-core`) and use them to attack a system with
//! generated misconfigurations (`spex-inj`). This crate closes the loop in
//! the other, proactive direction: it vets real configuration files
//! *before deployment* against the inferred constraints, so the
//! misconfiguration never reaches the system at all.
//!
//! The pipeline is **infer → persist → check**:
//!
//! 1. [`ConstraintDb`] — run `Spex::analyze` once per system, persist the
//!    inferred constraints in a compact text format, and never pay for
//!    inference again;
//! 2. [`Checker`] — validate one parsed [`spex_conf::ConfFile`] against a
//!    database: basic- and semantic-type conformance (unit-aware for time
//!    and size values), numeric- and enumerative-range membership,
//!    control-dependency activation, cross-parameter value relationships,
//!    and unknown-key detection with "did you mean" suggestions;
//! 3. [`Diagnostic`] — findings that meet the paper's pinpointing bar:
//!    parameter, value, config line, violated constraint, source-code
//!    provenance, suggested fix;
//! 4. [`BatchEngine`] — fleet-scale validation of many files across many
//!    systems on all cores, with deterministic output order and aggregate
//!    statistics.
//!
//! # Examples
//!
//! ```
//! use spex_check::{Checker, ConstraintDb};
//! use spex_conf::Dialect;
//! use spex_core::constraint::{
//!     Constraint, ConstraintKind, NumericRange, RangeSegment,
//! };
//!
//! // Persisted once by the inference stage (here: built by hand).
//! let mut db = ConstraintDb::new("demo", Dialect::KeyValue);
//! db.add(Constraint {
//!     param: "listener-threads".into(),
//!     kind: ConstraintKind::Range(NumericRange {
//!         cutpoints: vec![1, 16],
//!         segments: vec![
//!             RangeSegment { lo: None, hi: Some(0), valid: false },
//!             RangeSegment { lo: Some(1), hi: Some(16), valid: true },
//!             RangeSegment { lo: Some(17), hi: None, valid: false },
//!         ],
//!     }),
//!     in_function: "startup".into(),
//!     span: spex_lang::diag::Span::new(40, 9),
//! });
//! let db = ConstraintDb::load_from_str(&db.save_to_string()).unwrap();
//!
//! // Checked on every deployment.
//! let diags = Checker::new(&db).check_text("listener-threads = 9999\n");
//! assert_eq!(diags.len(), 1);
//! assert!(diags[0].to_string().contains("[1, 16]"));
//! ```

pub mod batch;
pub mod checker;
pub mod db;
pub mod diag;
pub mod env;
pub mod workspace;

pub use batch::{BatchEngine, BatchJob, BatchStats, FileReport};
pub use checker::{Checker, Environment, StaticEnv};
pub use db::{ConstraintDb, DbError, MergeConflict, MergeError, MergeReport, ParamEntry};
pub use diag::{Diagnostic, Severity};
pub use env::FsEnv;
pub use workspace::{ReanalyzeReport, Workspace, WorkspaceError};
