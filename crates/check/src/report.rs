//! The structured report model and its pluggable renderers.
//!
//! Every result leaves the checking layer as a [`Report`]: per-file
//! [`FileReport`]s plus aggregate [`BatchStats`]. A report renders through
//! any [`Renderer`] — human terminal text, JSON Lines for log pipelines,
//! or a SARIF-style document for code-scanning UIs — and maps to a stable
//! process [`exit code`](Report::exit_code) for CI gates.
//!
//! # Stability guarantees
//!
//! The machine formats are part of the public contract:
//!
//! * every finding object carries a `code` field holding a stable
//!   [`DiagCode`] string (`SPEX-Rxxx`, never
//!   renumbered) that parses back via `DiagCode::parse`;
//! * JSON Lines objects are flat-keyed and tagged with a `type` field
//!   (`"finding"`, `"file-error"`, `"summary"`); keys are only ever
//!   *added*, never removed or re-typed;
//! * exit codes are `0` clean, `1` errors (or unvalidated files),
//!   `2` warnings only.
//!
//! # Example
//!
//! ```
//! use spex_check::{CheckSession, ConstraintDb, JsonLinesRenderer, Renderer, Report};
//! use spex_conf::Dialect;
//! use spex_core::constraint::{Constraint, ConstraintKind, NumericRange, RangeSegment};
//!
//! let mut db = ConstraintDb::new("demo", Dialect::KeyValue);
//! db.add(Constraint {
//!     param: "threads".into(),
//!     kind: ConstraintKind::Range(NumericRange {
//!         cutpoints: vec![1, 16],
//!         segments: vec![
//!             RangeSegment { lo: None, hi: Some(0), valid: false },
//!             RangeSegment { lo: Some(1), hi: Some(16), valid: true },
//!             RangeSegment { lo: Some(17), hi: None, valid: false },
//!         ],
//!     }),
//!     in_function: "startup".into(),
//!     span: spex_lang::diag::Span::new(40, 9),
//! });
//! let session = CheckSession::new(&db);
//! let report = Report::single(session.check_file("prod.conf", "threads = 99\n"));
//! assert_eq!(report.exit_code(), 1);
//! let jsonl = JsonLinesRenderer.render(&report);
//! assert!(jsonl.contains("\"code\":\"SPEX-R003\""));
//! ```

use crate::diag::{Diagnostic, Fix, Severity};
use crate::json::{quote, Json};
use spex_core::constraint::DiagCode;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::IsTerminal as _;

/// Validation result for one file.
#[derive(Debug, Clone, PartialEq)]
pub struct FileReport {
    /// The file's system.
    pub system: String,
    /// A label for the file (path, host name, tenant id, ...).
    pub file: String,
    /// Diagnostics in file order; empty means the file is clean.
    pub diagnostics: Vec<Diagnostic>,
    /// Set when the job named a system the engine has no database for.
    pub unknown_system: bool,
    /// Set when a streaming run could not read the file (the job is
    /// counted, not dropped, so report order still mirrors the walk).
    pub read_error: Option<String>,
}

impl FileReport {
    /// A report holding plain findings (validated file, no I/O trouble).
    pub fn new(
        system: impl Into<String>,
        file: impl Into<String>,
        diagnostics: Vec<Diagnostic>,
    ) -> FileReport {
        FileReport {
            system: system.into(),
            file: file.into(),
            diagnostics,
            unknown_system: false,
            read_error: None,
        }
    }

    /// Whether the file passed with no findings at all.
    pub fn is_clean(&self) -> bool {
        !self.unknown_system && self.read_error.is_none() && self.diagnostics.is_empty()
    }

    /// Whether the file must block a deployment: any error-severity
    /// finding, or a file that was never actually validated (unreadable,
    /// or no database registered for its system).
    pub fn has_errors(&self) -> bool {
        self.unknown_system
            || self.read_error.is_some()
            || self
                .diagnostics
                .iter()
                .any(|d| d.severity == Severity::Error)
    }
}

/// Aggregate statistics over one validation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchStats {
    /// Total files validated.
    pub files: usize,
    /// Files with no findings.
    pub clean_files: usize,
    /// Files with at least one finding.
    pub flagged_files: usize,
    /// Jobs naming a system without a database.
    pub unknown_system_files: usize,
    /// Files a streaming run failed to read.
    pub unreadable_files: usize,
    /// Total error-severity diagnostics.
    pub errors: usize,
    /// Total warning-severity diagnostics.
    pub warnings: usize,
    /// Diagnostics per violated-constraint category.
    pub by_category: BTreeMap<&'static str, usize>,
    /// Diagnostics per stable diagnostic code.
    pub by_code: BTreeMap<&'static str, usize>,
}

impl BatchStats {
    /// Tallies per-file reports into aggregate statistics.
    pub fn tally(reports: &[FileReport]) -> BatchStats {
        let mut stats = BatchStats {
            files: reports.len(),
            ..BatchStats::default()
        };
        for r in reports {
            if r.unknown_system {
                stats.unknown_system_files += 1;
                continue;
            }
            if r.read_error.is_some() {
                stats.unreadable_files += 1;
                continue;
            }
            if r.diagnostics.is_empty() {
                stats.clean_files += 1;
            } else {
                stats.flagged_files += 1;
            }
            for d in &r.diagnostics {
                match d.severity {
                    Severity::Error => stats.errors += 1,
                    Severity::Warning => stats.warnings += 1,
                }
                *stats.by_category.entry(d.category()).or_insert(0) += 1;
                *stats.by_code.entry(d.code.as_str()).or_insert(0) += 1;
            }
        }
        stats
    }

    /// Renders a one-screen summary table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "checked {} file(s): {} clean, {} flagged ({} error(s), {} warning(s))\n",
            self.files, self.clean_files, self.flagged_files, self.errors, self.warnings,
        );
        for (cat, n) in &self.by_category {
            out.push_str(&format!("  {cat:<14} {n}\n"));
        }
        if self.unknown_system_files > 0 {
            out.push_str(&format!(
                "  (skipped {} file(s) with no constraint database)\n",
                self.unknown_system_files
            ));
        }
        if self.unreadable_files > 0 {
            out.push_str(&format!(
                "  ({} file(s) could not be read)\n",
                self.unreadable_files
            ));
        }
        out
    }
}

/// The result of one validation run: per-file reports plus aggregate
/// statistics, renderable through any [`Renderer`].
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Per-file results, in walk/job order.
    pub files: Vec<FileReport>,
    /// Aggregate statistics over `files`.
    pub stats: BatchStats,
}

impl Report {
    /// Builds a report from per-file results, tallying the statistics.
    pub fn from_files(files: Vec<FileReport>) -> Report {
        let stats = BatchStats::tally(&files);
        Report { files, stats }
    }

    /// A report over one file.
    pub fn single(file: FileReport) -> Report {
        Report::from_files(vec![file])
    }

    /// Every finding with its file, in report order.
    pub fn findings(&self) -> impl Iterator<Item = (&FileReport, &Diagnostic)> {
        self.files
            .iter()
            .flat_map(|f| f.diagnostics.iter().map(move |d| (f, d)))
    }

    /// Whether every file validated clean.
    pub fn is_clean(&self) -> bool {
        self.files.iter().all(FileReport::is_clean)
    }

    /// Whether any file must block a deployment.
    pub fn has_errors(&self) -> bool {
        self.files.iter().any(FileReport::has_errors)
    }

    /// The stable process exit code for CI gates: `0` when every file is
    /// clean, `1` when any file [`has_errors`](FileReport::has_errors)
    /// (error findings, unreadable, or unvalidated), `2` when the only
    /// findings are warnings.
    pub fn exit_code(&self) -> i32 {
        if self.has_errors() {
            1
        } else if self.is_clean() {
            0
        } else {
            2
        }
    }

    /// Renders through the given renderer (sugar for `r.render(self)`).
    pub fn render(&self, renderer: &dyn Renderer) -> String {
        renderer.render(self)
    }
}

/// A pluggable report format.
///
/// Implementations must preserve diagnostic codes verbatim (they are the
/// machine contract); everything else — layout, verbosity, which fields
/// surface — is the renderer's choice.
pub trait Renderer {
    /// Renders a full report to a string.
    fn render(&self, report: &Report) -> String;
}

/// When terminal output may carry ANSI color escapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ColorMode {
    /// Color only when stdout is a terminal and the `NO_COLOR`
    /// environment variable (<https://no-color.org>) is unset or empty.
    #[default]
    Auto,
    /// Always color. An explicit user request (`--color always`)
    /// overrides `NO_COLOR`, per the convention the spec documents.
    Always,
    /// Never color.
    Never,
}

impl ColorMode {
    /// Parses the conventional `auto`/`always`/`never` spellings.
    pub fn parse(s: &str) -> Option<ColorMode> {
        match s {
            "auto" => Some(ColorMode::Auto),
            "always" => Some(ColorMode::Always),
            "never" => Some(ColorMode::Never),
            _ => None,
        }
    }

    /// Resolves the mode against the process environment: whether output
    /// rendered *now*, for stdout, should carry escapes.
    pub fn enabled(self) -> bool {
        match self {
            ColorMode::Always => true,
            ColorMode::Never => false,
            ColorMode::Auto => auto_color(
                std::io::stdout().is_terminal(),
                std::env::var("NO_COLOR").ok().as_deref(),
            ),
        }
    }
}

/// The `Auto` resolution rule, pure for testability: color iff stdout is
/// a terminal and `NO_COLOR` is absent or set to the empty string.
fn auto_color(stdout_is_terminal: bool, no_color: Option<&str>) -> bool {
    stdout_is_terminal && no_color.is_none_or(str::is_empty)
}

/// Human-oriented terminal text: flagged files with their findings in the
/// paper's pinpointing style, then the summary table. Optionally colored
/// (severity-tinted findings, bold file headers) under the [`ColorMode`]
/// rules — the default `Auto` detects a tty and honors `NO_COLOR`, so
/// piped output never needs post-processing.
#[derive(Debug, Clone, Copy, Default)]
pub struct HumanRenderer {
    /// When to emit ANSI escapes.
    pub color: ColorMode,
}

impl HumanRenderer {
    /// A renderer with an explicit color policy.
    pub fn with_color(color: ColorMode) -> HumanRenderer {
        HumanRenderer { color }
    }

    /// A renderer that never colors (byte-stable output for goldens).
    pub fn plain() -> HumanRenderer {
        HumanRenderer::with_color(ColorMode::Never)
    }
}

impl Renderer for HumanRenderer {
    fn render(&self, report: &Report) -> String {
        let color = self.color.enabled();
        let paint = |sgr: &str, text: &str| {
            if color {
                format!("\x1b[{sgr}m{text}\x1b[0m")
            } else {
                text.to_string()
            }
        };
        let mut out = String::new();
        for f in &report.files {
            if f.is_clean() {
                continue;
            }
            out.push_str(&paint("1", &f.file));
            out.push('\n');
            if f.unknown_system {
                let _ = writeln!(
                    out,
                    "  {}: no constraint database for system \"{}\"",
                    paint("31;1", "error"),
                    f.system
                );
            }
            if let Some(e) = &f.read_error {
                let _ = writeln!(out, "  {}: unreadable: {e}", paint("31;1", "error"));
            }
            for d in &f.diagnostics {
                let line = d.to_string();
                // Tint the stable `severity[CODE]` prefix the diagnostic
                // renders itself with; the body stays plain.
                let prefix = format!("{}[{}]", d.severity, d.code);
                match (color, line.strip_prefix(&prefix)) {
                    (true, Some(rest)) => {
                        let sgr = match d.severity {
                            Severity::Error => "31;1",
                            Severity::Warning => "33;1",
                        };
                        let _ = writeln!(out, "  {}{rest}", paint(sgr, &prefix));
                    }
                    _ => {
                        let _ = writeln!(out, "  {line}");
                    }
                }
            }
        }
        out.push_str(&report.stats.render());
        out
    }
}

/// JSON Lines: one flat JSON object per line, tagged `"type":"finding"`,
/// `"type":"file-error"` or (last line) `"type":"summary"` — the format
/// log pipelines and `jq` consume without buffering the whole run.
#[derive(Debug, Clone, Copy, Default)]
pub struct JsonLinesRenderer;

impl JsonLinesRenderer {
    fn finding_line(out: &mut String, f: &FileReport, d: &Diagnostic) {
        let _ = write!(
            out,
            "{{\"type\":\"finding\",\"code\":{code},\"severity\":{sev},\"category\":{cat},\
             \"system\":{sys},\"file\":{file},\"param\":{param},\"value\":{value},\"line\":{line},\
             \"message\":{msg}",
            code = quote(d.code.as_str()),
            sev = quote(&d.severity.to_string()),
            cat = quote(d.category()),
            sys = quote(&f.system),
            file = quote(&f.file),
            param = quote(&d.param),
            value = quote(&d.value),
            line = d
                .line
                .map(|l| l.to_string())
                .unwrap_or_else(|| "null".into()),
            msg = quote(&d.message),
        );
        match &d.suggestion {
            Some(s) => {
                let _ = write!(out, ",\"suggestion\":{}", quote(s));
            }
            None => out.push_str(",\"suggestion\":null"),
        }
        match &d.fix {
            Some(Fix::ReplaceValue { param, value }) => {
                let _ = write!(
                    out,
                    ",\"fix\":{{\"kind\":\"replace-value\",\"param\":{},\"value\":{}}}",
                    quote(param),
                    quote(value)
                );
            }
            Some(Fix::RenameKey { from, to }) => {
                let _ = write!(
                    out,
                    ",\"fix\":{{\"kind\":\"rename-key\",\"from\":{},\"to\":{}}}",
                    quote(from),
                    quote(to)
                );
            }
            None => out.push_str(",\"fix\":null"),
        }
        match &d.origin {
            Some(o) => {
                let _ = write!(
                    out,
                    ",\"origin\":{{\"module\":{},\"function\":{},\"line\":{},\"col\":{}}}",
                    quote(&o.module),
                    quote(&o.function),
                    o.span.line,
                    o.span.col
                );
            }
            None => out.push_str(",\"origin\":null"),
        }
        out.push_str("}\n");
    }

    /// Structurally validates JSON Lines output this renderer produced:
    /// every line parses as a tagged object, every finding's `code` parses
    /// back to a [`DiagCode`], and the trailing summary's counts match the
    /// finding lines. Returns the validated finding count.
    ///
    /// This is the in-tree check CI runs against
    /// `examples/report_formats.rs` — no schema downloads, no network.
    pub fn validate(text: &str) -> Result<usize, String> {
        let mut findings = 0usize;
        let mut errors = 0usize;
        let mut warnings = 0usize;
        let mut file_errors = 0usize;
        let mut summary: Option<Json> = None;
        for (i, line) in text.lines().filter(|l| !l.trim().is_empty()).enumerate() {
            let lineno = i + 1;
            if summary.is_some() {
                return Err(format!("line {lineno}: content after the summary line"));
            }
            let obj = Json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
            let tag = obj
                .get("type")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("line {lineno}: missing \"type\" tag"))?;
            match tag {
                "finding" => {
                    findings += 1;
                    let code = obj
                        .get("code")
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("line {lineno}: finding without a code"))?;
                    if DiagCode::parse(code).is_none() {
                        return Err(format!("line {lineno}: unknown code {code:?}"));
                    }
                    match obj.get("severity").and_then(Json::as_str) {
                        Some("error") => errors += 1,
                        Some("warning") => warnings += 1,
                        other => {
                            return Err(format!("line {lineno}: bad severity {other:?}"));
                        }
                    }
                    for key in ["system", "file", "param", "value", "message", "category"] {
                        if obj.get(key).and_then(Json::as_str).is_none() {
                            return Err(format!("line {lineno}: missing string field {key:?}"));
                        }
                    }
                }
                "file-error" => {
                    file_errors += 1;
                    for key in ["system", "file", "error"] {
                        if obj.get(key).and_then(Json::as_str).is_none() {
                            return Err(format!("line {lineno}: missing string field {key:?}"));
                        }
                    }
                }
                "summary" => summary = Some(obj),
                other => return Err(format!("line {lineno}: unknown type {other:?}")),
            }
        }
        let summary = summary.ok_or_else(|| "missing trailing summary line".to_string())?;
        let count = |key: &str| {
            summary
                .get(key)
                .and_then(Json::as_f64)
                .map(|n| n as usize)
                .ok_or_else(|| format!("summary missing numeric field {key:?}"))
        };
        if count("errors")? != errors || count("warnings")? != warnings {
            return Err("summary severity counts disagree with the finding lines".to_string());
        }
        if count("unknown_system_files")? + count("unreadable_files")? != file_errors {
            return Err("summary file-error counts disagree with the file-error lines".to_string());
        }
        count("files")?;
        Ok(findings)
    }
}

impl Renderer for JsonLinesRenderer {
    fn render(&self, report: &Report) -> String {
        let mut out = String::new();
        for f in &report.files {
            if f.unknown_system {
                let _ = writeln!(
                    out,
                    "{{\"type\":\"file-error\",\"system\":{},\"file\":{},\"error\":{}}}",
                    quote(&f.system),
                    quote(&f.file),
                    quote("no constraint database for this system"),
                );
            }
            if let Some(e) = &f.read_error {
                let _ = writeln!(
                    out,
                    "{{\"type\":\"file-error\",\"system\":{},\"file\":{},\"error\":{}}}",
                    quote(&f.system),
                    quote(&f.file),
                    quote(e),
                );
            }
            for d in &f.diagnostics {
                Self::finding_line(&mut out, f, d);
            }
        }
        let s = &report.stats;
        let _ = writeln!(
            out,
            "{{\"type\":\"summary\",\"files\":{},\"clean_files\":{},\"flagged_files\":{},\
             \"unknown_system_files\":{},\"unreadable_files\":{},\"errors\":{},\"warnings\":{}}}",
            s.files,
            s.clean_files,
            s.flagged_files,
            s.unknown_system_files,
            s.unreadable_files,
            s.errors,
            s.warnings,
        );
        out
    }
}

/// A SARIF 2.1.0 JSON document (one run, rules from the stable code
/// namespace, an `artifacts` entry per checked file, one result per
/// finding with a stable `fingerprints` member) for code-scanning UIs.
///
/// The fingerprint (`spexFingerprint/v1`) hashes the semantic identity of
/// a finding — system, file, rule, parameter and value — so scanning UIs
/// can track a result across runs even when line numbers shift.
#[derive(Debug, Clone, Copy, Default)]
pub struct SarifRenderer;

impl Renderer for SarifRenderer {
    fn render(&self, report: &Report) -> String {
        let mut out = String::from("{\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{");
        out.push_str("\"name\":\"spex-check\",\"rules\":[");
        for (i, code) in DiagCode::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"id\":{},\"shortDescription\":{{\"text\":{}}}}}",
                quote(code.as_str()),
                quote(code.summary()),
            );
        }
        out.push_str("]}},\"artifacts\":[");
        for (i, f) in report.files.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"location\":{{\"uri\":{}}}}}", quote(&f.file));
        }
        out.push_str("],\"results\":[");
        let mut first = true;
        for (idx, f) in report.files.iter().enumerate() {
            for d in &f.diagnostics {
                if !first {
                    out.push(',');
                }
                first = false;
                let level = match d.severity {
                    Severity::Error => "error",
                    Severity::Warning => "warning",
                };
                let _ = write!(
                    out,
                    "{{\"ruleId\":{rule},\"level\":{level},\"message\":{{\"text\":{msg}}},\
                     \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":\
                     {{\"uri\":{uri},\"index\":{idx}}}",
                    rule = quote(d.code.as_str()),
                    level = quote(level),
                    msg = quote(&format!("\"{}\" = \"{}\": {}", d.param, d.value, d.message)),
                    uri = quote(&f.file),
                );
                if let Some(line) = d.line {
                    let _ = write!(out, ",\"region\":{{\"startLine\":{line}}}");
                }
                let fp = spex_core::fingerprint::fnv1a(
                    format!(
                        "{}|{}|{}|{}|{}",
                        f.system,
                        f.file,
                        d.code.as_str(),
                        d.param,
                        d.value
                    )
                    .as_bytes(),
                );
                let _ = write!(
                    out,
                    "}}}}],\"fingerprints\":{{\"spexFingerprint/v1\":{}}},\
                     \"properties\":{{\"system\":{},\"param\":{},\"value\":{}}}}}",
                    quote(&format!("{fp:016x}")),
                    quote(&f.system),
                    quote(&d.param),
                    quote(&d.value),
                );
            }
        }
        out.push_str("],\"invocations\":[{\"executionSuccessful\":true");
        let troubles: Vec<&FileReport> = report
            .files
            .iter()
            .filter(|f| f.unknown_system || f.read_error.is_some())
            .collect();
        if !troubles.is_empty() {
            out.push_str(",\"toolExecutionNotifications\":[");
            for (i, f) in troubles.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let why = f
                    .read_error
                    .clone()
                    .unwrap_or_else(|| "no constraint database for this system".to_string());
                let _ = write!(
                    out,
                    "{{\"level\":\"error\",\"message\":{{\"text\":{}}},\
                     \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":\
                     {{\"uri\":{}}}}}}}]}}",
                    quote(&why),
                    quote(&f.file),
                );
            }
            out.push(']');
        }
        out.push_str("}]}]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spex_lang::diag::Span;

    fn sample_report() -> Report {
        let range = Diagnostic::new(
            Severity::Error,
            "threads",
            "99",
            "out of the valid range [1, 16]",
            DiagCode::Range,
        )
        .at_line(2)
        .suggest("use a value between 1 and 16")
        .with_fix(Fix::ReplaceValue {
            param: "threads".into(),
            value: "16".into(),
        })
        .from_origin("main.c", "startup", Span::new(40, 9));
        let unknown = Diagnostic::new(
            Severity::Warning,
            "naptime",
            "5",
            "takes effect only when \"fsync\" != 0",
            DiagCode::ControlDep,
        )
        .at_line(3);
        let mut unreadable = FileReport::new("demo", "gone.conf", Vec::new());
        unreadable.read_error = Some("not a regular file".into());
        Report::from_files(vec![
            FileReport::new("demo", "clean.conf", Vec::new()),
            FileReport::new("demo", "bad \"quoted\".conf", vec![range, unknown]),
            unreadable,
        ])
    }

    #[test]
    fn exit_codes_partition_clean_warnings_errors() {
        assert_eq!(Report::from_files(vec![]).exit_code(), 0);
        assert_eq!(
            Report::single(FileReport::new("s", "f", Vec::new())).exit_code(),
            0
        );
        assert_eq!(sample_report().exit_code(), 1);
        let warn_only = Report::single(FileReport::new(
            "s",
            "f",
            vec![Diagnostic::new(
                Severity::Warning,
                "p",
                "v",
                "m",
                DiagCode::ControlDep,
            )],
        ));
        assert_eq!(warn_only.exit_code(), 2);
    }

    #[test]
    fn human_renderer_shows_findings_and_summary() {
        let text = HumanRenderer::plain().render(&sample_report());
        assert!(text.contains("error[SPEX-R003]"), "{text}");
        assert!(text.contains("checked 3 file(s)"), "{text}");
        assert!(!text.contains("clean.conf"), "clean files stay quiet");
        assert!(text.contains("unreadable: not a regular file"), "{text}");
    }

    #[test]
    fn human_renderer_colors_only_when_asked() {
        let plain = HumanRenderer::plain().render(&sample_report());
        assert!(!plain.contains('\x1b'), "never-mode output stays clean");
        // Auto under a captured (non-terminal) stdout must also be clean.
        let auto = HumanRenderer::default().render(&sample_report());
        assert_eq!(auto, plain, "auto without a tty matches plain output");
        let colored = HumanRenderer::with_color(ColorMode::Always).render(&sample_report());
        assert!(
            colored.contains("\x1b[31;1merror[SPEX-R003]\x1b[0m"),
            "{colored}"
        );
        assert!(
            colored.contains("\x1b[33;1mwarning[SPEX-R005]\x1b[0m"),
            "{colored}"
        );
        assert!(
            colored.contains("\x1b[1mbad \"quoted\".conf\x1b[0m"),
            "file headers are bold: {colored}"
        );
        // Stripping the escapes recovers the plain rendering exactly.
        let mut stripped = String::new();
        let mut rest = colored.as_str();
        while let Some(i) = rest.find('\x1b') {
            stripped.push_str(&rest[..i]);
            let m = rest[i..].find('m').expect("CSI sequence ends with m");
            rest = &rest[i + m + 1..];
        }
        stripped.push_str(rest);
        assert_eq!(stripped, plain);
    }

    #[test]
    fn auto_color_honors_no_color_and_tty() {
        assert!(auto_color(true, None), "tty with NO_COLOR unset colors");
        assert!(!auto_color(true, Some("1")), "NO_COLOR disables");
        assert!(
            auto_color(true, Some("")),
            "empty NO_COLOR does not count (per the spec)"
        );
        assert!(!auto_color(false, None), "piped output never auto-colors");
        // Explicit modes ignore the environment entirely.
        assert!(ColorMode::Always.enabled());
        assert!(!ColorMode::Never.enabled());
        // And the conventional spellings parse.
        assert_eq!(ColorMode::parse("auto"), Some(ColorMode::Auto));
        assert_eq!(ColorMode::parse("always"), Some(ColorMode::Always));
        assert_eq!(ColorMode::parse("never"), Some(ColorMode::Never));
        assert_eq!(ColorMode::parse("sometimes"), None);
    }

    #[test]
    fn json_lines_validates_and_codes_round_trip() {
        let report = sample_report();
        let text = JsonLinesRenderer.render(&report);
        let findings = JsonLinesRenderer::validate(&text).expect("output validates");
        assert_eq!(findings, 2);
        // Every finding line's code parses back to the code that made it.
        let mut seen = Vec::new();
        for line in text.lines() {
            let obj = Json::parse(line).unwrap();
            if obj.get("type").and_then(Json::as_str) == Some("finding") {
                let code = obj.get("code").and_then(Json::as_str).unwrap();
                seen.push(DiagCode::parse(code).expect("stable code"));
            }
        }
        assert_eq!(seen, vec![DiagCode::Range, DiagCode::ControlDep]);
        // The machine fix survives as structured data.
        assert!(
            text.contains("\"fix\":{\"kind\":\"replace-value\""),
            "{text}"
        );
    }

    #[test]
    fn json_lines_validator_rejects_tampering() {
        let good = JsonLinesRenderer.render(&sample_report());
        assert!(JsonLinesRenderer::validate(&good.replace("SPEX-R003", "SPEX-R999")).is_err());
        assert!(JsonLinesRenderer::validate(&good.replace("\"error\"", "\"fatal\"")).is_err());
        let truncated: String = good.lines().take(1).map(|l| format!("{l}\n")).collect();
        assert!(
            JsonLinesRenderer::validate(&truncated).is_err(),
            "no summary"
        );
        assert!(JsonLinesRenderer::validate("not json\n").is_err());
    }

    #[test]
    fn sarif_document_parses_with_rules_and_results() {
        let text = SarifRenderer.render(&sample_report());
        let doc = Json::parse(&text).expect("SARIF output is valid JSON");
        let run = &doc.get("runs").and_then(Json::as_array).unwrap()[0];
        let rules = run
            .get("tool")
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("rules"))
            .and_then(Json::as_array)
            .unwrap();
        assert_eq!(rules.len(), DiagCode::ALL.len());
        let artifacts = run.get("artifacts").and_then(Json::as_array).unwrap();
        assert_eq!(artifacts.len(), 3, "one artifact per checked file");
        assert_eq!(
            artifacts[1]
                .get("location")
                .and_then(|l| l.get("uri"))
                .and_then(Json::as_str),
            Some("bad \"quoted\".conf")
        );
        let results = run.get("results").and_then(Json::as_array).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0].get("ruleId").and_then(Json::as_str),
            Some("SPEX-R003")
        );
        // Each result's artifactLocation indexes into the artifacts array.
        let loc = results[0]
            .get("locations")
            .and_then(Json::as_array)
            .and_then(|l| l[0].get("physicalLocation"))
            .and_then(|p| p.get("artifactLocation"))
            .unwrap();
        assert_eq!(loc.get("index").and_then(Json::as_f64), Some(1.0));
        assert_eq!(
            loc.get("uri").and_then(Json::as_str),
            artifacts[1]
                .get("location")
                .and_then(|l| l.get("uri"))
                .and_then(Json::as_str),
        );
        // Fingerprints are stable across renders and distinct per finding.
        let fp = |r: &Json| {
            r.get("fingerprints")
                .and_then(|f| f.get("spexFingerprint/v1"))
                .and_then(Json::as_str)
                .map(str::to_string)
                .expect("every result carries a fingerprint")
        };
        assert_ne!(fp(&results[0]), fp(&results[1]));
        let again = SarifRenderer.render(&sample_report());
        assert_eq!(text, again, "renders are deterministic");
        let notifications = run
            .get("invocations")
            .and_then(Json::as_array)
            .and_then(|i| i[0].get("toolExecutionNotifications"))
            .and_then(Json::as_array)
            .unwrap();
        assert_eq!(notifications.len(), 1, "the unreadable file surfaces");
    }
}
