//! The diagnostic model: what the checker reports and how it renders.
//!
//! Diagnostics follow the bar the paper sets for *good* system reactions
//! (§3.1): each one pinpoints the faulty parameter by name, value and
//! config-file line, says which inferred constraint is violated and where
//! the constraint's evidence lives in the source, and — where possible —
//! suggests a fix.

use spex_lang::diag::Span;
use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The dependency/relationship structure is suspicious; the system may
    /// silently ignore or overrule the setting.
    Warning,
    /// The value violates a hard constraint; deployment will misbehave.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One checker finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Severity of the finding.
    pub severity: Severity,
    /// The offending parameter.
    pub param: String,
    /// The offending value as written in the file.
    pub value: String,
    /// 1-based line of the setting in the checked file, when known.
    pub line: Option<usize>,
    /// What is wrong.
    pub message: String,
    /// A suggested fix, when one is computable.
    pub suggestion: Option<String>,
    /// Violated-constraint category (Table 11 vocabulary), or
    /// `"unknown-key"` for unrecognised parameters.
    pub category: &'static str,
    /// Where the violated constraint's evidence lives in the subject
    /// system's source (function name and span), when applicable.
    pub origin: Option<(String, Span)>,
}

impl Diagnostic {
    /// A new diagnostic with no line, suggestion or provenance attached.
    pub fn new(
        severity: Severity,
        param: &str,
        value: &str,
        message: impl Into<String>,
        category: &'static str,
    ) -> Diagnostic {
        Diagnostic {
            severity,
            param: param.to_string(),
            value: value.to_string(),
            line: None,
            message: message.into(),
            suggestion: None,
            category,
            origin: None,
        }
    }

    /// Attaches the config-file line.
    pub fn at_line(mut self, line: usize) -> Diagnostic {
        self.line = Some(line);
        self
    }

    /// Attaches a suggested fix.
    pub fn suggest(mut self, s: impl Into<String>) -> Diagnostic {
        self.suggestion = Some(s.into());
        self
    }

    /// Attaches constraint provenance.
    pub fn from_origin(mut self, function: &str, span: Span) -> Diagnostic {
        if !function.is_empty() || span.line != 0 {
            self.origin = Some((function.to_string(), span));
        }
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.severity)?;
        if let Some(line) = self.line {
            write!(f, "line {line}: ")?;
        }
        write!(
            f,
            "\"{}\" = \"{}\": {}",
            self.param, self.value, self.message
        )?;
        if let Some((func, span)) = &self.origin {
            write!(f, " [constraint inferred")?;
            if !func.is_empty() {
                write!(f, " in {func}")?;
            }
            if span.line != 0 {
                write!(f, " at {}:{}", span.line, span.col)?;
            }
            write!(f, "]")?;
        }
        if let Some(s) = &self.suggestion {
            write!(f, "; {s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_in_the_paper_report_style() {
        let d = Diagnostic::new(
            Severity::Error,
            "listener-threads",
            "9999",
            "out of valid range [1, 16]",
            "data-range",
        )
        .at_line(12)
        .suggest("use a value between 1 and 16")
        .from_origin("startup", Span::new(40, 9));
        let s = d.to_string();
        assert!(s.contains("error: line 12"));
        assert!(s.contains("\"listener-threads\" = \"9999\""));
        assert!(s.contains("inferred in startup at 40:9"));
        assert!(s.contains("use a value between 1 and 16"));
    }

    #[test]
    fn severity_orders_warning_below_error() {
        assert!(Severity::Warning < Severity::Error);
    }
}
