//! The diagnostic model: what the checker reports and how it renders.
//!
//! Diagnostics follow the bar the paper sets for *good* system reactions
//! (§3.1): each one pinpoints the faulty parameter by name, value and
//! config-file line, says which inferred constraint is violated and where
//! the constraint's evidence lives in the source, and — where possible —
//! suggests a fix. On top of that bar, every diagnostic carries a stable
//! [`DiagCode`] (`SPEX-Rxxx`) so machine consumers never parse prose, and
//! a machine-applicable [`Fix`] where one is computable.

use spex_conf::ConfFile;
use spex_core::constraint::DiagCode;
use spex_lang::diag::Span;
use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The dependency/relationship structure is suspicious; the system may
    /// silently ignore or overrule the setting.
    Warning,
    /// The value violates a hard constraint; deployment will misbehave.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Where the violated constraint's evidence lives: the workspace module
/// (v2 database provenance), the function, and the source span.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Origin {
    /// The workspace module the constraint was inferred from (empty for
    /// hand-built or migrated-`v1` constraints).
    pub module: String,
    /// The function holding the evidence (empty when not applicable).
    pub function: String,
    /// The evidence's source location.
    pub span: Span,
}

impl Origin {
    /// Whether the origin carries any information worth rendering.
    pub fn is_known(&self) -> bool {
        !self.module.is_empty() || !self.function.is_empty() || self.span.line != 0
    }
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "constraint inferred")?;
        if !self.function.is_empty() {
            write!(f, " in {}", self.function)?;
        }
        if self.span.line != 0 {
            write!(f, " at {}:{}", self.span.line, self.span.col)?;
        }
        if !self.module.is_empty() {
            write!(f, ", from {}", self.module)?;
        }
        Ok(())
    }
}

/// A machine-applicable repair for one finding.
///
/// A `Fix` is data, not prose: callers can [`apply`](Fix::apply) it to the
/// parsed config file and re-check, or render it in a UI as a one-click
/// action. The checker only attaches a `Fix` when the repaired file is
/// expected to clear the violated constraint (clamp to the valid range,
/// nearest accepted enum variant, rename a misspelled key); advisory prose
/// stays in [`Diagnostic::suggestion`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fix {
    /// Replace the value of `param` with `value`.
    ReplaceValue {
        /// The parameter to rewrite.
        param: String,
        /// The replacement value.
        value: String,
    },
    /// Rename the key `from` to `to`, keeping the value.
    RenameKey {
        /// The misspelled key as written.
        from: String,
        /// The intended key.
        to: String,
    },
}

impl Fix {
    /// Applies the fix to a parsed config file. Returns whether anything
    /// changed.
    pub fn apply(&self, conf: &mut ConfFile) -> bool {
        match self {
            Fix::ReplaceValue { param, value } => conf.set(param, value),
            Fix::RenameKey { from, to } => conf.rename(from, to) > 0,
        }
    }
}

impl fmt::Display for Fix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fix::ReplaceValue { param, value } => {
                write!(f, "set \"{param}\" = \"{value}\"")
            }
            Fix::RenameKey { from, to } => write!(f, "rename \"{from}\" to \"{to}\""),
        }
    }
}

/// One checker finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The stable diagnostic code (see [`DiagCode`] for the namespace
    /// stability guarantees).
    pub code: DiagCode,
    /// Severity of the finding.
    pub severity: Severity,
    /// The offending parameter.
    pub param: String,
    /// The offending value as written in the file.
    pub value: String,
    /// 1-based line of the setting in the checked file, when known.
    pub line: Option<usize>,
    /// What is wrong.
    pub message: String,
    /// A suggested fix in prose, when one is computable.
    pub suggestion: Option<String>,
    /// A machine-applicable repair, when one is computable.
    pub fix: Option<Fix>,
    /// Where the violated constraint's evidence lives, when applicable.
    pub origin: Option<Origin>,
}

impl Diagnostic {
    /// A new diagnostic with no line, suggestion, fix or provenance
    /// attached.
    pub fn new(
        severity: Severity,
        param: &str,
        value: &str,
        message: impl Into<String>,
        code: DiagCode,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            param: param.to_string(),
            value: value.to_string(),
            line: None,
            message: message.into(),
            suggestion: None,
            fix: None,
            origin: None,
        }
    }

    /// Violated-constraint category (Table 11 vocabulary), or
    /// `"unknown-key"` for unrecognised parameters.
    pub fn category(&self) -> &'static str {
        self.code.category()
    }

    /// Attaches the config-file line.
    pub fn at_line(mut self, line: usize) -> Diagnostic {
        self.line = Some(line);
        self
    }

    /// Attaches a suggested fix in prose.
    pub fn suggest(mut self, s: impl Into<String>) -> Diagnostic {
        self.suggestion = Some(s.into());
        self
    }

    /// Attaches a machine-applicable repair.
    pub fn with_fix(mut self, fix: Fix) -> Diagnostic {
        self.fix = Some(fix);
        self
    }

    /// Attaches constraint provenance (module, function, span). An origin
    /// with no information at all is dropped.
    pub fn from_origin(mut self, module: &str, function: &str, span: Span) -> Diagnostic {
        let origin = Origin {
            module: module.to_string(),
            function: function.to_string(),
            span,
        };
        if origin.is_known() {
            self.origin = Some(origin);
        }
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: ", self.severity, self.code)?;
        if let Some(line) = self.line {
            write!(f, "line {line}: ")?;
        }
        write!(
            f,
            "\"{}\" = \"{}\": {}",
            self.param, self.value, self.message
        )?;
        if let Some(origin) = &self.origin {
            write!(f, " [{origin}]")?;
        }
        if let Some(s) = &self.suggestion {
            write!(f, "; {s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spex_conf::Dialect;

    #[test]
    fn renders_in_the_paper_report_style_with_code() {
        let d = Diagnostic::new(
            Severity::Error,
            "listener-threads",
            "9999",
            "out of valid range [1, 16]",
            DiagCode::Range,
        )
        .at_line(12)
        .suggest("use a value between 1 and 16")
        .from_origin("main.c", "startup", Span::new(40, 9));
        let s = d.to_string();
        assert!(s.contains("error[SPEX-R003]: line 12"), "{s}");
        assert!(s.contains("\"listener-threads\" = \"9999\""));
        assert!(
            s.contains("inferred in startup at 40:9, from main.c"),
            "{s}"
        );
        assert!(s.contains("use a value between 1 and 16"));
        assert_eq!(d.category(), "data-range");
    }

    #[test]
    fn severity_orders_warning_below_error() {
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn origin_without_information_is_dropped() {
        let d = Diagnostic::new(Severity::Error, "p", "v", "m", DiagCode::BasicType).from_origin(
            "",
            "",
            Span::unknown(),
        );
        assert!(d.origin.is_none());
    }

    #[test]
    fn fixes_apply_to_parsed_configs() {
        let mut conf = ConfFile::parse("threads = 9999\nthread_min = 1\n", Dialect::KeyValue);
        assert!(Fix::ReplaceValue {
            param: "threads".into(),
            value: "16".into(),
        }
        .apply(&mut conf));
        assert_eq!(conf.get("threads"), Some("16"));
        assert!(Fix::RenameKey {
            from: "thread_min".into(),
            to: "threads_min".into(),
        }
        .apply(&mut conf));
        assert_eq!(conf.get("threads_min"), Some("1"));
        assert!(!Fix::RenameKey {
            from: "no_such".into(),
            to: "x".into(),
        }
        .apply(&mut conf));
    }

    #[test]
    fn adjacent_fixes_do_not_invalidate_each_other() {
        // Fixes address entries by key, not by byte span, so repairing
        // one line never invalidates a fix aimed at its neighbour — no
        // span re-computation between applications.
        let mut conf = ConfFile::parse(
            "threads = 9999\nlog_lvl = info\nnap_s = 30\n",
            Dialect::KeyValue,
        );
        let fixes = [
            Fix::ReplaceValue {
                param: "threads".into(),
                value: "16".into(),
            },
            Fix::RenameKey {
                from: "log_lvl".into(),
                to: "log_level".into(),
            },
            Fix::ReplaceValue {
                param: "nap_s".into(),
                value: "60".into(),
            },
        ];
        for f in &fixes {
            assert!(f.apply(&mut conf), "{f}");
        }
        assert_eq!(
            conf.serialize(),
            "threads = 16\nlog_level = info\nnap_s = 60\n"
        );
        // Positions survive: the renamed key still sits on line 2.
        assert_eq!(conf.line_of("log_level"), Some(2));
    }

    #[test]
    fn overlapping_fixes_on_one_key_apply_in_diagnostic_order() {
        // A rename and a value replacement can target the same entry
        // (misspelled key *and* bad value). Applied in diagnostic order —
        // rename first — the replacement finds the corrected key and the
        // file ends up with exactly one, clean entry.
        let text = "thread = 9999\n";
        let rename = Fix::RenameKey {
            from: "thread".into(),
            to: "threads".into(),
        };
        let replace = Fix::ReplaceValue {
            param: "threads".into(),
            value: "16".into(),
        };
        let mut conf = ConfFile::parse(text, Dialect::KeyValue);
        assert!(rename.apply(&mut conf));
        assert!(replace.apply(&mut conf));
        assert_eq!(conf.serialize(), "threads = 16\n");

        // The reverse order is NOT equivalent: the replacement appends a
        // fresh `threads` entry (its target key does not exist yet,
        // `ConfFile::set` reports no existing entry was replaced), and
        // the rename then produces a duplicate key. Callers applying fix
        // batches must keep diagnostic order.
        let mut conf = ConfFile::parse(text, Dialect::KeyValue);
        assert!(!replace.apply(&mut conf));
        assert!(rename.apply(&mut conf));
        assert_eq!(conf.serialize(), "threads = 9999\nthreads = 16\n");
        assert_eq!(conf.settings().filter(|(n, _)| *n == "threads").count(), 2);
    }

    #[test]
    fn repeated_fixes_on_one_param_are_last_writer_wins() {
        let mut conf = ConfFile::parse("threads = 9999\n", Dialect::KeyValue);
        for value in ["64", "16"] {
            assert!(Fix::ReplaceValue {
                param: "threads".into(),
                value: value.into(),
            }
            .apply(&mut conf));
        }
        assert_eq!(conf.get("threads"), Some("16"));
        assert_eq!(conf.serialize(), "threads = 16\n");
    }

    #[test]
    fn rename_onto_an_existing_key_keeps_first_occurrence_authoritative() {
        // Colliding repairs (renaming onto a key the file already has)
        // leave both entries in place; lookups read the first, so the
        // original setting stays authoritative and nothing is lost.
        let mut conf = ConfFile::parse("threads = 8\nthread = 4\n", Dialect::KeyValue);
        assert!(Fix::RenameKey {
            from: "thread".into(),
            to: "threads".into(),
        }
        .apply(&mut conf));
        assert_eq!(conf.get("threads"), Some("8"));
        assert_eq!(conf.serialize(), "threads = 8\nthreads = 4\n");
    }
}
