//! Environment models: what the checker may ask about the deployment
//! host.
//!
//! Without an environment model the checker silently skips semantic
//! existence checks (missing files, unknown users, occupied ports) — the
//! very class of misconfiguration the paper found hardest for users to
//! debug. Two models ship in-tree, both opt-in via
//! [`CheckSession::with_env`](crate::CheckSession::with_env):
//!
//! * [`StaticEnv`] — a declarative model (tests, hermetic CI, "what the
//!   target host will look like");
//! * [`FsEnv`] — the real host: file/directory existence from the
//!   filesystem, users and groups from the account databases
//!   (`/etc/passwd`, `/etc/group`), host resolution from the hosts file
//!   plus the literal cases that never need DNS (no network traffic is
//!   ever generated), and port occupancy from the kernel's socket tables
//!   (`/proc/net/tcp*`, Linux only; other platforms conservatively report
//!   ports free).
//!
//! The database file locations are overridable, which keeps the
//! implementation honest and testable without root.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

/// What the checker may ask about the deployment environment. Everything
/// defaults to "plausible", so a checker without an environment still
/// performs all syntactic and numeric checks.
pub trait Environment {
    /// Whether `path` names an existing regular file.
    fn file_exists(&self, _path: &str) -> bool {
        true
    }
    /// Whether `path` names an existing directory.
    fn dir_exists(&self, _path: &str) -> bool {
        true
    }
    /// Whether `name` is a known user.
    fn user_exists(&self, _name: &str) -> bool {
        true
    }
    /// Whether `name` is a known group.
    fn group_exists(&self, _name: &str) -> bool {
        true
    }
    /// Whether `host` resolves.
    fn host_resolves(&self, _host: &str) -> bool {
        true
    }
    /// Whether another process already owns `port`.
    fn port_in_use(&self, _port: u16) -> bool {
        false
    }
}

/// A declarative environment model (mirrors `spex_vm::World` without
/// depending on the interpreter).
#[derive(Debug, Clone, Default)]
pub struct StaticEnv {
    files: BTreeSet<String>,
    dirs: BTreeSet<String>,
    users: BTreeSet<String>,
    groups: BTreeSet<String>,
    hosts: BTreeSet<String>,
    used_ports: BTreeSet<u16>,
}

impl StaticEnv {
    /// An empty environment (nothing exists, no port taken).
    pub fn new() -> StaticEnv {
        StaticEnv::default()
    }

    /// Registers a regular file (and its parent directories).
    pub fn add_file(&mut self, path: &str) -> &mut Self {
        self.files.insert(path.to_string());
        let mut p = path;
        while let Some(i) = p.rfind('/') {
            if i == 0 {
                self.dirs.insert("/".to_string());
                break;
            }
            p = &p[..i];
            self.dirs.insert(p.to_string());
        }
        self
    }

    /// Registers a directory.
    pub fn add_dir(&mut self, path: &str) -> &mut Self {
        self.dirs.insert(path.to_string());
        self
    }

    /// Registers a user.
    pub fn add_user(&mut self, name: &str) -> &mut Self {
        self.users.insert(name.to_string());
        self
    }

    /// Registers a group.
    pub fn add_group(&mut self, name: &str) -> &mut Self {
        self.groups.insert(name.to_string());
        self
    }

    /// Registers a resolvable host.
    pub fn add_host(&mut self, name: &str) -> &mut Self {
        self.hosts.insert(name.to_string());
        self
    }

    /// Marks a port as occupied by another process.
    pub fn occupy_port(&mut self, port: u16) -> &mut Self {
        self.used_ports.insert(port);
        self
    }
}

impl Environment for StaticEnv {
    fn file_exists(&self, path: &str) -> bool {
        self.files.contains(path)
    }
    fn dir_exists(&self, path: &str) -> bool {
        self.dirs.contains(path)
    }
    fn user_exists(&self, name: &str) -> bool {
        self.users.contains(name)
    }
    fn group_exists(&self, name: &str) -> bool {
        self.groups.contains(name)
    }
    fn host_resolves(&self, host: &str) -> bool {
        self.hosts.contains(host)
    }
    fn port_in_use(&self, port: u16) -> bool {
        self.used_ports.contains(&port)
    }
}

/// An [`Environment`] that inspects the real host.
///
/// The account, hosts and socket databases are read and parsed **once per
/// instance** (lazily, on first query) — an `FsEnv` shared across a batch
/// pool answers thousands of per-setting queries from in-memory sets
/// instead of re-reading `/etc/passwd` for every occurrence. Construct a
/// fresh `FsEnv` per run if the host may change underneath you.
#[derive(Debug, Clone)]
pub struct FsEnv {
    passwd: PathBuf,
    group: PathBuf,
    hosts: PathBuf,
    proc_net: PathBuf,
    /// `None` inside the cell means the database was unreadable (checks
    /// become vacuous rather than flagging every name on a host we cannot
    /// inspect).
    users: OnceLock<Option<BTreeSet<String>>>,
    groups: OnceLock<Option<BTreeSet<String>>>,
    host_aliases: OnceLock<Option<BTreeSet<String>>>,
    listen_ports: OnceLock<BTreeSet<u16>>,
}

impl Default for FsEnv {
    fn default() -> Self {
        FsEnv::new()
    }
}

impl FsEnv {
    /// An environment reading the standard system databases.
    pub fn new() -> FsEnv {
        FsEnv {
            passwd: PathBuf::from("/etc/passwd"),
            group: PathBuf::from("/etc/group"),
            hosts: PathBuf::from("/etc/hosts"),
            proc_net: PathBuf::from("/proc/net"),
            users: OnceLock::new(),
            groups: OnceLock::new(),
            host_aliases: OnceLock::new(),
            listen_ports: OnceLock::new(),
        }
    }

    /// Overrides the account/hosts database directory (testing, chroots,
    /// container images mounted for offline audit).
    pub fn with_etc(mut self, dir: impl AsRef<Path>) -> FsEnv {
        let dir = dir.as_ref();
        self.passwd = dir.join("passwd");
        self.group = dir.join("group");
        self.hosts = dir.join("hosts");
        self.users = OnceLock::new();
        self.groups = OnceLock::new();
        self.host_aliases = OnceLock::new();
        self
    }

    /// Overrides the `proc`-style network table directory.
    pub fn with_proc_net(mut self, dir: impl AsRef<Path>) -> FsEnv {
        self.proc_net = dir.as_ref().to_path_buf();
        self.listen_ports = OnceLock::new();
        self
    }

    /// First `:`-separated field of every line of an `/etc/passwd`-style
    /// database; `None` when unreadable.
    fn load_colon_db(path: &Path) -> Option<BTreeSet<String>> {
        let text = std::fs::read_to_string(path).ok()?;
        Some(
            text.lines()
                .filter_map(|l| l.split(':').next())
                .map(str::to_string)
                .collect(),
        )
    }

    /// Every alias (non-address column) of every non-comment hosts line;
    /// `None` when unreadable.
    fn load_hosts(path: &Path) -> Option<BTreeSet<String>> {
        let text = std::fs::read_to_string(path).ok()?;
        Some(
            text.lines()
                .flat_map(|l| {
                    l.split('#')
                        .next()
                        .unwrap_or("")
                        .split_whitespace()
                        .skip(1)
                        .map(str::to_string)
                        .collect::<Vec<_>>()
                })
                .collect(),
        )
    }

    /// Ports of all local sockets in the LISTEN state (`st == 0A`) across
    /// the tcp tables; unreadable tables contribute nothing.
    fn load_listen_ports(proc_net: &Path) -> BTreeSet<u16> {
        let mut ports = BTreeSet::new();
        for table in ["tcp", "tcp6"] {
            let Ok(text) = std::fs::read_to_string(proc_net.join(table)) else {
                continue;
            };
            for line in text.lines().skip(1) {
                let mut fields = line.split_whitespace();
                let local = fields.nth(1);
                let state = fields.nth(1); // skip rem_address; `st` is next
                if let (Some(local), Some("0A")) = (local, state) {
                    if let Some(p) = local
                        .rsplit_once(':')
                        .and_then(|(_, p)| u16::from_str_radix(p, 16).ok())
                    {
                        ports.insert(p);
                    }
                }
            }
        }
        ports
    }
}

impl Environment for FsEnv {
    fn file_exists(&self, path: &str) -> bool {
        match std::fs::metadata(path) {
            Ok(m) => m.is_file(),
            // Definitely absent vs. merely uninspectable (EACCES on a
            // parent): only the former is a finding.
            Err(e) => e.kind() != std::io::ErrorKind::NotFound,
        }
    }

    fn dir_exists(&self, path: &str) -> bool {
        match std::fs::metadata(path) {
            Ok(m) => m.is_dir(),
            Err(e) => e.kind() != std::io::ErrorKind::NotFound,
        }
    }

    fn user_exists(&self, name: &str) -> bool {
        self.users
            .get_or_init(|| Self::load_colon_db(&self.passwd))
            .as_ref()
            .is_none_or(|s| s.contains(name))
    }

    fn group_exists(&self, name: &str) -> bool {
        self.groups
            .get_or_init(|| Self::load_colon_db(&self.group))
            .as_ref()
            .is_none_or(|s| s.contains(name))
    }

    fn host_resolves(&self, host: &str) -> bool {
        if host == "localhost" || host.parse::<std::net::IpAddr>().is_ok() {
            return true;
        }
        self.host_aliases
            .get_or_init(|| Self::load_hosts(&self.hosts))
            .as_ref()
            .is_none_or(|s| s.contains(host))
    }

    fn port_in_use(&self, port: u16) -> bool {
        self.listen_ports
            .get_or_init(|| Self::load_listen_ports(&self.proc_net))
            .contains(&port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn etc(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("spex_fsenv_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("passwd"),
            "root:x:0:0:root:/root:/bin/sh\npostgres:x:70:70::/var/lib/postgresql:/bin/sh\n",
        )
        .unwrap();
        std::fs::write(dir.join("group"), "wheel:x:0:root\ndaemon:x:2:\n").unwrap();
        std::fs::write(
            dir.join("hosts"),
            "127.0.0.1 localhost\n10.0.0.7 db-primary db # the database\n",
        )
        .unwrap();
        dir
    }

    #[test]
    fn files_and_dirs_come_from_the_real_filesystem() {
        let dir = etc("fs");
        let env = FsEnv::new();
        let passwd = dir.join("passwd");
        assert!(env.file_exists(passwd.to_str().unwrap()));
        assert!(!env.dir_exists(passwd.to_str().unwrap()));
        assert!(env.dir_exists(dir.to_str().unwrap()));
        assert!(!env.file_exists("/no/such/spex/file"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn users_and_groups_come_from_the_account_databases() {
        let dir = etc("acct");
        let env = FsEnv::new().with_etc(&dir);
        assert!(env.user_exists("postgres"));
        assert!(!env.user_exists("postgre"));
        assert!(env.group_exists("daemon"));
        assert!(!env.group_exists("nosuchgroup"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unreadable_databases_are_vacuous_not_flagging() {
        let env = FsEnv::new().with_etc("/no/such/etc");
        assert!(env.user_exists("anyone"));
        assert!(env.group_exists("anything"));
        assert!(env.host_resolves("any-host"));
    }

    #[test]
    fn hosts_resolution_covers_literals_and_aliases() {
        let dir = etc("hosts");
        let env = FsEnv::new().with_etc(&dir);
        assert!(env.host_resolves("localhost"));
        assert!(env.host_resolves("192.168.0.1"));
        assert!(env.host_resolves("::1"));
        assert!(env.host_resolves("db-primary"));
        assert!(env.host_resolves("db"), "second alias on the line");
        assert!(!env.host_resolves("db-secondary"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn port_occupancy_reads_the_socket_table() {
        let dir = std::env::temp_dir().join("spex_fsenv_net");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // 0x1F90 = 8080 listening; 0x0016 = 22 established (not listening).
        std::fs::write(
            dir.join("tcp"),
            "  sl  local_address rem_address   st tx_queue rx_queue\n\
             0: 00000000:1F90 00000000:0000 0A 00000000:00000000\n\
             1: 0100007F:0016 0100007F:9999 01 00000000:00000000\n",
        )
        .unwrap();
        let env = FsEnv::new().with_proc_net(&dir);
        assert!(env.port_in_use(8080));
        assert!(!env.port_in_use(22), "established != listening");
        assert!(!env.port_in_use(80));
        std::fs::remove_dir_all(&dir).ok();
    }
}
